//! Side-by-side comparison: what a database server crash does to an
//! application on the native driver versus on Phoenix.
//!
//! The workload is a small billing batch: N wrapped inserts plus a running
//! query. The native application dies at the first crash (exactly the
//! "application outage" the paper's introduction describes); the Phoenix
//! application finishes every item despite repeated crashes, with every
//! insert applied exactly once.
//!
//! ```text
//! cargo run -p phoenix-bench --example crash_survival
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;

const ITEMS: i64 = 25;

fn env() -> Environment {
    Environment::new().with_read_timeout(Some(Duration::from_millis(800)))
}

/// The batch, written naively (no retry logic) against the native driver.
fn native_batch(addr: &str) -> Result<i64, String> {
    let mut conn = env()
        .connect(addr, "billing", "db")
        .map_err(|e| e.to_string())?;
    conn.execute("CREATE TABLE IF_bills (id INT PRIMARY KEY, amount INT)")
        .map_err(|e| e.to_string())?;
    for i in 0..ITEMS {
        conn.execute(&format!("INSERT INTO IF_bills VALUES ({i}, {})", i * 3))
            .map_err(|e| format!("item {i}: {e}"))?;
        std::thread::sleep(Duration::from_millis(15));
    }
    let r = conn
        .execute("SELECT COUNT(*) FROM IF_bills")
        .map_err(|e| e.to_string())?;
    Ok(r.rows()[0][0].as_i64().unwrap())
}

/// The identical batch against Phoenix.
fn phoenix_batch(addr: &str) -> Result<i64, String> {
    let mut cfg = PhoenixConfig::default();
    cfg.recovery.read_timeout = Some(Duration::from_millis(800));
    cfg.recovery.ping_interval = Duration::from_millis(25);
    let mut db = PhoenixConnection::connect(&env(), addr, "billing", "db", cfg)
        .map_err(|e| e.to_string())?;
    db.execute("CREATE TABLE PH_bills (id INT PRIMARY KEY, amount INT)")
        .map_err(|e| e.to_string())?;
    for i in 0..ITEMS {
        db.execute(&format!("INSERT INTO PH_bills VALUES ({i}, {})", i * 3))
            .map_err(|e| format!("item {i}: {e}"))?;
        std::thread::sleep(Duration::from_millis(15));
    }
    let r = db
        .execute("SELECT COUNT(*) FROM PH_bills")
        .map_err(|e| e.to_string())?;
    let count = r.rows()[0][0].as_i64().unwrap();
    println!(
        "  (phoenix absorbed {} recoveries, {} resubmissions, {} status probes)",
        db.stats().recoveries,
        db.stats().resubmissions,
        db.stats().status_probes
    );
    db.close();
    Ok(count)
}

/// Crash/restart the server every ~120 ms until told to stop.
fn chaos(
    mut server: ServerHarness,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<ServerHarness> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(120));
            if stop.load(Ordering::SeqCst) {
                break;
            }
            server.crash().unwrap();
            std::thread::sleep(Duration::from_millis(80));
            server.restart().unwrap();
        }
        server
    })
}

fn main() {
    let data_dir = std::env::temp_dir().join(format!("phoenix-survival-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).unwrap();
    let server = ServerHarness::start(&data_dir, EngineConfig::default()).unwrap();
    let addr = server.addr();

    println!("native driver, with the server crashing underneath:");
    let stop = Arc::new(AtomicBool::new(false));
    let handle = chaos(server, Arc::clone(&stop));
    match native_batch(&addr) {
        Ok(n) => println!("  unexpectedly finished with {n} rows"),
        Err(e) => println!("  application DIED: {e}"),
    }
    stop.store(true, Ordering::SeqCst);
    let server = handle.join().unwrap();

    println!("\nphoenix, same crash storm:");
    let stop = Arc::new(AtomicBool::new(false));
    let handle = chaos(server, Arc::clone(&stop));
    match phoenix_batch(&addr) {
        Ok(n) => {
            println!("  application finished: {n}/{ITEMS} rows present");
            assert_eq!(n, ITEMS, "exactly-once violated");
        }
        Err(e) => println!("  application died: {e} (unexpected!)"),
    }
    stop.store(true, Ordering::SeqCst);
    let server = handle.join().unwrap();

    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}
