//! Quickstart: a persistent database session in a dozen lines.
//!
//! Starts an embedded Phoenix database server on a temp directory, connects
//! through the Phoenix layer, runs ordinary SQL — and demonstrates that a
//! server crash in the middle of the session is invisible to this code.
//!
//! ```text
//! cargo run -p phoenix-bench --example quickstart
//! ```

use phoenix_core::{PhoenixConfig, PhoenixConnection};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;

fn main() {
    // 1. A database server (normally this is a separate process; the
    //    harness gives us one in-process with crash injection for demos).
    let data_dir = std::env::temp_dir().join(format!("phoenix-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).unwrap();
    let mut server = ServerHarness::start(&data_dir, EngineConfig::default()).unwrap();
    println!("server listening on {}", server.addr());

    // 2. Connect through Phoenix — same shape as a native driver connect.
    let mut db = PhoenixConnection::connect(
        &Environment::new(),
        &server.addr(),
        "quickstart",
        "demo",
        PhoenixConfig::default(),
    )
    .unwrap();

    // 3. Ordinary SQL.
    db.execute("CREATE TABLE greetings (id INT PRIMARY KEY, lang TEXT, text TEXT)")
        .unwrap();
    db.execute(
        "INSERT INTO greetings VALUES \
         (1, 'en', 'hello'), (2, 'fr', 'bonjour'), (3, 'de', 'hallo'), (4, 'es', 'hola')",
    )
    .unwrap();

    let r = db
        .execute("SELECT lang, text FROM greetings ORDER BY id")
        .unwrap();
    println!("\nbefore the crash:");
    for row in r.rows() {
        println!("  {} → {}", row[0], row[1]);
    }

    // 4. The server crashes. (Nobody tells the application.)
    println!("\n*** crashing the database server ***");
    server.crash().unwrap();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(300));
        server.restart().unwrap();
        server
    });

    // 5. The application just keeps going; the next statement is simply a
    //    little slower while Phoenix recovers the session.
    db.execute("INSERT INTO greetings VALUES (5, 'it', 'ciao')")
        .unwrap();
    let r = db.execute("SELECT COUNT(*) FROM greetings").unwrap();
    println!("after the crash, greetings count = {}", r.rows()[0][0]);

    let stats = db.stats();
    println!(
        "\nphoenix did the work: {} recovery pass(es), {} result set(s) materialized, {} DML wrapped",
        stats.recoveries, stats.materialized_result_sets, stats.wrapped_dml
    );

    db.close();
    let server = restarter.join().unwrap();
    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}
