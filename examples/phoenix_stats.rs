//! Observability tour: run a small workload, crash the server mid-flight,
//! let Phoenix recover, then pull the stats snapshot over the wire and
//! pretty-print it — counters, latency histograms, and the ordered recovery
//! timeline (crash detected → reconnect attempts → context re-installed →
//! recovery complete).
//!
//! ```text
//! cargo run -p phoenix-bench --example phoenix_stats
//! ```

use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;

fn main() {
    let data_dir = std::env::temp_dir().join(format!("phoenix-stats-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).unwrap();
    let mut server = ServerHarness::start(&data_dir, EngineConfig::default()).unwrap();
    let addr = server.addr();

    let env = Environment::new().with_read_timeout(Some(Duration::from_millis(800)));
    let mut cfg = PhoenixConfig::default();
    cfg.recovery.read_timeout = Some(Duration::from_millis(800));
    cfg.recovery.ping_interval = Duration::from_millis(25);
    let mut db = PhoenixConnection::connect(&env, &addr, "tour", "db", cfg).unwrap();

    // A little work so the statement-latency histograms have something in
    // them…
    db.execute("CREATE TABLE readings (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO readings VALUES ({i}, {})", i * i))
            .unwrap();
    }

    // …then the main event: a crash mid-workload.
    println!("crashing the server mid-workload…");
    server.crash().unwrap();
    std::thread::sleep(Duration::from_millis(60));
    server.restart().unwrap();

    // Phoenix absorbs the crash; the application just sees a slow statement.
    for i in 20..30 {
        db.execute(&format!("INSERT INTO readings VALUES ({i}, {})", i * i))
            .unwrap();
    }
    let n = db.execute("SELECT COUNT(*) FROM readings").unwrap().rows()[0][0]
        .as_i64()
        .unwrap();
    println!("workload finished: {n}/30 rows present (exactly once)\n");

    // Pull the snapshot over the wire, exactly as a monitoring client would.
    let stats = env
        .connect(&addr, "monitor", "db")
        .unwrap()
        .server_stats()
        .unwrap();
    println!("{}", stats.render_pretty());

    db.close();
    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}
