//! A tour of Phoenix's persistent cursors (paper §3, "Cursors"): keyset and
//! dynamic semantics under concurrent modification, with the server crashing
//! mid-scroll.
//!
//! * A **keyset** cursor fixes its membership when opened: rows updated
//!   afterwards show fresh data, deleted rows vanish, inserts stay
//!   invisible.
//! * A **dynamic** cursor re-evaluates as it goes: inserts into the unvisited
//!   range appear.
//!
//! Both survive a server crash — unlike native server cursors, which die
//! with the session.
//!
//! ```text
//! cargo run -p phoenix-bench --example cursor_tour
//! ```

use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection, PhoenixCursorKind};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;

fn main() {
    let data_dir = std::env::temp_dir().join(format!("phoenix-cursors-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).unwrap();
    let mut server = ServerHarness::start(&data_dir, EngineConfig::default()).unwrap();
    let addr = server.addr();

    // Seed a ticket queue.
    {
        let mut conn = Environment::new().connect(&addr, "seed", "db").unwrap();
        conn.execute("CREATE TABLE tickets (id INT PRIMARY KEY, state TEXT, priority INT)")
            .unwrap();
        let rows: Vec<String> = (1..=12)
            .map(|i| format!("({}, 'open', {})", i * 10, i % 3))
            .collect();
        conn.execute(&format!("INSERT INTO tickets VALUES {}", rows.join(", ")))
            .unwrap();
        conn.close();
    }

    let mut db = PhoenixConnection::connect(
        &Environment::new(),
        &addr,
        "triage",
        "db",
        PhoenixConfig::default(),
    )
    .unwrap();

    // ---- keyset cursor ----------------------------------------------------
    println!("keyset cursor over open tickets:");
    let mut keyset = db.statement();
    keyset.set_cursor_type(PhoenixCursorKind::Keyset);
    keyset.set_fetch_block(3);
    keyset
        .execute("SELECT id, state FROM tickets WHERE state = 'open'")
        .unwrap();
    println!("  granted: {:?}", keyset.granted_cursor().unwrap());

    let first: Vec<i64> = (0..4)
        .map(|_| keyset.fetch().unwrap().unwrap()[0].as_i64().unwrap())
        .collect();
    println!("  first four: {first:?}");

    // Concurrent modifications while the cursor is open.
    {
        let mut admin = Environment::new().connect(&addr, "admin", "db").unwrap();
        admin
            .execute("UPDATE tickets SET state = 'closed-by-admin' WHERE id = 70")
            .unwrap();
        admin.execute("DELETE FROM tickets WHERE id = 80").unwrap();
        admin
            .execute("INSERT INTO tickets VALUES (65, 'open', 9)")
            .unwrap();
        admin.close();
    }

    // …and a crash for good measure.
    server.crash().unwrap();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        server.restart().unwrap();
        server
    });

    println!("  *** server crashed and is restarting; cursor keeps scrolling ***");
    let mut rest = Vec::new();
    while let Some(row) = keyset.fetch().unwrap() {
        rest.push((row[0].as_i64().unwrap(), row[1].to_string()));
    }
    println!("  remainder: {rest:?}");
    println!(
        "  → id 70 shows updated data, id 80 (deleted) was skipped, id 65 (inserted) is invisible"
    );
    assert!(rest
        .iter()
        .any(|(id, s)| *id == 70 && s == "closed-by-admin"));
    assert!(!rest.iter().any(|(id, _)| *id == 80));
    assert!(!rest.iter().any(|(id, _)| *id == 65));
    let mut server = handle.join().unwrap();

    // ---- dynamic cursor ---------------------------------------------------
    println!("\ndynamic cursor over the same predicate:");
    let mut dynamic = db.statement();
    dynamic.set_cursor_type(PhoenixCursorKind::Dynamic);
    dynamic
        .execute("SELECT id FROM tickets WHERE state = 'open'")
        .unwrap();
    println!("  granted: {:?}", dynamic.granted_cursor().unwrap());

    let first = dynamic.fetch().unwrap().unwrap()[0].as_i64().unwrap();
    println!("  first: {first}");

    {
        let mut admin = Environment::new().connect(&addr, "admin", "db").unwrap();
        admin
            .execute("INSERT INTO tickets VALUES (15, 'open', 5)")
            .unwrap();
        admin.close();
    }

    server.crash().unwrap();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        server.restart().unwrap();
        server
    });

    println!("  *** crash again; the dynamic cursor sees the new ticket 15 ***");
    let mut seen = vec![first];
    while let Some(row) = dynamic.fetch().unwrap() {
        seen.push(row[0].as_i64().unwrap());
    }
    println!("  visited: {seen:?}");
    assert!(seen.contains(&15), "dynamic cursor must see the insert");
    let server = handle.join().unwrap();

    println!(
        "\nstats: {} recoveries, {} materializations, {} downgrades",
        db.stats().recoveries,
        db.stats().materialized_result_sets,
        db.stats().cursor_downgrades
    );
    db.close();
    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}
