//! A nightly report runner: SQL command batches, scrollable result review,
//! and a persistent session that shrugs off a mid-report server crash.
//!
//! Demonstrates the two Phoenix APIs the other examples don't:
//! [`PhoenixConnection::execute_batch`] (the paper's "SQL Command Batch"
//! session-state element) and [`PhoenixStatement::fetch_scroll`]
//! (crash-proof scrolling over the materialized result).
//!
//! ```text
//! cargo run -p phoenix-bench --example report_batch
//! ```

use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection, PhoenixFetch};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;

fn main() {
    let data_dir = std::env::temp_dir().join(format!("phoenix-report-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).unwrap();
    let mut server = ServerHarness::start(&data_dir, EngineConfig::default()).unwrap();

    let mut db = PhoenixConnection::connect(
        &Environment::new(),
        &server.addr(),
        "report-runner",
        "sales",
        // Long sessions benefit from eager cleanup of consumed results.
        PhoenixConfig::default().with_eager_cleanup(true),
    )
    .unwrap();

    // One batch sets up the whole reporting schema and staging data.
    println!("running setup batch (6 statements)…");
    let results = db
        .execute_batch(
            "CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, amount FLOAT); \
             CREATE TABLE #staging (id INT, region TEXT, amount FLOAT); \
             INSERT INTO #staging VALUES \
               (1, 'north', 120.0), (2, 'south', 80.5), (3, 'north', 200.0), \
               (4, 'east', 45.25), (5, 'south', 310.0), (6, 'west', 99.99), \
               (7, 'north', 12.5), (8, 'east', 400.0), (9, 'west', 250.0); \
             INSERT INTO sales SELECT id, region, amount FROM #staging; \
             DROP TABLE #staging; \
             PRINT 'staging loaded and folded in'",
        )
        .unwrap();
    for r in &results {
        for m in &r.messages {
            println!("  server: {m}");
        }
    }

    // The report query, delivered through a persistent statement.
    let mut report = db.statement();
    report
        .execute(
            "SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue \
             FROM sales GROUP BY region ORDER BY revenue DESC",
        )
        .unwrap();

    println!("\ntop region:");
    let top = report.fetch_scroll(PhoenixFetch::Next, 1).unwrap();
    println!(
        "  {} — {} orders, {:.2} revenue",
        top[0][0], top[0][1], top[0][2]
    );

    // The server dies while the analyst is scrolling around the report.
    println!("\n*** server crashes while the report is open ***");
    server.crash().unwrap();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        server.restart().unwrap();
        server
    });

    println!("scrolling to the bottom of the report (masked recovery happens here):");
    let tail = report.fetch_scroll(PhoenixFetch::Absolute(2), 10).unwrap();
    for row in &tail {
        println!("  {} — {} orders, {:.2} revenue", row[0], row[1], row[2]);
    }
    println!("…and back to the top:");
    let head = report.fetch_scroll(PhoenixFetch::Absolute(0), 2).unwrap();
    for row in &head {
        println!("  {} — {} orders, {:.2} revenue", row[0], row[1], row[2]);
    }

    report.close();
    let stats = db.stats().clone();
    println!(
        "\nsession stats: {} recoveries, {} materializations, {} wrapped DML",
        stats.recoveries, stats.materialized_result_sets, stats.wrapped_dml
    );
    assert!(stats.recoveries >= 1, "the crash should have been absorbed");

    db.close();
    let server = restarter.join().unwrap();
    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}
