//! The paper's illustrative client-server session (§2, Figure 1), run twice:
//! once uneventfully and once with the database server crashing in the
//! middle of step 5 — with the *same application code*.
//!
//! The task, verbatim from the paper: "extract the appropriate records for a
//! customer with the last name Smith, find that customer's current orders,
//! and then aggregate the order totals into the invoice summary table."
//!
//! 1. Open a connection and set application-specific options.
//! 2. Create a result set from the customer table for last name 'Smith'.
//! 3. Fetch until the appropriate customer is found.
//! 4. Open a cursor on the orders table for that customer's orders.
//! 5. Fetch all matching order detail records.        ← crash lands here
//! 6. Aggregate the order totals.
//! 7. Update the invoices table with the aggregate.
//! 8. Close the connection.
//!
//! ```text
//! cargo run -p phoenix-bench --example customer_orders
//! ```

use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection, PhoenixCursorKind};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;

/// Steps 1–8 of the paper's example. Contains **zero** failure-handling
/// code; that is the entire point.
fn run_application(addr: &str) -> f64 {
    // Step 1: connect and set application-specific connection attributes.
    let mut db = PhoenixConnection::connect(
        &Environment::new(),
        addr,
        "order-app",
        "sales",
        PhoenixConfig::default(),
    )
    .unwrap();
    db.execute("SET app_name 'customer-orders'").unwrap();
    db.execute("SET lock_timeout 5000").unwrap();

    // Step 2: result set from the customer table (A) for last name Smith.
    let mut stmt = db.statement();
    stmt.execute("SELECT id, first_name, city FROM customers WHERE last_name = 'Smith'")
        .unwrap();

    // Step 3: fetch until the appropriate customer is found.
    let mut customer_id = None;
    while let Some(row) = stmt.fetch().unwrap() {
        if row[2] == Value::Text("Redmond".into()) {
            customer_id = row[0].as_i64();
            println!("  found customer: {} Smith (#{})", row[1], row[0]);
            break;
        }
    }
    let customer_id = customer_id.expect("a Smith in Redmond exists");

    // Step 4: open a cursor on the orders table (B) for this customer.
    let mut orders = db.statement();
    orders.set_cursor_type(PhoenixCursorKind::Keyset);
    orders
        .execute(&format!(
            "SELECT order_id, amount FROM orders WHERE customer_id = {customer_id}"
        ))
        .unwrap();

    // Steps 5 + 6: fetch all matching order detail rows, aggregating.
    let mut total = 0.0;
    let mut n = 0;
    while let Some(row) = orders.fetch().unwrap() {
        total += row[1].as_f64().unwrap();
        n += 1;
    }
    println!("  aggregated {n} orders totalling {total:.2}");

    // Step 7: update the invoice summary table (C) with the aggregate.
    db.execute(&format!(
        "UPDATE invoices SET total = {total:.2}, order_count = {n} WHERE customer_id = {customer_id}"
    ))
    .unwrap();

    // Step 8: close the connection, terminating the session.
    db.close();
    total
}

fn seed(addr: &str) {
    let env = Environment::new();
    let mut conn = env.connect(addr, "dba", "sales").unwrap();
    conn.execute(
        "CREATE TABLE customers (id INT PRIMARY KEY, first_name TEXT, last_name TEXT, city TEXT)",
    )
    .unwrap();
    conn.execute(
        "INSERT INTO customers VALUES \
         (1, 'Alice', 'Smith', 'Seattle'), (2, 'Bob', 'Jones', 'Portland'), \
         (3, 'Carol', 'Smith', 'Redmond'), (4, 'Dan', 'Smith', 'Spokane')",
    )
    .unwrap();
    conn.execute("CREATE TABLE orders (order_id INT PRIMARY KEY, customer_id INT, amount FLOAT)")
        .unwrap();
    let mut tuples = Vec::new();
    for i in 0..40 {
        // Customer 3 owns every fourth order.
        tuples.push(format!("({i}, {}, {}.50)", (i % 4) + 1, (i + 1) * 10));
    }
    conn.execute(&format!("INSERT INTO orders VALUES {}", tuples.join(", ")))
        .unwrap();
    conn.execute(
        "CREATE TABLE invoices (customer_id INT PRIMARY KEY, total FLOAT, order_count INT)",
    )
    .unwrap();
    conn.execute("INSERT INTO invoices VALUES (1, 0.0, 0), (2, 0.0, 0), (3, 0.0, 0), (4, 0.0, 0)")
        .unwrap();
    conn.close();
}

fn read_invoice(addr: &str) -> (f64, i64) {
    let env = Environment::new();
    let mut conn = env.connect(addr, "dba", "sales").unwrap();
    let r = conn
        .execute("SELECT total, order_count FROM invoices WHERE customer_id = 3")
        .unwrap();
    let out = (
        r.rows()[0][0].as_f64().unwrap(),
        r.rows()[0][1].as_i64().unwrap(),
    );
    conn.close();
    out
}

fn main() {
    let data_dir = std::env::temp_dir().join(format!("phoenix-custord-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).unwrap();
    let mut server = ServerHarness::start(&data_dir, EngineConfig::default()).unwrap();
    seed(&server.addr());

    println!("run 1 — no failures:");
    let total1 = run_application(&server.addr());
    let (inv1, n1) = read_invoice(&server.addr());
    println!("  invoice summary now: total={inv1:.2} ({n1} orders)\n");

    println!("run 2 — the server crashes while order details are being fetched:");
    let addr = server.addr();
    let killer = std::thread::spawn(move || {
        // Give the app time to reach step 5, then pull the plug.
        std::thread::sleep(Duration::from_millis(60));
        server.crash().unwrap();
        std::thread::sleep(Duration::from_millis(250));
        server.restart().unwrap();
        server
    });
    let total2 = run_application(&addr);
    let server = killer.join().unwrap();
    let (inv2, n2) = read_invoice(&addr);
    println!("  invoice summary now: total={inv2:.2} ({n2} orders)");

    assert_eq!(total1, total2, "the two runs must agree");
    assert_eq!((inv1, n1), (inv2, n2));
    println!("\nidentical results with and without the crash — the outage was masked.");

    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}
