//! The engine facade: sessions, statement execution, cursors, checkpoints.
//!
//! This is the object the server shares across connection threads. Its
//! lifecycle mirrors a real DBMS process:
//!
//! * [`Engine::open`] performs crash recovery (via the durability layer) and
//!   starts with **zero sessions** — all session state from a previous
//!   incarnation (temp tables, cursors, options, open transactions) is gone.
//! * Statements from a session run under that session's explicit transaction
//!   if one is open, otherwise autocommit.
//! * Dropping the engine without [`Engine::checkpoint`] loses nothing
//!   committed: the WAL replays on the next open.
//!
//! # Concurrency
//!
//! Every public method takes `&self`; the engine is shared as an `Arc` and
//! driven from many connection threads at once:
//!
//! * the session catalog is a `RwLock<HashMap>` of `Arc<Mutex<SessionState>>`
//!   entries — looking a session up takes a short shared lock, and only the
//!   *session's own* mutex is held while its statement runs, so different
//!   sessions execute concurrently;
//! * durable reads grab the storage layer's *published snapshot* — an O(1)
//!   `Arc` clone — and execute against it with no lock held, so a long scan
//!   never blocks writers and a queued writer never blocks new readers;
//!   each statement (and each cursor fetch) takes a fresh snapshot, while
//!   mutations serialize on the writer lock and commits group-flush;
//! * the *stall gate* is a reader-writer lock every entry point acquires in
//!   shared mode; the test harness takes it exclusively to simulate a server
//!   that has stopped responding without dying.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use phoenix_sql::ast::{ExecStmt, ObjectName, SelectStmt, Statement};
use phoenix_sql::display::render_statement;
use phoenix_sql::parser::{parse_statement, parse_statements};
use phoenix_storage::db::{CheckpointStats, Durability, Durable, RecoveryOptions, RecoveryReport};
use phoenix_storage::store::StoreSnapshot;
use phoenix_storage::types::{Row, Schema, TxnId, Value};

use crate::cursor::{Cursor, CursorId, CursorKind, FetchDir, Fetched};
use crate::error::{EngineError, ErrorCode, Result};
use crate::eval::{eval, Env};
use crate::exec::{
    build_table_def, compute_delete, compute_insert_rows, compute_update, CatalogView,
};
use crate::metrics::engine_metrics;
use crate::plan::execute_select;
use crate::session::{SessionId, SessionState};

/// When a commit acknowledges, relative to replication.
///
/// The classic commit-latency / durability-scope tradeoff: `Async` loses
/// the unshipped tail of acknowledged commits if the primary host is
/// destroyed (crash-and-restart still loses nothing — the local WAL has
/// it); `SemiSync` holds each commit until the standby has acknowledged
/// receipt of its highest log record, so a promoted standby has every
/// acknowledged write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Acknowledge on primary fsync (default). Lowest latency; replication
    /// lag bounds what a *lost* (not merely crashed) primary can forget.
    #[default]
    Async,
    /// Acknowledge when the standby has confirmed receipt of the commit's
    /// log record (or after a bounded degrade window if no standby is
    /// attached, so a dead standby cannot wedge the primary).
    SemiSync,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Commit durability for the WAL.
    pub durability: Durability,
    /// Take a checkpoint automatically once this many log records have
    /// accumulated and the engine is quiescent. `None` disables.
    pub checkpoint_every: Option<u64>,
    /// Worker threads for partitioned WAL replay during recovery.
    /// `None` uses the machine's available parallelism; `Some(1)` forces
    /// the sequential path.
    pub replay_threads: Option<usize>,
    /// Write-path partitions (per-partition store shard + WAL stream +
    /// group committer). `None` picks `min(8, available cores)`; `Some(1)`
    /// forces the single-stream layout.
    pub partitions: Option<usize>,
    /// Bounded fsync delay for the group-commit leaders, in microseconds.
    /// `0` (the default) flushes immediately.
    pub group_commit_window_us: u64,
    /// Cap on concurrently *resident* (in-memory) sessions. When a new
    /// session would exceed the cap, the engine spills the least-recently
    /// active idle session to the durable spill table to make room; if no
    /// session is spillable the caller gets [`ErrorCode::Busy`] — a
    /// retryable error by the driver's taxonomy. `None` (the default)
    /// disables the cap.
    pub max_sessions: Option<usize>,
    /// Commit acknowledgement mode relative to replication. `Async` (the
    /// default) acknowledges on primary fsync; `SemiSync` waits for the
    /// standby's receive-ack (bounded by a degrade window). Ignored unless
    /// a replication shipper is attached.
    pub commit_mode: CommitMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            durability: Durability::Fsync,
            checkpoint_every: Some(100_000),
            replay_threads: None,
            partitions: None,
            group_commit_window_us: 0,
            max_sessions: None,
            commit_mode: CommitMode::default(),
        }
    }
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A complete (default) result set.
    ResultSet {
        /// Result metadata.
        schema: Schema,
        /// All result rows.
        rows: Vec<Row>,
    },
    /// Rows affected by a data-modification statement.
    RowsAffected(u64),
    /// DDL / SET / transaction control.
    Done,
}

/// Statement result: outcome plus any server messages generated (PRINT).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// What the statement produced.
    pub outcome: ExecOutcome,
    /// Server messages generated during execution (PRINT).
    pub messages: Vec<String>,
}

impl ExecResult {
    fn done() -> ExecResult {
        ExecResult {
            outcome: ExecOutcome::Done,
            messages: Vec::new(),
        }
    }

    /// Rows of a result set, panicking otherwise (test convenience).
    pub fn rows(&self) -> &[Row] {
        match &self.outcome {
            ExecOutcome::ResultSet { rows, .. } => rows,
            other => panic!("expected result set, got {other:?}"),
        }
    }

    /// Rows-affected count, panicking otherwise (test convenience).
    pub fn affected(&self) -> u64 {
        match &self.outcome {
            ExecOutcome::RowsAffected(n) => *n,
            other => panic!("expected rows-affected, got {other:?}"),
        }
    }
}

/// A session catalog entry: the session's state behind its own mutex, plus
/// a lock-free last-activity stamp the lifecycle manager reads to pick
/// idle-spill and LRU-eviction victims without touching the state lock.
pub(crate) struct SessionEntry {
    /// The session's state; statements serialize on this mutex.
    pub(crate) state: Mutex<SessionState>,
    /// `phoenix_obs::now_us()` of the last engine call that touched this
    /// session.
    pub(crate) last_active: AtomicU64,
}

impl SessionEntry {
    pub(crate) fn new(state: SessionState) -> SessionEntry {
        SessionEntry {
            state: Mutex::new(state),
            last_active: AtomicU64::new(phoenix_obs::now_us()),
        }
    }

    pub(crate) fn touch(&self) {
        self.last_active
            .store(phoenix_obs::now_us(), Ordering::Relaxed);
    }
}

/// The database engine. Shared across connection threads (`&self` API).
pub struct Engine {
    pub(crate) durable: Durable,
    /// Session catalog. The outer lock is held only to look up / insert /
    /// remove entries; each session's statements serialize on its own mutex.
    pub(crate) sessions: RwLock<HashMap<SessionId, Arc<SessionEntry>>>,
    pub(crate) next_session: AtomicU64,
    next_cursor: AtomicU64,
    pub(crate) config: EngineConfig,
    /// Every entry point holds this in shared mode for the duration of the
    /// call; [`Engine::stall`] takes it exclusively so the test harness can
    /// freeze the server without killing it.
    pub(crate) stall_gate: RwLock<()>,
    /// Server-incarnation stamp baked into spill-table keys so rows written
    /// by a previous incarnation can never be mistaken for live spills after
    /// a crash (stale rows age out via the retention window instead).
    pub(crate) incarnation: u64,
    /// Index of sessions currently spilled to the durable spill table.
    /// A session id is in *either* `sessions` or here, never both; after a
    /// crash the index starts empty, which is what makes stale spill rows
    /// unrestorable. Lock order: `spilled` before `sessions`.
    pub(crate) spilled: Mutex<HashMap<SessionId, crate::spill::SpilledInfo>>,
    /// Data directory, kept for epoch/fence marker persistence.
    data_dir: std::path::PathBuf,
    /// Replication epoch this incarnation serves under, read from the
    /// `phoenix.epoch` file at open (1 if absent). A promotion bumps the
    /// file before the promoted engine opens, so the new primary always
    /// outranks every deposed one.
    epoch: u64,
}

/// Name of the replication-epoch file inside the data directory.
const EPOCH_FILE: &str = "phoenix.epoch";
/// Sticky fence marker: its presence means this data directory belongs to a
/// deposed incarnation and must never accept writes again.
const FENCED_FILE: &str = "phoenix.fenced";

/// Read the replication epoch recorded in `dir` (1 if none recorded).
pub fn read_epoch(dir: impl AsRef<std::path::Path>) -> u64 {
    std::fs::read_to_string(dir.as_ref().join(EPOCH_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Durably record `epoch` in `dir`'s epoch file (write + fsync + rename).
pub fn write_epoch(dir: impl AsRef<std::path::Path>, epoch: u64) -> std::io::Result<()> {
    let dir = dir.as_ref();
    let tmp = dir.join("phoenix.epoch.tmp");
    std::fs::write(&tmp, format!("{epoch}\n"))?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, dir.join(EPOCH_FILE))?;
    Ok(())
}

impl Engine {
    /// Open (and recover) the database in `dir`.
    pub fn open(dir: impl AsRef<std::path::Path>, config: EngineConfig) -> Result<Engine> {
        Self::open_with_image(dir, config, None)
    }

    /// Open the database in `dir` from an already-materialized warm image —
    /// the standby promotion path. The image (built by continuously applying
    /// shipped frames) replaces the snapshot-load + full-replay phase of
    /// recovery; only the log tail at or past the image's watermark replays.
    pub fn open_warm(
        dir: impl AsRef<std::path::Path>,
        config: EngineConfig,
        image: phoenix_storage::WarmImage,
    ) -> Result<Engine> {
        Self::open_with_image(dir, config, Some(image))
    }

    fn open_with_image(
        dir: impl AsRef<std::path::Path>,
        config: EngineConfig,
        image: Option<phoenix_storage::WarmImage>,
    ) -> Result<Engine> {
        let dir = dir.as_ref();
        let partitions = config.partitions.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        });
        let opts = RecoveryOptions {
            replay_threads: config.replay_threads,
            partitions: Some(partitions),
            group_commit_window_us: config.group_commit_window_us,
        };
        let durable = match image {
            None => Durable::open_opts(dir, config.durability, &opts)?,
            Some(image) => Durable::open_warm(dir, config.durability, &opts, image)?,
        };
        let epoch = read_epoch(dir);
        if dir.join(FENCED_FILE).exists() {
            // Sticky: a deposed primary stays deposed across restarts.
            durable.fence();
        }
        if config.commit_mode == CommitMode::SemiSync {
            durable.set_commit_wait(Some(std::time::Duration::from_secs(2)));
        }
        let incarnation = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            & (i64::MAX as u64);
        Ok(Engine {
            durable,
            sessions: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            next_cursor: AtomicU64::new(1),
            config,
            stall_gate: RwLock::new(()),
            incarnation,
            spilled: Mutex::new(HashMap::new()),
            data_dir: dir.to_path_buf(),
            epoch,
        })
    }

    // -- replication ---------------------------------------------------------

    /// The replication epoch this incarnation serves under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this incarnation has been fenced (deposed by a newer primary).
    pub fn is_fenced(&self) -> bool {
        self.durable.is_fenced()
    }

    /// Fence this incarnation if `new_epoch` outranks its own epoch.
    ///
    /// Returns `true` if the engine is fenced after the call (whether by
    /// this call or earlier). Fencing is durable — a marker file makes a
    /// restarted deposed primary come back fenced — and immediate: every
    /// in-flight and future `wal.append` on this incarnation is refused.
    pub fn fence(&self, new_epoch: u64) -> bool {
        if self.durable.is_fenced() {
            return true;
        }
        if new_epoch <= self.epoch {
            return false;
        }
        // Persist the marker *before* flipping the in-memory switch: if we
        // crash in between, the restart re-reads the marker and stays
        // fenced; the reverse order could lose the fence across a crash.
        if let Err(e) = std::fs::write(self.data_dir.join(FENCED_FILE), format!("{new_epoch}\n")) {
            phoenix_obs::journal().record(
                "engine",
                phoenix_obs::EventKind::Other,
                format!("failed to persist fence marker: {e}"),
            );
        }
        self.durable.fence();
        phoenix_obs::journal().record(
            "engine",
            phoenix_obs::EventKind::ServerLifecycle,
            format!("fenced by epoch {new_epoch} (own epoch {})", self.epoch),
        );
        true
    }

    /// Attach a replication shipper: enable the WAL tap and return every
    /// durable frame past `standby_last_gsn` as backlog.
    pub fn repl_attach(&self, standby_last_gsn: u64) -> Result<Vec<phoenix_storage::ShipFrame>> {
        Ok(self.durable.repl_attach(standby_last_gsn)?)
    }

    /// Drain up to `max` shippable frames, waiting up to `wait` for traffic.
    pub fn repl_poll(
        &self,
        max: usize,
        wait: std::time::Duration,
    ) -> Result<Vec<phoenix_storage::ShipFrame>> {
        Ok(self.durable.repl_poll(max, wait)?)
    }

    /// Record the standby's receive-ack high-water mark.
    pub fn repl_ack(&self, gsn: u64) {
        self.durable.repl_ack(gsn)
    }

    /// Detach the shipper and disable the WAL tap.
    pub fn repl_detach(&self) {
        self.durable.repl_detach()
    }

    /// Highest GSN ever allocated by this incarnation's log.
    pub fn last_gsn(&self) -> u64 {
        self.durable.last_gsn()
    }

    /// The standby's receive-ack high-water mark (0 until one attaches).
    pub fn repl_acked_gsn(&self) -> u64 {
        self.durable.repl_acked_gsn()
    }

    /// The durable store's current published snapshot (tests, tooling).
    /// O(1), lock-free to hold: the image is immutable and later mutations
    /// publish new snapshots without touching this one.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        self.durable.snapshot()
    }

    /// What recovery did when this engine opened (bench/tooling probe).
    pub fn recovery_report(&self) -> &RecoveryReport {
        self.durable.recovery_report()
    }

    /// Stats from the most recent checkpoint (bench/tooling probe).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.durable.checkpoint_stats()
    }

    /// Number of `sync_data` calls the WAL has issued (group-commit probe).
    pub fn wal_sync_count(&self) -> u64 {
        self.durable.wal_sync_count()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// Block every engine entry point for `d`, simulating a server that has
    /// stopped responding without dying (test harness hook).
    pub fn stall(&self, d: std::time::Duration) {
        self.stall_with(d, || {});
    }

    /// Like [`Engine::stall`], but invokes `engaged` once the gate is
    /// actually held — a handshake for harnesses that must not return to
    /// the caller before the stall has taken effect.
    pub fn stall_with(&self, d: std::time::Duration, engaged: impl FnOnce()) {
        let _gate = self.stall_gate.write();
        engaged();
        std::thread::sleep(d);
    }

    // -- session lifecycle ---------------------------------------------------

    /// Open a new session for `user`, unconditionally (no session cap).
    /// Servers that honor `max_sessions` go through
    /// [`Engine::try_create_session`] instead.
    pub fn create_session(&self, user: &str) -> SessionId {
        let _gate = self.stall_gate.read();
        self.install_session(user)
    }

    pub(crate) fn install_session(&self, user: &str) -> SessionId {
        let mut sessions = self.sessions.write();
        self.install_session_locked(&mut sessions, user)
    }

    /// Install a session while the caller already holds the catalog write
    /// lock — lets `try_create_session` make its cap check and insert one
    /// atomic critical section.
    pub(crate) fn install_session_locked(
        &self,
        sessions: &mut HashMap<SessionId, Arc<SessionEntry>>,
        user: &str,
    ) -> SessionId {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        sessions.insert(id, Arc::new(SessionEntry::new(SessionState::new(id, user))));
        let m = engine_metrics();
        m.sessions_opened.inc();
        m.sessions_active.inc();
        id
    }

    /// Close a session: abort any open transaction, drop cursors and temp
    /// objects. (Temporary tables "are deleted when a session terminates for
    /// any reason" — the property Phoenix's liveness probe relies on.)
    ///
    /// If a statement is in flight on the session, this waits for it to
    /// finish before tearing the session down.
    pub fn close_session(&self, sid: SessionId) -> Result<()> {
        let _gate = self.stall_gate.read();
        let session = match self.sessions.write().remove(&sid) {
            Some(s) => s,
            // Temp objects die when a session terminates for any reason, so
            // closing a *spilled* session discards its durable spill row.
            None => return self.close_spilled_session(sid),
        };
        let (txn, temp_tables) = {
            let mut s = session.state.lock();
            (s.txn.take(), s.temp.tables().count() as i64)
        };
        let m = engine_metrics();
        m.sessions_active.dec();
        m.temp_tables.add(-temp_tables);
        if let Some(txn) = txn {
            self.durable.abort(txn)?;
        }
        Ok(())
    }

    /// Look up a session's shared handle. A session that was spilled to the
    /// durable spill table is transparently restored — the caller can't tell
    /// the difference, which is the lifecycle manager's contract.
    pub(crate) fn session(&self, sid: SessionId) -> Result<Arc<SessionEntry>> {
        if let Some(entry) = self.sessions.read().get(&sid).cloned() {
            entry.touch();
            return Ok(entry);
        }
        self.restore_session(sid)
    }

    /// Look up a session and run `f` with its state mutex held, re-validating
    /// after the lock is acquired: the lifecycle manager may spill a session
    /// *between* the catalog lookup (which only clones the `Arc`) and the
    /// state-lock acquisition. Executing against such an orphaned entry would
    /// silently discard the statement's session-state effects when the
    /// session is later restored from the spill row, so on a tombstone we
    /// retry the lookup — which restores the durable copy.
    fn with_session_state<R>(
        &self,
        sid: SessionId,
        f: impl FnOnce(&mut SessionState) -> Result<R>,
    ) -> Result<R> {
        let mut f = Some(f);
        loop {
            let entry = self.session(sid)?;
            let mut state = entry.state.lock();
            if state.spilled_out {
                drop(state);
                continue;
            }
            let f = f.take().expect("validated-session closure runs once");
            return f(&mut state);
        }
    }

    /// Current value of a session's SET option (observability/test hook; the
    /// engine has no `@@name` surface for arbitrary options).
    pub fn session_option(&self, sid: SessionId, name: &str) -> Result<Option<Value>> {
        let _gate = self.stall_gate.read();
        self.with_session_state(sid, |s| Ok(s.option(name).cloned()))
    }

    // -- statement execution --------------------------------------------------

    /// Parse and execute a single statement.
    pub fn execute(&self, sid: SessionId, sql: &str) -> Result<ExecResult> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(sid, &stmt)
    }

    /// Execute a batch (semicolon-separated). Results are returned per
    /// statement; execution stops at the first error.
    pub fn execute_batch(&self, sid: SessionId, sql: &str) -> Result<Vec<ExecResult>> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_stmt(sid, stmt)?);
        }
        Ok(out)
    }

    /// Execute an already-parsed statement.
    pub fn execute_stmt(&self, sid: SessionId, stmt: &Statement) -> Result<ExecResult> {
        let _gate = self.stall_gate.read();
        let result = self.with_session_state(sid, |session| {
            let _t = phoenix_obs::Timer::new(engine_metrics().stmt_latency(stmt));
            self.exec_in(session, stmt, None, 0)
        });
        // Auto-checkpoint runs with no session lock held (it needs the
        // engine quiescent, and must never deadlock with our own session).
        if result.is_ok() {
            self.maybe_auto_checkpoint();
        }
        result
    }

    fn exec_in(
        &self,
        session: &mut SessionState,
        stmt: &Statement,
        params: Option<&HashMap<String, Value>>,
        depth: usize,
    ) -> Result<ExecResult> {
        // `@@ROWCOUNT` is session state: substitute the previous statement's
        // count before execution so a batch can record its own DML outcome
        // server-side (the wrapped-request pattern).
        let substituted = phoenix_sql::rewrite::substitute_sysvar(
            stmt,
            "ROWCOUNT",
            &phoenix_sql::ast::Literal::Int(session.rowcount as i64),
        );
        let stmt = substituted.as_ref().unwrap_or(stmt);
        let result = self.exec_dispatch(session, stmt, params, depth);
        if let Ok(r) = &result {
            session.rowcount = match &r.outcome {
                ExecOutcome::RowsAffected(n) => *n,
                ExecOutcome::ResultSet { rows, .. } => rows.len() as u64,
                ExecOutcome::Done => 0,
            };
        }
        result
    }

    fn exec_dispatch(
        &self,
        session: &mut SessionState,
        stmt: &Statement,
        params: Option<&HashMap<String, Value>>,
        depth: usize,
    ) -> Result<ExecResult> {
        if depth > 8 {
            return Err(EngineError::unsupported("procedure call nesting too deep"));
        }
        match stmt {
            Statement::Begin => {
                if session.txn.is_some() {
                    return Err(EngineError::new(ErrorCode::Txn, "transaction already open"));
                }
                session.txn = Some(self.durable.begin()?);
                Ok(ExecResult::done())
            }
            Statement::Commit => {
                let txn = session
                    .txn
                    .take()
                    .ok_or_else(|| EngineError::new(ErrorCode::Txn, "no open transaction"))?;
                self.durable.commit(txn)?;
                Ok(ExecResult::done())
            }
            Statement::Rollback => {
                let txn = session
                    .txn
                    .take()
                    .ok_or_else(|| EngineError::new(ErrorCode::Txn, "no open transaction"))?;
                self.durable.abort(txn)?;
                Ok(ExecResult::done())
            }
            Statement::Set { name, value } => {
                let env = Env {
                    columns: &[],
                    row: &[],
                    params,
                    precomputed: None,
                };
                let v = eval(value, &env)?;
                session.set_option(name, v);
                Ok(ExecResult::done())
            }
            Statement::Print(e) => {
                let env = Env {
                    columns: &[],
                    row: &[],
                    params,
                    precomputed: None,
                };
                let v = eval(e, &env)?;
                Ok(ExecResult {
                    outcome: ExecOutcome::Done,
                    messages: vec![v.to_string()],
                })
            }
            Statement::Select(sel) => {
                let snap = self.durable.snapshot();
                let view = CatalogView {
                    durable: &snap,
                    temp: &session.temp,
                };
                let rs = execute_select(sel, &view, params)?;
                Ok(ExecResult {
                    outcome: ExecOutcome::ResultSet {
                        schema: rs.schema,
                        rows: rs.rows,
                    },
                    messages: Vec::new(),
                })
            }
            Statement::Insert(ins) => {
                let rows = {
                    let snap = self.durable.snapshot();
                    let view = CatalogView {
                        durable: &snap,
                        temp: &session.temp,
                    };
                    let def = view_def(&view, &ins.table)?;
                    compute_insert_rows(ins, &def, &view, params)?
                };
                let n = rows.len() as u64;
                if ins.table.is_temp() {
                    let t = session.temp.table_mut(&ins.table.canonical())?;
                    for row in rows {
                        t.insert(row)?;
                    }
                } else {
                    // One WAL append (and one writer-lock round trip) for
                    // the whole statement, however many rows it carries.
                    let name = ins.table.canonical();
                    self.with_txn(session, |db, txn| {
                        db.insert_many(txn, &name, rows)?;
                        Ok(())
                    })?;
                }
                Ok(ExecResult {
                    outcome: ExecOutcome::RowsAffected(n),
                    messages: Vec::new(),
                })
            }
            Statement::Update(upd) => {
                if upd.table.is_temp() {
                    let data = session.temp.table(&upd.table.canonical())?;
                    let changes = compute_update(upd, data, params)?;
                    let n = changes.len() as u64;
                    let t = session.temp.table_mut(&upd.table.canonical())?;
                    for (rid, row) in changes {
                        t.update(rid, row)?;
                    }
                    Ok(ExecResult {
                        outcome: ExecOutcome::RowsAffected(n),
                        messages: Vec::new(),
                    })
                } else {
                    let name = upd.table.canonical();
                    let changes = {
                        let snap = self.durable.snapshot();
                        compute_update(upd, snap.table(&name)?, params)?
                    };
                    let n = changes.len() as u64;
                    self.with_txn(session, |db, txn| {
                        for (rid, row) in changes {
                            db.update(txn, &name, rid, row)?;
                        }
                        Ok(())
                    })?;
                    Ok(ExecResult {
                        outcome: ExecOutcome::RowsAffected(n),
                        messages: Vec::new(),
                    })
                }
            }
            Statement::Delete(del) => {
                if del.table.is_temp() {
                    let data = session.temp.table(&del.table.canonical())?;
                    let ids = compute_delete(del, data, params)?;
                    let n = ids.len() as u64;
                    let t = session.temp.table_mut(&del.table.canonical())?;
                    for rid in ids {
                        t.delete(rid)?;
                    }
                    Ok(ExecResult {
                        outcome: ExecOutcome::RowsAffected(n),
                        messages: Vec::new(),
                    })
                } else {
                    let name = del.table.canonical();
                    let ids = {
                        let snap = self.durable.snapshot();
                        compute_delete(del, snap.table(&name)?, params)?
                    };
                    let n = ids.len() as u64;
                    self.with_txn(session, |db, txn| {
                        for rid in ids {
                            db.delete(txn, &name, rid)?;
                        }
                        Ok(())
                    })?;
                    Ok(ExecResult {
                        outcome: ExecOutcome::RowsAffected(n),
                        messages: Vec::new(),
                    })
                }
            }
            Statement::CreateTable(c) => {
                let def = build_table_def(c)?;
                if c.name.is_temp() {
                    session.temp.create_table(def)?;
                    engine_metrics().temp_tables.inc();
                } else {
                    self.with_txn(session, |db, txn| Ok(db.create_table(txn, def)?))?;
                }
                Ok(ExecResult::done())
            }
            Statement::DropTable { name, if_exists } => {
                let key = name.canonical();
                if name.is_temp() {
                    match session.temp.drop_table(&key) {
                        Ok(_) => engine_metrics().temp_tables.dec(),
                        Err(_) if *if_exists => {}
                        Err(e) => return Err(e.into()),
                    }
                } else {
                    let exists = self.durable.snapshot().has_table(&key);
                    if !exists {
                        if *if_exists {
                            return Ok(ExecResult::done());
                        }
                        return Err(EngineError::not_found(format!("no such table '{name}'")));
                    }
                    self.with_txn(session, |db, txn| Ok(db.drop_table(txn, &key)?))?;
                }
                Ok(ExecResult::done())
            }
            Statement::CreateProc(p) => {
                // Procedures are stored as their rendered CREATE text and
                // re-parsed at EXEC time.
                let sql = render_statement(stmt);
                let key = p.name.canonical();
                if p.name.is_temp() {
                    session.temp.create_proc(&key, &sql)?;
                } else {
                    if self.durable.snapshot().has_proc(&key) {
                        return Err(EngineError::new(
                            ErrorCode::AlreadyExists,
                            format!("procedure '{}' already exists", p.name),
                        ));
                    }
                    self.with_txn(session, |db, txn| Ok(db.create_proc(txn, &key, &sql)?))?;
                }
                Ok(ExecResult::done())
            }
            Statement::DropProc { name, if_exists } => {
                let key = name.canonical();
                if name.is_temp() {
                    match session.temp.drop_proc(&key) {
                        Ok(_) => {}
                        Err(_) if *if_exists => {}
                        Err(e) => return Err(e.into()),
                    }
                } else {
                    if !self.durable.snapshot().has_proc(&key) {
                        if *if_exists {
                            return Ok(ExecResult::done());
                        }
                        return Err(EngineError::not_found(format!(
                            "no such procedure '{name}'"
                        )));
                    }
                    self.with_txn(session, |db, txn| Ok(db.drop_proc(txn, &key)?))?;
                }
                Ok(ExecResult::done())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                let key = table.canonical();
                if table.is_temp() {
                    let col = temp_column_index(&session.temp, &key, column)?;
                    if session.temp.find_index_owner(name).is_some() {
                        return Err(EngineError::new(
                            ErrorCode::AlreadyExists,
                            format!("index '{name}' already exists"),
                        ));
                    }
                    session.temp.table_mut(&key)?.create_index(name, col)?;
                } else {
                    let snap = self.durable.snapshot();
                    let data = snap
                        .table(&key)
                        .map_err(|_| EngineError::not_found(format!("no such table '{table}'")))?;
                    let col = data.def.schema.index_of(column).ok_or_else(|| {
                        EngineError::column(format!("no column '{column}' in '{table}'"))
                    })?;
                    // Index names resolve globally at DROP time; enforce
                    // global uniqueness here so that stays unambiguous.
                    if snap.find_index_owner(name).is_some() {
                        return Err(EngineError::new(
                            ErrorCode::AlreadyExists,
                            format!("index '{name}' already exists"),
                        ));
                    }
                    drop(snap);
                    self.with_txn(
                        session,
                        |db, txn| Ok(db.create_index(txn, &key, name, col)?),
                    )?;
                }
                engine_metrics().index_ddl.inc();
                Ok(ExecResult::done())
            }
            Statement::DropIndex { name, if_exists } => {
                // Index names are not table-qualified: resolve the owning
                // table, session temp store first.
                if let Some(owner) = session
                    .temp
                    .find_index_owner(name)
                    .map(|t| t.def.name.clone())
                {
                    session.temp.table_mut(&owner)?.drop_index(name)?;
                } else {
                    let owner = self
                        .durable
                        .snapshot()
                        .find_index_owner(name)
                        .map(|t| t.def.name.clone());
                    match owner {
                        Some(owner) => {
                            self.with_txn(
                                session,
                                |db, txn| Ok(db.drop_index(txn, &owner, name)?),
                            )?;
                        }
                        None if *if_exists => return Ok(ExecResult::done()),
                        None => {
                            return Err(EngineError::not_found(format!("no such index '{name}'")))
                        }
                    }
                }
                engine_metrics().index_ddl.inc();
                Ok(ExecResult::done())
            }
            Statement::Explain(inner) => {
                let snap = self.durable.snapshot();
                let view = CatalogView {
                    durable: &snap,
                    temp: &session.temp,
                };
                let rs = crate::plan::explain_statement(inner, &view, params)?;
                Ok(ExecResult {
                    outcome: ExecOutcome::ResultSet {
                        schema: rs.schema,
                        rows: rs.rows,
                    },
                    messages: Vec::new(),
                })
            }
            Statement::Exec(e) => self.exec_proc(session, e, params, depth),
        }
    }

    /// Run `body` under the session's explicit transaction if one is open,
    /// otherwise under a fresh autocommit transaction (committed on success,
    /// aborted on error).
    fn with_txn<F>(&self, session: &mut SessionState, body: F) -> Result<()>
    where
        F: FnOnce(&Durable, TxnId) -> Result<()>,
    {
        match session.txn {
            Some(txn) => body(&self.durable, txn),
            None => {
                let txn = self.durable.begin()?;
                match body(&self.durable, txn) {
                    Ok(()) => {
                        self.durable.commit(txn)?;
                        Ok(())
                    }
                    Err(e) => {
                        self.durable.abort(txn)?;
                        Err(e)
                    }
                }
            }
        }
    }

    fn exec_proc(
        &self,
        session: &mut SessionState,
        call: &ExecStmt,
        outer_params: Option<&HashMap<String, Value>>,
        depth: usize,
    ) -> Result<ExecResult> {
        let key = call.name.canonical();
        let sql = if call.name.is_temp() {
            session.temp.proc(&key).map(str::to_string)
        } else {
            self.durable.snapshot().proc(&key).map(str::to_string)
        }
        .ok_or_else(|| EngineError::not_found(format!("no such procedure '{}'", call.name)))?;

        let parsed = parse_statement(&sql)?;
        let proc = match parsed {
            Statement::CreateProc(p) => p,
            other => {
                return Err(EngineError::internal(format!(
                    "stored procedure text is not CREATE PROCEDURE: {other:?}"
                )))
            }
        };
        if call.args.len() != proc.params.len() {
            return Err(EngineError::new(
                ErrorCode::Type,
                format!(
                    "procedure '{}' takes {} argument(s), got {}",
                    call.name,
                    proc.params.len(),
                    call.args.len()
                ),
            ));
        }
        // Bind arguments (evaluated in the caller's parameter scope).
        let mut params = HashMap::with_capacity(proc.params.len());
        for (p, arg) in proc.params.iter().zip(&call.args) {
            let env = Env {
                columns: &[],
                row: &[],
                params: outer_params,
                precomputed: None,
            };
            params.insert(p.name.clone(), eval(arg, &env)?);
        }

        let mut messages = Vec::new();
        let mut outcome = ExecOutcome::Done;
        for stmt in &proc.body {
            let r = self.exec_in(session, stmt, Some(&params), depth + 1)?;
            messages.extend(r.messages);
            match r.outcome {
                ExecOutcome::Done => {}
                other => outcome = other,
            }
        }
        Ok(ExecResult { outcome, messages })
    }

    // -- cursors ---------------------------------------------------------------

    /// Open a server cursor over a SELECT.
    pub fn open_cursor(
        &self,
        sid: SessionId,
        select: &SelectStmt,
        kind: CursorKind,
    ) -> Result<(CursorId, Schema, CursorKind)> {
        let _gate = self.stall_gate.read();
        self.with_session_state(sid, |session| {
            let id = self.next_cursor.fetch_add(1, Ordering::Relaxed);
            let result = {
                let snap = self.durable.snapshot();
                let view = CatalogView {
                    durable: &snap,
                    temp: &session.temp,
                };
                Cursor::open(id, select, kind, &view)
            };
            match result {
                Ok(cursor) => {
                    let schema = cursor.schema.clone();
                    let granted = cursor.kind;
                    session.cursors.insert(id, cursor);
                    engine_metrics().cursor_opens.inc();
                    Ok((id, schema, granted))
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Fetch from an open cursor.
    pub fn fetch(&self, sid: SessionId, cid: CursorId, dir: FetchDir, n: usize) -> Result<Fetched> {
        let _gate = self.stall_gate.read();
        self.with_session_state(sid, |session| match session.cursors.remove(&cid) {
            None => Err(EngineError::new(
                ErrorCode::Cursor,
                format!("no such cursor {cid}"),
            )),
            Some(mut cursor) => {
                engine_metrics().cursor_fetches.inc();
                let r = {
                    // A fresh snapshot per fetch: keyset/dynamic cursors see
                    // data as of this fetch, and the scan holds no lock.
                    let snap = self.durable.snapshot();
                    let view = CatalogView {
                        durable: &snap,
                        temp: &session.temp,
                    };
                    cursor.fetch(dir, n, &view)
                };
                session.cursors.insert(cid, cursor);
                r
            }
        })
    }

    /// Close an open cursor.
    pub fn close_cursor(&self, sid: SessionId, cid: CursorId) -> Result<()> {
        let _gate = self.stall_gate.read();
        self.with_session_state(sid, |session| {
            session
                .cursors
                .remove(&cid)
                .map(|_| ())
                .ok_or_else(|| EngineError::new(ErrorCode::Cursor, format!("no such cursor {cid}")))
        })
    }

    /// Cross-check every durable secondary index against its table's row
    /// image. Chaos sweeps call this after crash recovery.
    pub fn verify_indexes(&self) -> std::result::Result<(), String> {
        self.durable.snapshot().verify_indexes()
    }

    /// Describe a table visible to the session: schema plus primary-key
    /// column names (the catalog call behind the wire `Describe` request).
    pub fn describe(&self, sid: SessionId, table: &ObjectName) -> Result<(Schema, Vec<String>)> {
        let _gate = self.stall_gate.read();
        self.with_session_state(sid, |session| {
            let snap = self.durable.snapshot();
            let view = CatalogView {
                durable: &snap,
                temp: &session.temp,
            };
            use crate::plan::Catalog as _;
            let data = view.table(table)?;
            let pk = data
                .def
                .primary_key
                .iter()
                .map(|&i| data.def.schema.columns[i].name.clone())
                .collect();
            Ok((data.def.schema.clone(), pk))
        })
    }

    // -- maintenance -------------------------------------------------------------

    /// Take a checkpoint now. Fails if any session has an open transaction.
    pub fn checkpoint(&self) -> Result<()> {
        // Name the offending session when we can see one; a session busy
        // executing (mutex held) is caught by the durability layer's own
        // active-transaction check below.
        {
            let sessions = self.sessions.read();
            for s in sessions.values() {
                if let Some(s) = s.state.try_lock() {
                    if s.txn.is_some() {
                        return Err(EngineError::new(
                            ErrorCode::Txn,
                            format!("session {} has an open transaction", s.id),
                        ));
                    }
                }
            }
        }
        self.durable.checkpoint()?;
        Ok(())
    }

    fn maybe_auto_checkpoint(&self) {
        if let Some(every) = self.config.checkpoint_every {
            if self.durable.log_records_since_checkpoint() >= every {
                // Quiescence probe: any session we cannot inspect (its lock
                // is held by an in-flight statement) counts as busy; skip
                // this round rather than block. The durability layer
                // re-checks under its own locks anyway.
                let quiescent = self
                    .sessions
                    .read()
                    .values()
                    .all(|s| s.state.try_lock().map(|g| g.txn.is_none()).unwrap_or(false));
                if quiescent {
                    // Best effort, and non-blocking: `try_checkpoint` skips
                    // the round when another writer holds the working store
                    // instead of queueing behind it. Readers are unaffected
                    // either way — they run on published snapshots. Failure
                    // surfaces on the next explicit `checkpoint()` call.
                    let _ = self.durable.try_checkpoint();
                }
            }
        }
    }
}

/// Look up a table definition through the view (cloned out so the view's
/// borrow can end before mutation starts).
fn view_def(view: &CatalogView<'_>, name: &ObjectName) -> Result<phoenix_storage::types::TableDef> {
    use crate::plan::Catalog as _;
    Ok(view.table(name)?.def.clone())
}

/// Resolve a column name within a session-temp table.
fn temp_column_index(
    temp: &phoenix_storage::store::Store,
    key: &str,
    column: &str,
) -> Result<usize> {
    let data = temp.table(key)?;
    data.def
        .schema
        .index_of(column)
        .ok_or_else(|| EngineError::column(format!("no column '{column}' in '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("phoenix-engine-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn engine() -> (Engine, PathBuf) {
        let dir = temp_dir();
        (Engine::open(&dir, EngineConfig::default()).unwrap(), dir)
    }

    fn setup(e: &Engine, sid: SessionId) {
        e.execute(
            sid,
            "CREATE TABLE customer (id INT PRIMARY KEY, name TEXT, nation INT)",
        )
        .unwrap();
        e.execute(
            sid,
            "INSERT INTO customer VALUES (1, 'Smith', 10), (2, 'Jones', 10), (3, 'Smith', 20)",
        )
        .unwrap();
    }

    #[test]
    fn end_to_end_select() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        let r = e
            .execute(sid, "SELECT name FROM customer WHERE id = 2")
            .unwrap();
        assert_eq!(r.rows(), &[vec![Value::Text("Jones".into())]]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rowcount_sysvar_tracks_previous_statement() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(sid, "CREATE TABLE audit (sid TEXT, n INT)")
            .unwrap();
        // The wrapped-request pattern: a batch whose status INSERT records
        // the preceding DML's affected count via @@ROWCOUNT.
        let results = e
            .execute_batch(
                sid,
                "BEGIN; UPDATE customer SET nation = 99 WHERE name = 'Smith'; \
                 INSERT INTO audit VALUES ('s1', @@ROWCOUNT); COMMIT",
            )
            .unwrap();
        assert_eq!(results[1].affected(), 2);
        let r = e
            .execute(sid, "SELECT n FROM audit WHERE sid = 's1'")
            .unwrap();
        assert_eq!(r.rows(), &[vec![Value::Int(2)]]);
        // A non-DML statement resets @@ROWCOUNT to 0.
        e.execute(sid, "BEGIN").unwrap();
        e.execute(sid, "INSERT INTO audit VALUES ('s2', @@ROWCOUNT)")
            .unwrap();
        e.execute(sid, "COMMIT").unwrap();
        let r = e
            .execute(sid, "SELECT n FROM audit WHERE sid = 's2'")
            .unwrap();
        assert_eq!(r.rows(), &[vec![Value::Int(0)]]);
        // @@ROWCOUNT is per-session: a fresh session starts at 0.
        let sid2 = e.create_session("app");
        e.execute(sid2, "INSERT INTO audit VALUES ('s3', @@ROWCOUNT)")
            .unwrap();
        let r = e
            .execute(sid, "SELECT n FROM audit WHERE sid = 's3'")
            .unwrap();
        assert_eq!(r.rows(), &[vec![Value::Int(0)]]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn dml_counts() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        assert_eq!(
            e.execute(sid, "UPDATE customer SET nation = 30 WHERE name = 'Smith'")
                .unwrap()
                .affected(),
            2
        );
        assert_eq!(
            e.execute(sid, "DELETE FROM customer WHERE nation = 30")
                .unwrap()
                .affected(),
            2
        );
        assert_eq!(
            e.execute(sid, "INSERT INTO customer (id, name) VALUES (9, 'New')")
                .unwrap()
                .affected(),
            1
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn explicit_txn_commit_and_rollback() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(sid, "BEGIN").unwrap();
        e.execute(sid, "DELETE FROM customer WHERE id = 1").unwrap();
        e.execute(sid, "ROLLBACK").unwrap();
        assert_eq!(
            e.execute(sid, "SELECT COUNT(*) FROM customer")
                .unwrap()
                .rows()[0][0],
            Value::Int(3)
        );

        e.execute(sid, "BEGIN").unwrap();
        e.execute(sid, "DELETE FROM customer WHERE id = 1").unwrap();
        e.execute(sid, "COMMIT").unwrap();
        assert_eq!(
            e.execute(sid, "SELECT COUNT(*) FROM customer")
                .unwrap()
                .rows()[0][0],
            Value::Int(2)
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn txn_misuse_errors() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        assert_eq!(e.execute(sid, "COMMIT").unwrap_err().code, ErrorCode::Txn);
        e.execute(sid, "BEGIN").unwrap();
        assert_eq!(e.execute(sid, "BEGIN").unwrap_err().code, ErrorCode::Txn);
        e.execute(sid, "ROLLBACK").unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn autocommit_failure_rolls_back() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        // Second tuple violates the primary key; the whole statement must
        // roll back.
        let err = e
            .execute(
                sid,
                "INSERT INTO customer VALUES (50, 'A', 1), (1, 'Dup', 1)",
            )
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Constraint);
        assert_eq!(
            e.execute(sid, "SELECT COUNT(*) FROM customer")
                .unwrap()
                .rows()[0][0],
            Value::Int(3)
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn temp_tables_are_session_scoped_and_volatile() {
        let (e, dir) = engine();
        let s1 = e.create_session("a");
        let s2 = e.create_session("b");
        e.execute(s1, "CREATE TABLE #w (v INT)").unwrap();
        e.execute(s1, "INSERT INTO #w VALUES (1), (2)").unwrap();
        assert_eq!(
            e.execute(s1, "SELECT COUNT(*) FROM #w").unwrap().rows()[0][0],
            Value::Int(2)
        );
        // Invisible to the other session.
        assert_eq!(
            e.execute(s2, "SELECT * FROM #w").unwrap_err().code,
            ErrorCode::NotFound
        );
        // Gone when the session closes.
        e.close_session(s1).unwrap();
        let s3 = e.create_session("a");
        assert_eq!(
            e.execute(s3, "SELECT * FROM #w").unwrap_err().code,
            ErrorCode::NotFound
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn temp_insert_can_read_durable() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(sid, "CREATE TABLE #copy (id INT, name TEXT)")
            .unwrap();
        let n = e
            .execute(sid, "INSERT INTO #copy SELECT id, name FROM customer")
            .unwrap()
            .affected();
        assert_eq!(n, 3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn procedures_with_params() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(
            sid,
            "CREATE PROCEDURE by_name (@n TEXT) AS SELECT id FROM customer WHERE name = @n",
        )
        .unwrap();
        let r = e.execute(sid, "EXEC by_name ('Smith')").unwrap();
        assert_eq!(r.rows().len(), 2);
        // Wrong arity.
        assert_eq!(
            e.execute(sid, "EXEC by_name").unwrap_err().code,
            ErrorCode::Type
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn capture_proc_shape_runs_atomically() {
        // The exact pattern Phoenix generates for result-set capture.
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(sid, "CREATE TABLE phoenix.rs_1 (id INT, name TEXT)")
            .unwrap();
        e.execute(
            sid,
            "CREATE PROCEDURE phoenix.cap_1 AS INSERT INTO phoenix.rs_1 SELECT id, name FROM customer WHERE name = 'Smith'",
        )
        .unwrap();
        let r = e.execute(sid, "EXEC phoenix.cap_1").unwrap();
        assert_eq!(r.affected(), 2);
        let r = e.execute(sid, "SELECT * FROM phoenix.rs_1").unwrap();
        assert_eq!(r.rows().len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn print_produces_message() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        let r = e.execute(sid, "PRINT 'batch ' + '7'").unwrap();
        assert_eq!(r.messages, vec!["batch 7"]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn set_options_recorded() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        e.execute(sid, "SET lock_timeout 5000").unwrap();
        assert_eq!(
            e.session_option(sid, "lock_timeout").unwrap(),
            Some(Value::Int(5000))
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn committed_data_survives_engine_restart() {
        let dir = temp_dir();
        {
            let e = Engine::open(&dir, EngineConfig::default()).unwrap();
            let sid = e.create_session("app");
            setup(&e, sid);
            e.execute(sid, "CREATE TABLE #volatile (v INT)").unwrap();
            // Open a transaction with uncommitted work, then "crash".
            e.execute(sid, "BEGIN").unwrap();
            e.execute(sid, "DELETE FROM customer").unwrap();
            // no COMMIT — drop the engine
        }
        let e = Engine::open(&dir, EngineConfig::default()).unwrap();
        let sid = e.create_session("app");
        // Committed rows are back; uncommitted delete is not; temp is gone;
        // old session ids are dead.
        assert_eq!(
            e.execute(sid, "SELECT COUNT(*) FROM customer")
                .unwrap()
                .rows()[0][0],
            Value::Int(3)
        );
        assert_eq!(
            e.execute(sid, "SELECT * FROM #volatile").unwrap_err().code,
            ErrorCode::NotFound
        );
        assert_eq!(
            e.execute(99, "SELECT 1").unwrap_err().code,
            ErrorCode::NoSession
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn cursor_through_engine() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        let sel = match parse_statement("SELECT id FROM customer").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let (cid, schema, kind) = e.open_cursor(sid, &sel, CursorKind::Keyset).unwrap();
        assert_eq!(kind, CursorKind::Keyset);
        assert_eq!(schema.columns[0].name, "id");
        let f = e.fetch(sid, cid, FetchDir::Next, 2).unwrap();
        assert_eq!(f.rows.len(), 2);
        e.close_cursor(sid, cid).unwrap();
        assert_eq!(
            e.fetch(sid, cid, FetchDir::Next, 1).unwrap_err().code,
            ErrorCode::Cursor
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_respects_open_txns() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(sid, "BEGIN").unwrap();
        assert_eq!(e.checkpoint().unwrap_err().code, ErrorCode::Txn);
        e.execute(sid, "COMMIT").unwrap();
        e.checkpoint().unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn close_session_aborts_open_txn() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(sid, "BEGIN").unwrap();
        e.execute(sid, "DELETE FROM customer").unwrap();
        e.close_session(sid).unwrap();
        let sid2 = e.create_session("app");
        assert_eq!(
            e.execute(sid2, "SELECT COUNT(*) FROM customer")
                .unwrap()
                .rows()[0][0],
            Value::Int(3)
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn batch_execution() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        let results = e
            .execute_batch(
                sid,
                "CREATE TABLE t (v INT); INSERT INTO t VALUES (1); SELECT * FROM t",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[2].rows().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn drop_if_exists() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        e.execute(sid, "DROP TABLE IF EXISTS nothing").unwrap();
        assert_eq!(
            e.execute(sid, "DROP TABLE nothing").unwrap_err().code,
            ErrorCode::NotFound
        );
        e.execute(sid, "DROP PROCEDURE IF EXISTS nothing").unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Sessions on separate threads make progress against a shared engine —
    /// the `&self` API's basic exercise.
    #[test]
    fn sessions_execute_concurrently() {
        let (e, dir) = engine();
        let e = std::sync::Arc::new(e);
        let seed = e.create_session("seed");
        e.execute(seed, "CREATE TABLE acc (id INT PRIMARY KEY, v INT)")
            .unwrap();
        let handles: Vec<_> = (0..4)
            .map(|k: i64| {
                let e = std::sync::Arc::clone(&e);
                std::thread::spawn(move || {
                    let sid = e.create_session("worker");
                    for i in 0..25 {
                        e.execute(
                            sid,
                            &format!("INSERT INTO acc VALUES ({}, {i})", k * 25 + i),
                        )
                        .unwrap();
                        let r = e.execute(sid, "SELECT COUNT(*) FROM acc").unwrap();
                        assert!(matches!(r.rows()[0][0], Value::Int(n) if n >= 1));
                    }
                    e.close_session(sid).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            e.execute(seed, "SELECT COUNT(*) FROM acc").unwrap().rows()[0][0],
            Value::Int(100)
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A stalled engine blocks new statements until the stall ends.
    #[test]
    fn stall_blocks_execution() {
        use std::time::{Duration, Instant};
        let (e, dir) = engine();
        let e = std::sync::Arc::new(e);
        let sid = e.create_session("app");
        let e2 = std::sync::Arc::clone(&e);
        let t = std::thread::spawn(move || e2.stall(Duration::from_millis(300)));
        // Give the stall thread time to take the gate.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        e.execute(sid, "SELECT 1").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(150));
        t.join().unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn index_ddl_lifecycle_and_explain() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        // Enough rows that a 2-row bucket beats scanning (probe is only
        // chosen when it reads at most half the table).
        for i in 100..120 {
            e.execute(
                sid,
                &format!("INSERT INTO customer VALUES ({i}, 'Fill', {i})"),
            )
            .unwrap();
        }
        e.execute(sid, "CREATE INDEX ix_nation ON customer(nation)")
            .unwrap();
        // Global name uniqueness (DROP INDEX resolves by name alone).
        let err = e
            .execute(sid, "CREATE INDEX ix_nation ON customer(nation)")
            .unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::AlreadyExists);
        // The planner now serves equality on nation through the index.
        let ex = e
            .execute(sid, "EXPLAIN SELECT name FROM customer WHERE nation = 10")
            .unwrap();
        let row = &ex.rows()[0];
        assert_eq!(row[3], Value::Text("index-eq".into()));
        assert_eq!(row[4], Value::Text("ix_nation".into()));
        let r = e
            .execute(sid, "SELECT name FROM customer WHERE nation = 10")
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        e.execute(sid, "DROP INDEX ix_nation").unwrap();
        let err = e.execute(sid, "DROP INDEX ix_nation").unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
        e.execute(sid, "DROP INDEX IF EXISTS ix_nation").unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn index_survives_restart() {
        let dir = temp_dir();
        {
            let e = Engine::open(&dir, EngineConfig::default()).unwrap();
            let sid = e.create_session("app");
            setup(&e, sid);
            for i in 100..120 {
                e.execute(
                    sid,
                    &format!("INSERT INTO customer VALUES ({i}, 'Fill', {i})"),
                )
                .unwrap();
            }
            e.execute(sid, "CREATE INDEX ix_nation ON customer(nation)")
                .unwrap();
            // DML after the DDL so recovery must maintain the index.
            e.execute(sid, "INSERT INTO customer VALUES (7, 'Lee', 10)")
                .unwrap();
        }
        let e = Engine::open(&dir, EngineConfig::default()).unwrap();
        e.verify_indexes().unwrap();
        let sid = e.create_session("app");
        let ex = e
            .execute(sid, "EXPLAIN SELECT name FROM customer WHERE nation = 10")
            .unwrap();
        assert_eq!(ex.rows()[0][4], Value::Text("ix_nation".into()));
        let r = e
            .execute(sid, "SELECT name FROM customer WHERE nation = 10")
            .unwrap();
        assert_eq!(r.rows().len(), 3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn index_on_temp_table_is_session_local() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        e.execute(sid, "CREATE TABLE #t (k INT, v INT)").unwrap();
        e.execute(sid, "INSERT INTO #t VALUES (1, 10), (2, 20), (1, 30)")
            .unwrap();
        e.execute(sid, "CREATE INDEX ix_tk ON #t(k)").unwrap();
        let r = e.execute(sid, "SELECT v FROM #t WHERE k = 1").unwrap();
        assert_eq!(r.rows().len(), 2);
        // Another session neither sees the temp table nor its index name.
        let sid2 = e.create_session("app");
        e.execute(sid2, "DROP INDEX ix_tk").unwrap_err();
        e.execute(sid, "DROP INDEX ix_tk").unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn index_ddl_rolls_back() {
        let (e, dir) = engine();
        let sid = e.create_session("app");
        setup(&e, sid);
        e.execute(sid, "BEGIN").unwrap();
        e.execute(sid, "CREATE INDEX ix_nation ON customer(nation)")
            .unwrap();
        e.execute(sid, "ROLLBACK").unwrap();
        // Rolled back: the name is free again and plans fall back to scans.
        let ex = e
            .execute(sid, "EXPLAIN SELECT name FROM customer WHERE nation = 10")
            .unwrap();
        assert_eq!(ex.rows()[0][3], Value::Text("scan".into()));
        e.execute(sid, "CREATE INDEX ix_nation ON customer(nation)")
            .unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }
}
