//! SELECT execution.
//!
//! The planner is deliberately simple but real: it splits the WHERE clause
//! into conjuncts, pushes single-table conjuncts down to the scans, joins the
//! FROM list left-to-right using hash joins whenever an equi-conjunct links
//! the next table to the tables already joined (nested-loop filtering
//! otherwise), then applies grouping/aggregation, HAVING, ORDER BY and
//! LIMIT/OFFSET.
//!
//! Constant conjuncts are evaluated once before any scan — so Phoenix's
//! `WHERE 0=1` metadata probe touches no data at all, matching the paper's
//! "only query compilation is performed on the server".
//!
//! Scan order is row-id (insertion) order; a `SELECT * FROM t` with no ORDER
//! BY therefore returns rows in the order they were inserted. Phoenix's
//! result-set materialization relies on this documented property.

use std::collections::HashMap;

use phoenix_sql::ast::{Expr, ObjectName, SelectItem, SelectStmt};
use phoenix_sql::display::render_expr;
use phoenix_storage::store::TableData;
use phoenix_storage::types::{Column, Row, Schema, Value};

#[cfg(test)]
use crate::error::ErrorCode;
use crate::error::{EngineError, Result};
use crate::eval::{compare, eval, infer_type, is_aggregate, output_name, truth, BoundColumn, Env};

/// Read access to tables by (possibly qualified, possibly temp) name.
/// Implemented by the engine over its durable + session-temporary stores.
pub trait Catalog {
    /// Resolve a (possibly temp) table name to its data.
    fn table(&self, name: &ObjectName) -> Result<&TableData>;
}

/// A fully executed result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Result metadata.
    pub schema: Schema,
    /// All rows, in delivery order.
    pub rows: Vec<Row>,
}

/// Execute a SELECT, returning the complete result set.
pub fn execute_select(
    select: &SelectStmt,
    catalog: &dyn Catalog,
    params: Option<&HashMap<String, Value>>,
) -> Result<ResultSet> {
    let bound = bind_from(select, catalog)?;
    let schema = output_schema_from_binding(select, &bound)?;

    // Split WHERE into conjuncts and classify by referenced tables.
    let conjuncts = split_conjuncts(select.where_clause.as_ref());
    let mut classified = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        classified.push((c, tables_of_expr(c, &bound)?));
    }

    // Constant conjuncts: evaluate once; a false/NULL constant conjunct
    // empties the result without scanning.
    let empty_row: Row = Vec::new();
    for (c, tables) in &classified {
        if tables.is_empty() {
            let env = Env {
                columns: &[],
                row: &empty_row,
                params,
                precomputed: None,
            };
            if truth(&eval(c, &env)?)? != Some(true) {
                return finish_select(select, &bound, Vec::new(), params, schema);
            }
        }
    }

    // Join the FROM list left-to-right.
    let mut rows: Vec<Row> = Vec::new();
    let mut applied = vec![false; classified.len()];
    // Mark constant conjuncts applied (handled above).
    for (i, (_, tables)) in classified.iter().enumerate() {
        if tables.is_empty() {
            applied[i] = true;
        }
    }

    if bound.tables.is_empty() {
        // SELECT without FROM: one empty row.
        rows.push(Vec::new());
    }

    for (ti, table) in bound.tables.iter().enumerate() {
        // Scan the next table, applying its single-table conjuncts.
        let single: Vec<&Expr> = classified
            .iter()
            .enumerate()
            .filter(|(i, (_, tabs))| !applied[*i] && tabs.len() == 1 && tabs.contains(&ti))
            .map(|(_, (c, _))| *c)
            .collect();
        let scan = scan_table(table, &bound, ti, &single, params)?;
        for (i, (_, tabs)) in classified.iter().enumerate() {
            if tabs.len() == 1 && tabs.contains(&ti) {
                applied[i] = true;
            }
        }

        if ti == 0 {
            rows = scan;
        } else {
            // Equi-conjuncts linking the new table to the already-joined
            // prefix drive a hash join.
            let mut left_keys: Vec<&Expr> = Vec::new();
            let mut right_keys: Vec<&Expr> = Vec::new();
            let mut equi_idx: Vec<usize> = Vec::new();
            for (i, (c, tabs)) in classified.iter().enumerate() {
                if applied[i] || !tabs.iter().all(|t| *t <= ti) || !tabs.contains(&ti) {
                    continue;
                }
                if let Expr::Binary {
                    left,
                    op: phoenix_sql::ast::BinaryOp::Eq,
                    right,
                } = c
                {
                    let lt = tables_of_expr(left, &bound)?;
                    let rt = tables_of_expr(right, &bound)?;
                    if lt.iter().all(|t| *t < ti) && rt == vec![ti] {
                        left_keys.push(left);
                        right_keys.push(right);
                        equi_idx.push(i);
                    } else if rt.iter().all(|t| *t < ti) && lt == vec![ti] {
                        left_keys.push(right);
                        right_keys.push(left);
                        equi_idx.push(i);
                    }
                }
            }

            rows = if left_keys.is_empty() {
                cross_join(rows, scan)
            } else {
                for i in &equi_idx {
                    applied[*i] = true;
                }
                hash_join(rows, scan, &left_keys, &right_keys, &bound, ti, params)?
            };
            let joined_tables = ti + 1;

            // Apply any now-evaluable residual conjuncts.
            let cols = &bound.columns[..bound.offsets[joined_tables]];
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                let mut ok = true;
                for (i, (c, tabs)) in classified.iter().enumerate() {
                    if applied[i] || !tabs.iter().all(|t| *t < joined_tables) {
                        continue;
                    }
                    let env = Env {
                        columns: cols,
                        row: &row,
                        params,
                        precomputed: None,
                    };
                    if truth(&eval(c, &env)?)? != Some(true) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    kept.push(row);
                }
            }
            for (i, (_, tabs)) in classified.iter().enumerate() {
                if tabs.iter().all(|t| *t < joined_tables) {
                    applied[i] = true;
                }
            }
            rows = kept;
        }
    }

    // With a single table all conjuncts were applied during the scan; with
    // zero tables, apply row-level conjuncts (there are none possible beyond
    // constants). Any conjunct still unapplied here is a bug.
    debug_assert!(applied.iter().all(|a| *a), "unapplied conjunct after join");

    finish_select(select, &bound, rows, params, schema)
}

/// Compute the output schema of a SELECT without executing it — the engine's
/// answer to the metadata probe.
pub fn select_schema(select: &SelectStmt, catalog: &dyn Catalog) -> Result<Schema> {
    let bound = bind_from(select, catalog)?;
    output_schema_from_binding(select, &bound)
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

struct BoundFrom<'a> {
    /// Borrowed table data, in FROM order — scans never copy table storage.
    tables: Vec<&'a TableData>,
    /// Flattened bound columns across tables, in FROM order.
    columns: Vec<BoundColumn>,
    /// `offsets[i]` = first column index of table `i`; one extra entry holds
    /// the total width.
    offsets: Vec<usize>,
}

fn bind_from<'a>(select: &SelectStmt, catalog: &'a dyn Catalog) -> Result<BoundFrom<'a>> {
    let mut tables = Vec::with_capacity(select.from.len());
    let mut columns = Vec::new();
    let mut offsets = vec![0usize];
    for item in &select.from {
        let data = catalog.table(&item.table)?;
        let qualifier = item
            .alias
            .clone()
            .unwrap_or_else(|| item.table.name.clone());
        for col in &data.def.schema.columns {
            columns.push(BoundColumn {
                qualifier: Some(qualifier.clone()),
                name: col.name.clone(),
                dtype: col.dtype,
                nullable: col.nullable,
            });
        }
        offsets.push(columns.len());
        tables.push(data);
    }
    Ok(BoundFrom {
        tables,
        columns,
        offsets,
    })
}

/// Expand the projection list into concrete expressions with output names.
fn expand_projections(select: &SelectStmt, bound: &BoundFrom) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                if bound.columns.is_empty() {
                    return Err(EngineError::column("SELECT * with no FROM clause"));
                }
                for c in &bound.columns {
                    out.push((
                        Expr::Column {
                            table: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for c in &bound.columns {
                    if c.qualifier
                        .as_deref()
                        .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                    {
                        out.push((
                            Expr::Column {
                                table: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            c.name.clone(),
                        ));
                        any = true;
                    }
                }
                if !any {
                    return Err(EngineError::column(format!("unknown table alias '{q}'")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| output_name(expr));
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn output_schema_from_binding(select: &SelectStmt, bound: &BoundFrom) -> Result<Schema> {
    let projections = expand_projections(select, bound)?;
    let mut cols = Vec::with_capacity(projections.len());
    for (expr, name) in &projections {
        let (dtype, nullable) = infer_type(expr, &bound.columns)?;
        cols.push(Column {
            name: name.clone(),
            dtype,
            nullable,
        });
    }
    Ok(Schema::new(cols))
}

// ---------------------------------------------------------------------------
// Scanning and joining
// ---------------------------------------------------------------------------

/// Scan one table in row-id order, filtering by its single-table conjuncts.
///
/// When the conjuncts pin every primary-key column to a constant, the scan
/// collapses to an index point lookup — this is what makes Phoenix's keyset
/// cursor (one `SELECT … WHERE pk = v` per fetched row) sub-linear instead
/// of a full scan per row.
fn scan_table(
    table: &TableData,
    bound: &BoundFrom,
    table_idx: usize,
    filters: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<Row>> {
    let cols = &bound.columns[bound.offsets[table_idx]..bound.offsets[table_idx + 1]];

    // Fast path: primary-key point lookup.
    if let Some(candidates) = try_point_lookup(table, cols, filters, params)? {
        let mut out = Vec::new();
        'cands: for row in candidates {
            for f in filters {
                let env = Env {
                    columns: cols,
                    row: &row,
                    params,
                    precomputed: None,
                };
                if truth(&eval(f, &env)?)? != Some(true) {
                    continue 'cands;
                }
            }
            out.push(row);
        }
        return Ok(out);
    }

    let mut out = Vec::new();
    'rows: for row in table.rows.values() {
        for f in filters {
            let env = Env {
                columns: cols,
                row,
                params,
                precomputed: None,
            };
            if truth(&eval(f, &env)?)? != Some(true) {
                continue 'rows;
            }
        }
        out.push(row.clone());
    }
    Ok(out)
}

/// If the filter conjuncts contain `pk_col = <constant>` for every primary-
/// key column, resolve the key through the index and return the candidate
/// rows (zero or one). `None` means the fast path does not apply.
fn try_point_lookup(
    table: &TableData,
    cols: &[BoundColumn],
    filters: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> Result<Option<Vec<Row>>> {
    if !table.def.has_primary_key() {
        return Ok(None);
    }
    let empty_row: Row = Vec::new();
    let mut key = Vec::with_capacity(table.def.primary_key.len());
    for &pk_idx in &table.def.primary_key {
        let pk_name = &table.def.schema.columns[pk_idx].name;
        let mut found = None;
        for f in filters {
            if let Expr::Binary {
                left,
                op: phoenix_sql::ast::BinaryOp::Eq,
                right,
            } = f
            {
                let (col_side, const_side) =
                    if is_column_named(left, pk_name, cols) && is_constant(right) {
                        (left, right)
                    } else if is_column_named(right, pk_name, cols) && is_constant(left) {
                        (right, left)
                    } else {
                        continue;
                    };
                let _ = col_side;
                let env = Env {
                    columns: &[],
                    row: &empty_row,
                    params,
                    precomputed: None,
                };
                let v = eval(const_side, &env)?;
                // Coerce to the key column's type so index comparison is
                // exact (e.g. `k = 5` against a FLOAT key).
                let coerced = v
                    .coerce_to(table.def.schema.columns[pk_idx].dtype)
                    .unwrap_or(v);
                found = Some(coerced);
                break;
            }
        }
        match found {
            Some(v) => key.push(v),
            None => return Ok(None),
        }
    }
    Ok(Some(match table.row_id_by_key(&key) {
        Some(rid) => vec![table.rows[&rid].clone()],
        None => Vec::new(),
    }))
}

/// Is `e` a bare reference to the column `name` of this table?
fn is_column_named(e: &Expr, name: &str, cols: &[BoundColumn]) -> bool {
    match e {
        Expr::Column { table, name: n } if n.eq_ignore_ascii_case(name) => match table {
            None => true,
            Some(q) => cols.iter().any(|c| {
                c.qualifier
                    .as_deref()
                    .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
            }),
        },
        Expr::Nested(inner) => is_column_named(inner, name, cols),
        _ => false,
    }
}

/// Constant expression: literals and parameters only (no column refs).
fn is_constant(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Nested(inner) => is_constant(inner),
        Expr::Unary { expr, .. } => is_constant(expr),
        Expr::Binary { left, right, .. } => is_constant(left) && is_constant(right),
        _ => false,
    }
}

fn cross_join(left: Vec<Row>, right: Vec<Row>) -> Vec<Row> {
    let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()));
    for l in &left {
        for r in &right {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            out.push(row);
        }
    }
    out
}

/// Hash join: build on the (smaller, already-filtered) right input, probe
/// with the joined prefix.
#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: Vec<Row>,
    right: Vec<Row>,
    left_keys: &[&Expr],
    right_keys: &[&Expr],
    bound: &BoundFrom,
    right_table: usize,
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<Row>> {
    let right_cols = &bound.columns[bound.offsets[right_table]..bound.offsets[right_table + 1]];
    let left_cols = &bound.columns[..bound.offsets[right_table]];

    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(right.len());
    for r in &right {
        let env = Env {
            columns: right_cols,
            row: r,
            params,
            precomputed: None,
        };
        let mut key = Vec::with_capacity(right_keys.len());
        let mut null = false;
        for k in right_keys {
            let v = eval(k, &env)?;
            if v.is_null() {
                null = true;
                break;
            }
            key.push(v);
        }
        if !null {
            table.entry(key).or_default().push(r);
        }
    }

    let mut out = Vec::new();
    for l in &left {
        let env = Env {
            columns: left_cols,
            row: l,
            params,
            precomputed: None,
        };
        let mut key = Vec::with_capacity(left_keys.len());
        let mut null = false;
        for k in left_keys {
            let v = eval(k, &env)?;
            if v.is_null() {
                null = true;
                break;
            }
            key.push(v);
        }
        if null {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for r in matches {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Conjunct analysis
// ---------------------------------------------------------------------------

/// Split an optional predicate into top-level AND conjuncts.
pub fn split_conjuncts(pred: Option<&Expr>) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: phoenix_sql::ast::BinaryOp::And,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Nested(inner) => walk(inner, out),
            other => out.push(other.clone()),
        }
    }
    if let Some(p) = pred {
        walk(p, &mut out);
    }
    out
}

/// Which FROM tables does this expression reference? Sorted, deduplicated.
fn tables_of_expr(expr: &Expr, bound: &BoundFrom) -> Result<Vec<usize>> {
    let mut tables = Vec::new();
    collect_tables(expr, bound, &mut tables)?;
    tables.sort_unstable();
    tables.dedup();
    Ok(tables)
}

fn collect_tables(expr: &Expr, bound: &BoundFrom, out: &mut Vec<usize>) -> Result<()> {
    match expr {
        Expr::Column { table, name } => {
            let env = Env::new(&bound.columns, &[]);
            let idx = env.resolve(table.as_deref(), name)?;
            // Map the flat column index back to its table.
            let t = bound
                .offsets
                .windows(2)
                .position(|w| idx >= w[0] && idx < w[1])
                .ok_or_else(|| EngineError::internal("column offset out of range"))?;
            out.push(t);
            Ok(())
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Nested(expr) => {
            collect_tables(expr, bound, out)
        }
        Expr::Binary { left, right, .. } => {
            collect_tables(left, bound, out)?;
            collect_tables(right, bound, out)
        }
        Expr::Function { args, .. } => {
            for a in args {
                if !matches!(a, Expr::Wildcard) {
                    collect_tables(a, bound, out)?;
                }
            }
            Ok(())
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_tables(c, bound, out)?;
                collect_tables(v, bound, out)?;
            }
            if let Some(e) = else_expr {
                collect_tables(e, bound, out)?;
            }
            Ok(())
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_tables(expr, bound, out)?;
            collect_tables(low, bound, out)?;
            collect_tables(high, bound, out)
        }
        Expr::InList { expr, list, .. } => {
            collect_tables(expr, bound, out)?;
            for e in list {
                collect_tables(e, bound, out)?;
            }
            Ok(())
        }
        Expr::Like { expr, pattern, .. } => {
            collect_tables(expr, bound, out)?;
            collect_tables(pattern, bound, out)
        }
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Aggregation / projection / ordering
// ---------------------------------------------------------------------------

/// Collect the distinct aggregate expressions appearing anywhere in the
/// statement's output positions, keyed by rendered text.
fn collect_aggregates(select: &SelectStmt) -> Vec<Expr> {
    let mut seen: Vec<Expr> = Vec::new();
    let mut push = |e: &Expr| {
        let key = render_expr(e);
        if !seen.iter().any(|s| render_expr(s) == key) {
            seen.push(e.clone());
        }
    };
    fn walk(e: &Expr, push: &mut dyn FnMut(&Expr)) {
        match e {
            Expr::Function { name, .. } if is_aggregate(name) => push(e),
            Expr::Function { args, .. } => args.iter().for_each(|a| walk(a, push)),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Nested(expr) => {
                walk(expr, push)
            }
            Expr::Binary { left, right, .. } => {
                walk(left, push);
                walk(right, push);
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    walk(c, push);
                    walk(v, push);
                }
                if let Some(x) = else_expr {
                    walk(x, push);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, push);
                walk(low, push);
                walk(high, push);
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, push);
                list.iter().for_each(|x| walk(x, push));
            }
            Expr::Like { expr, pattern, .. } => {
                walk(expr, push);
                walk(pattern, push);
            }
            _ => {}
        }
    }
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut push);
        }
    }
    if let Some(h) = &select.having {
        walk(h, &mut push);
    }
    for o in &select.order_by {
        walk(&o.expr, &mut push);
    }
    seen
}

fn finish_select(
    select: &SelectStmt,
    bound: &BoundFrom,
    rows: Vec<Row>,
    params: Option<&HashMap<String, Value>>,
    schema: Schema,
) -> Result<ResultSet> {
    let projections = expand_projections(select, bound)?;
    let aggregates = collect_aggregates(select);
    let grouped = !select.group_by.is_empty() || !aggregates.is_empty();

    // (output row, sort-env precomputed map, input row) triples for ORDER BY.
    type SortableRow = (Row, Option<HashMap<String, Value>>, Option<Row>);
    let mut output: Vec<SortableRow> = Vec::new();

    if grouped {
        // Group rows by group-key values.
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        for row in rows {
            let env = Env {
                columns: &bound.columns,
                row: &row,
                params,
                precomputed: None,
            };
            let mut key = Vec::with_capacity(select.group_by.len());
            for g in &select.group_by {
                key.push(eval(g, &env)?);
            }
            let mut kb = bytes::BytesMut::new();
            phoenix_storage::codec::put_row(&mut kb, &key);
            let kb = kb.to_vec();
            match index.get(&kb) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    index.insert(kb, groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // A global aggregate over zero rows still yields one group.
        if groups.is_empty() && select.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        for (key, grows) in &groups {
            let mut pre: HashMap<String, Value> = HashMap::new();
            for (g, k) in select.group_by.iter().zip(key.iter()) {
                pre.insert(render_expr(g), k.clone());
            }
            for agg in &aggregates {
                let v = compute_aggregate(agg, grows, bound, params)?;
                pre.insert(render_expr(agg), v);
            }
            // Representative row for column refs not captured by the group
            // key (lenient, MySQL-style; strict SQL would reject them).
            let rep = grows.first().cloned().unwrap_or_default();
            let env = Env {
                columns: &bound.columns,
                row: &rep,
                params,
                precomputed: Some(&pre),
            };
            if let Some(h) = &select.having {
                if truth(&eval(h, &env)?)? != Some(true) {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(projections.len());
            for (expr, _) in &projections {
                out_row.push(eval(expr, &env)?);
            }
            output.push((out_row, Some(pre), Some(rep)));
        }
    } else {
        for row in rows {
            let env = Env {
                columns: &bound.columns,
                row: &row,
                params,
                precomputed: None,
            };
            let mut out_row = Vec::with_capacity(projections.len());
            for (expr, _) in &projections {
                out_row.push(eval(expr, &env)?);
            }
            output.push((out_row, None, Some(row)));
        }
    }

    // SELECT DISTINCT: deduplicate output rows (before ordering, as SQL
    // defines — DISTINCT is a property of the result set).
    if select.distinct {
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        output.retain(|(row, _, _)| {
            let mut kb = bytes::BytesMut::new();
            phoenix_storage::codec::put_row(&mut kb, row);
            seen.insert(kb.to_vec())
        });
    }

    // ORDER BY.
    if !select.order_by.is_empty() {
        // Precompute sort keys.
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(output.len());
        for (out_row, pre, in_row) in &output {
            let mut keys = Vec::with_capacity(select.order_by.len());
            for item in &select.order_by {
                let v = sort_key_value(
                    &item.expr,
                    select,
                    &projections,
                    out_row,
                    pre.as_ref(),
                    in_row.as_deref(),
                    bound,
                    params,
                )?;
                keys.push(v);
            }
            keyed.push((keys, out_row.clone()));
        }
        keyed.sort_by(|a, b| {
            for (i, item) in select.order_by.iter().enumerate() {
                let ord = a.0[i].cmp(&b.0[i]);
                let ord = if item.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        output = keyed.into_iter().map(|(_, r)| (r, None, None)).collect();
    }

    // OFFSET / LIMIT.
    let mut rows: Vec<Row> = output.into_iter().map(|(r, _, _)| r).collect();
    if let Some(off) = select.offset {
        rows = rows.into_iter().skip(off as usize).collect();
    }
    if let Some(lim) = select.limit {
        rows.truncate(lim as usize);
    }

    Ok(ResultSet { schema, rows })
}

/// Evaluate one ORDER BY expression for a single output row.
#[allow(clippy::too_many_arguments)]
fn sort_key_value(
    expr: &Expr,
    _select: &SelectStmt,
    projections: &[(Expr, String)],
    out_row: &Row,
    pre: Option<&HashMap<String, Value>>,
    in_row: Option<&[Value]>,
    bound: &BoundFrom,
    params: Option<&HashMap<String, Value>>,
) -> Result<Value> {
    // Ordinal reference: ORDER BY 2.
    if let Expr::Literal(phoenix_sql::ast::Literal::Int(n)) = expr {
        let i = *n as usize;
        if i >= 1 && i <= out_row.len() {
            return Ok(out_row[i - 1].clone());
        }
        return Err(EngineError::column(format!(
            "ORDER BY position {n} out of range"
        )));
    }
    // Alias or exact-projection match → output column.
    let key = render_expr(expr);
    for (i, (pexpr, pname)) in projections.iter().enumerate() {
        let alias_match =
            matches!(expr, Expr::Column { table: None, name } if name.eq_ignore_ascii_case(pname));
        if alias_match || render_expr(pexpr) == key {
            return Ok(out_row[i].clone());
        }
    }
    // Fall back to evaluating against the input/group environment.
    let in_row = in_row.ok_or_else(|| {
        EngineError::column(format!("cannot order by '{key}': not in projection"))
    })?;
    let env = Env {
        columns: &bound.columns,
        row: in_row,
        params,
        precomputed: pre,
    };
    eval(expr, &env)
}

/// Compute one aggregate over the rows of a group.
fn compute_aggregate(
    agg: &Expr,
    rows: &[Row],
    bound: &BoundFrom,
    params: Option<&HashMap<String, Value>>,
) -> Result<Value> {
    let (name, args, distinct) = match agg {
        Expr::Function {
            name,
            args,
            distinct,
        } => (name.to_ascii_uppercase(), args, *distinct),
        other => {
            return Err(EngineError::internal(format!(
                "not an aggregate: {other:?}"
            )))
        }
    };

    // COUNT(*) counts rows.
    if name == "COUNT" && matches!(args.first(), Some(Expr::Wildcard) | None) {
        return Ok(Value::Int(rows.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| EngineError::type_err(format!("{name}() needs an argument")))?;

    let mut values: Vec<Value> = Vec::new();
    for row in rows {
        let env = Env {
            columns: &bound.columns,
            row,
            params,
            precomputed: None,
        };
        let v = eval(arg, &env)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen: Vec<Value> = Vec::new();
        values.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }

    Ok(match name.as_str() {
        "COUNT" => Value::Int(values.len() as i64),
        "SUM" | "AVG" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            let sum: f64 = values
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        EngineError::type_err(format!("{name}() over non-numeric value"))
                    })
                })
                .sum::<Result<f64>>()?;
            if name == "AVG" {
                Value::Float(sum / values.len() as f64)
            } else if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        "MIN" | "MAX" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = compare(&v, &b)?;
                        let take = if name == "MIN" {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
        other => return Err(EngineError::unsupported(format!("aggregate {other}()"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{DataType, TableDef};

    struct TestCatalog {
        store: Store,
    }

    impl Catalog for TestCatalog {
        fn table(&self, name: &ObjectName) -> Result<&TableData> {
            self.store
                .table(&name.canonical())
                .map_err(|e| EngineError::new(ErrorCode::NotFound, e.to_string()))
        }
    }

    fn catalog() -> TestCatalog {
        let mut store = Store::new();
        store
            .create_table(
                TableDef::new(
                    "dbo.customer",
                    Schema::new(vec![
                        Column::new("id", DataType::Int).not_null(),
                        Column::new("name", DataType::Text),
                        Column::new("nation", DataType::Int),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        store
            .create_table(
                TableDef::new(
                    "dbo.orders",
                    Schema::new(vec![
                        Column::new("okey", DataType::Int).not_null(),
                        Column::new("cust_id", DataType::Int),
                        Column::new("total", DataType::Float),
                        Column::new("status", DataType::Text),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        {
            let c = store.table_mut("dbo.customer").unwrap();
            for (id, name, nation) in [(1, "Smith", 10), (2, "Jones", 10), (3, "Smith", 20)] {
                c.insert(vec![
                    Value::Int(id),
                    Value::Text(name.into()),
                    Value::Int(nation),
                ])
                .unwrap();
            }
        }
        {
            let o = store.table_mut("dbo.orders").unwrap();
            for (okey, cid, total, status) in [
                (100, 1, 10.0, "O"),
                (101, 1, 20.0, "F"),
                (102, 2, 30.0, "O"),
                (103, 3, 40.0, "F"),
                (104, 3, 50.0, "F"),
            ] {
                o.insert(vec![
                    Value::Int(okey),
                    Value::Int(cid),
                    Value::Float(total),
                    Value::Text(status.into()),
                ])
                .unwrap();
            }
        }
        TestCatalog { store }
    }

    fn run(sql: &str) -> ResultSet {
        let cat = catalog();
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => execute_select(&s, &cat, None).unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_select() {
        let rs = run("SELECT 1 + 1, 'x'");
        assert_eq!(rs.rows, vec![vec![Value::Int(2), Value::Text("x".into())]]);
    }

    #[test]
    fn full_scan_in_insertion_order() {
        let rs = run("SELECT id FROM customer");
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }

    #[test]
    fn filter_pushdown() {
        let rs = run("SELECT id FROM customer WHERE name = 'Smith'");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn where_0_eq_1_returns_schema_only() {
        let rs = run("SELECT id, name FROM customer WHERE (name = 'Smith') AND (0 = 1)");
        assert!(rs.rows.is_empty());
        assert_eq!(rs.schema.columns[0].name, "id");
        assert_eq!(rs.schema.columns[0].dtype, DataType::Int);
        assert_eq!(rs.schema.columns[1].dtype, DataType::Text);
    }

    #[test]
    fn hash_join_two_tables() {
        let rs = run("SELECT c.name, o.total FROM customer c, orders o \
             WHERE c.id = o.cust_id AND o.status = 'F' ORDER BY o.total");
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::Text("Smith".into()));
        assert_eq!(rs.rows[2][1], Value::Float(50.0));
    }

    #[test]
    fn explicit_join_syntax() {
        let rs = run(
            "SELECT c.name FROM customer c JOIN orders o ON c.id = o.cust_id WHERE o.total > 35.0",
        );
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn cross_join_when_no_equi() {
        let rs = run("SELECT c.id, o.okey FROM customer c, orders o");
        assert_eq!(rs.rows.len(), 15);
    }

    #[test]
    fn group_by_with_aggregates() {
        let rs = run(
            "SELECT status, COUNT(*) AS n, SUM(total) AS s, AVG(total), MIN(total), MAX(total) \
             FROM orders GROUP BY status ORDER BY status",
        );
        assert_eq!(rs.rows.len(), 2);
        // F: 3 orders totalling 110
        assert_eq!(rs.rows[0][0], Value::Text("F".into()));
        assert_eq!(rs.rows[0][1], Value::Int(3));
        assert_eq!(rs.rows[0][2], Value::Float(110.0));
        // O: 2 orders totalling 40
        assert_eq!(rs.rows[1][1], Value::Int(2));
        assert_eq!(rs.rows[1][2], Value::Float(40.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let rs = run("SELECT COUNT(*), SUM(total) FROM orders");
        assert_eq!(rs.rows, vec![vec![Value::Int(5), Value::Float(150.0)]]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let rs = run("SELECT COUNT(*), SUM(total) FROM orders WHERE okey > 999");
        assert_eq!(rs.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn having_filters_groups() {
        let rs = run("SELECT cust_id, COUNT(*) FROM orders GROUP BY cust_id HAVING COUNT(*) >= 2 ORDER BY cust_id");
        assert_eq!(rs.rows.len(), 2); // customers 1 and 3
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT name) FROM customer");
        assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let rs = run("SELECT id AS k FROM customer ORDER BY k DESC");
        assert_eq!(rs.rows[0], vec![Value::Int(3)]);
        let rs = run("SELECT id, name FROM customer ORDER BY 2, 1 DESC");
        assert_eq!(rs.rows[0], vec![Value::Int(2), Value::Text("Jones".into())]);
    }

    #[test]
    fn order_by_non_projected_column() {
        let rs = run("SELECT name FROM customer ORDER BY id DESC");
        assert_eq!(rs.rows[0], vec![Value::Text("Smith".into())]);
    }

    #[test]
    fn limit_offset() {
        let rs = run("SELECT okey FROM orders ORDER BY okey LIMIT 2 OFFSET 1");
        assert_eq!(rs.rows, vec![vec![Value::Int(101)], vec![Value::Int(102)]]);
        let rs = run("SELECT okey FROM orders OFFSET 3");
        assert_eq!(rs.rows.len(), 2);
        let rs = run("SELECT TOP 1 okey FROM orders");
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn aggregate_in_arithmetic() {
        let rs = run("SELECT SUM(total) / COUNT(*) FROM orders");
        assert_eq!(rs.rows, vec![vec![Value::Float(30.0)]]);
    }

    #[test]
    fn case_with_aggregate_q14_shape() {
        let rs = run(
            "SELECT 100.0 * SUM(CASE WHEN status LIKE 'O%' THEN total ELSE 0.0 END) / SUM(total) FROM orders",
        );
        match &rs.rows[0][0] {
            Value::Float(f) => assert!((f - 26.6667).abs() < 0.01, "{f}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn schema_without_execution() {
        let cat = catalog();
        let s = match parse_statement(
            "SELECT name, SUM(total) AS st FROM customer, orders WHERE id = cust_id GROUP BY name",
        )
        .unwrap()
        {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let schema = select_schema(&s, &cat).unwrap();
        assert_eq!(schema.columns[0].name, "name");
        assert_eq!(schema.columns[1].name, "st");
        assert_eq!(schema.columns[1].dtype, DataType::Float);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let cat = catalog();
        let s = match parse_statement("SELECT * FROM nope").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            execute_select(&s, &cat, None).unwrap_err().code,
            ErrorCode::NotFound
        );
        let s = match parse_statement("SELECT zzz FROM customer").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            execute_select(&s, &cat, None).unwrap_err().code,
            ErrorCode::Column
        );
    }

    #[test]
    fn three_way_join() {
        // Self-join chain through two tables plus customer again.
        let rs = run(
            "SELECT c.name, o.okey, c2.id FROM customer c, orders o, customer c2 \
             WHERE c.id = o.cust_id AND o.cust_id = c2.id AND c.id = 1 ORDER BY o.okey",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][2], Value::Int(1));
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let mut cat = catalog();
        cat.store
            .table_mut("dbo.orders")
            .unwrap()
            .insert(vec![
                Value::Int(105),
                Value::Null,
                Value::Float(1.0),
                Value::Text("O".into()),
            ])
            .unwrap();
        let s =
            match parse_statement("SELECT c.id FROM customer c, orders o WHERE c.id = o.cust_id")
                .unwrap()
            {
                Statement::Select(s) => s,
                other => panic!("{other:?}"),
            };
        let rs = execute_select(&s, &cat, None).unwrap();
        assert_eq!(rs.rows.len(), 5); // the NULL-keyed order matches nothing
    }
}

#[cfg(test)]
mod point_lookup_tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{DataType, TableDef};

    struct Cat {
        store: Store,
    }

    impl Catalog for Cat {
        fn table(&self, name: &ObjectName) -> Result<&TableData> {
            self.store
                .table(&name.canonical())
                .map_err(EngineError::from)
        }
    }

    fn cat() -> Cat {
        let mut store = Store::new();
        store
            .create_table(
                TableDef::new(
                    "dbo.kv",
                    Schema::new(vec![
                        Column::new("k", DataType::Int).not_null(),
                        Column::new("v", DataType::Text),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        let t = store.table_mut("dbo.kv").unwrap();
        for i in 0..1000 {
            t.insert(vec![Value::Int(i), Value::Text(format!("v{i}"))])
                .unwrap();
        }
        // Composite-keyed table.
        store
            .create_table(
                TableDef::new(
                    "dbo.pair",
                    Schema::new(vec![
                        Column::new("a", DataType::Int).not_null(),
                        Column::new("b", DataType::Int).not_null(),
                        Column::new("v", DataType::Int),
                    ]),
                )
                .with_primary_key(vec![0, 1]),
            )
            .unwrap();
        let t = store.table_mut("dbo.pair").unwrap();
        for a in 0..10 {
            for b in 0..10 {
                t.insert(vec![Value::Int(a), Value::Int(b), Value::Int(a * 10 + b)])
                    .unwrap();
            }
        }
        Cat { store }
    }

    fn run(cat: &Cat, sql: &str) -> Vec<Row> {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => execute_select(&s, cat, None).unwrap().rows,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn point_lookup_matches_scan_semantics() {
        let c = cat();
        let rows = run(&c, "SELECT v FROM kv WHERE k = 437");
        assert_eq!(rows, vec![vec![Value::Text("v437".into())]]);
        // Missing key → empty, not an error.
        assert!(run(&c, "SELECT v FROM kv WHERE k = 99999").is_empty());
        // Reversed operand order also hits the fast path.
        let rows = run(&c, "SELECT v FROM kv WHERE 42 = k");
        assert_eq!(rows, vec![vec![Value::Text("v42".into())]]);
    }

    #[test]
    fn point_lookup_keeps_residual_predicates() {
        let c = cat();
        // The key matches but the residual predicate does not.
        assert!(run(&c, "SELECT v FROM kv WHERE k = 10 AND v = 'nope'").is_empty());
        let rows = run(&c, "SELECT v FROM kv WHERE k = 10 AND v = 'v10'");
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn composite_key_lookup() {
        let c = cat();
        let rows = run(&c, "SELECT v FROM pair WHERE a = 3 AND b = 7");
        assert_eq!(rows, vec![vec![Value::Int(37)]]);
        // Partial key does NOT take the fast path but must still be correct.
        let rows = run(&c, "SELECT v FROM pair WHERE a = 3");
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn constant_expressions_and_coercion() {
        let c = cat();
        let rows = run(&c, "SELECT v FROM kv WHERE k = 400 + 37");
        assert_eq!(rows, vec![vec![Value::Text("v437".into())]]);
        // Float constant coerces to the INT key.
        let rows = run(&c, "SELECT v FROM kv WHERE k = 437.0");
        assert_eq!(rows, vec![vec![Value::Text("v437".into())]]);
    }

    #[test]
    fn column_equals_column_is_not_a_point_lookup() {
        let c = cat();
        // `k = k` references a column on both sides; must fall back to scan
        // and return everything.
        let rows = run(&c, "SELECT k FROM kv WHERE k = k");
        assert_eq!(rows.len(), 1000);
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{DataType, TableDef};

    struct Cat {
        store: Store,
    }

    impl Catalog for Cat {
        fn table(&self, name: &ObjectName) -> Result<&TableData> {
            self.store
                .table(&name.canonical())
                .map_err(EngineError::from)
        }
    }

    fn cat() -> Cat {
        let mut store = Store::new();
        store
            .create_table(TableDef::new(
                "dbo.dup",
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ]),
            ))
            .unwrap();
        let t = store.table_mut("dbo.dup").unwrap();
        for (a, b) in [(1, "x"), (1, "x"), (2, "x"), (1, "y"), (2, "x")] {
            t.insert(vec![Value::Int(a), Value::Text(b.into())])
                .unwrap();
        }
        Cat { store }
    }

    fn run(cat: &Cat, sql: &str) -> Vec<Row> {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => execute_select(&s, cat, None).unwrap().rows,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_deduplicates_rows() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT a, b FROM dup ORDER BY a, b");
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Text("x".into())],
                vec![Value::Int(1), Value::Text("y".into())],
                vec![Value::Int(2), Value::Text("x".into())],
            ]
        );
    }

    #[test]
    fn distinct_single_column() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT b FROM dup");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn distinct_preserves_first_occurrence_order() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT a FROM dup");
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn distinct_respects_limit() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT a, b FROM dup LIMIT 2");
        assert_eq!(rows.len(), 2);
    }
}
