//! SELECT planning and execution.
//!
//! The planner is cost-aware but deliberately compact. The WHERE clause is
//! split into conjuncts; for each FROM table the planner picks an access
//! path — full scan, primary-key point lookup, or a secondary-index
//! equality/range probe — by comparing exact index-bucket counts against
//! the table cardinality. Join order is chosen greedily from the cheapest
//! estimated input, using an index nested-loop join when the inner side of
//! an equi-conjunct is an indexed column and the outer estimate is small,
//! and a hash join otherwise. A single-column ORDER BY over an indexed (or
//! primary-key) column is satisfied by walking the index in key order
//! instead of sorting. `EXPLAIN` renders the same `Plan` that execution
//! follows, so the displayed access paths are the executed ones.
//!
//! Constant conjuncts are evaluated once before any scan — so Phoenix's
//! `WHERE 0=1` metadata probe touches no data at all, matching the paper's
//! "only query compilation is performed on the server".
//!
//! Scan order is row-id (insertion) order; a `SELECT * FROM t` with no ORDER
//! BY therefore returns rows in the order they were inserted. Phoenix's
//! result-set materialization relies on this documented property.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;

use phoenix_sql::ast::{
    BinaryOp, Expr, InsertSource, ObjectName, SelectItem, SelectStmt, Statement,
};
use phoenix_sql::display::render_expr;
use phoenix_storage::store::TableData;
use phoenix_storage::types::{Column, DataType, Row, RowId, Schema, Value};

#[cfg(test)]
use crate::error::ErrorCode;
use crate::error::{EngineError, Result};
use crate::eval::{compare, eval, infer_type, is_aggregate, output_name, truth, BoundColumn, Env};

/// Read access to tables by (possibly qualified, possibly temp) name.
/// Implemented by the engine over its durable + session-temporary stores.
pub trait Catalog {
    /// Resolve a (possibly temp) table name to its data.
    fn table(&self, name: &ObjectName) -> Result<&TableData>;
}

/// A fully executed result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Result metadata.
    pub schema: Schema,
    /// All rows, in delivery order.
    pub rows: Vec<Row>,
}

/// Execute a SELECT, returning the complete result set.
pub fn execute_select(
    select: &SelectStmt,
    catalog: &dyn Catalog,
    params: Option<&HashMap<String, Value>>,
) -> Result<ResultSet> {
    let bound = bind_from(select, catalog)?;
    let schema = output_schema_from_binding(select, &bound)?;

    // Split WHERE into conjuncts and classify by referenced tables.
    let conjuncts = split_conjuncts(select.where_clause.as_ref());
    let mut classified = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        classified.push(tables_of_expr(c, &bound)?);
    }

    // Constant conjuncts: evaluate once; a false/NULL constant conjunct
    // empties the result without scanning.
    let empty_row: Row = Vec::new();
    for (c, tables) in conjuncts.iter().zip(&classified) {
        if tables.is_empty() {
            let env = Env {
                columns: &[],
                row: &empty_row,
                params,
                precomputed: None,
            };
            if truth(&eval(c, &env)?)? != Some(true) {
                return finish_select(select, &bound, Vec::new(), params, schema, false);
            }
        }
    }

    let plan = build_plan(select, &bound, &conjuncts, &classified, params)?;
    let rows = run_plan(&plan, &bound, &conjuncts, &classified, params)?;
    finish_select(select, &bound, rows, params, schema, plan.presorted)
}

/// Compute the output schema of a SELECT without executing it — the engine's
/// answer to the metadata probe.
pub fn select_schema(select: &SelectStmt, catalog: &dyn Catalog) -> Result<Schema> {
    let bound = bind_from(select, catalog)?;
    output_schema_from_binding(select, &bound)
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// Selectivity assumed per predicate the cost model cannot probe through an
/// index.
const FILTER_SEL: f64 = 0.33;

/// An index nested-loop join is chosen only when the outer estimate times
/// this margin stays below the inner table's cardinality.
const NL_MARGIN: f64 = 4.0;

/// How a single table is read.
#[derive(Debug, Clone)]
enum Access {
    /// Full scan in row-id (insertion) order.
    Scan,
    /// Primary-key point lookup: every pk column pinned to a constant.
    PkPoint,
    /// Secondary-index equality probe on one or more constant values.
    SecEq { pos: usize, values: Vec<Expr> },
    /// Secondary-index range walk. Bounds are (expr, inclusive); a missing
    /// low bound still excludes NULL keys — no comparison matches NULL.
    SecRange {
        pos: usize,
        lo: Option<(Expr, bool)>,
        hi: Option<(Expr, bool)>,
        desc: bool,
    },
    /// Full walk of a secondary index in key order, to satisfy ORDER BY.
    SecOrder { pos: usize, desc: bool },
    /// Full walk of a single-column primary key in key order.
    PkOrder { desc: bool },
}

/// What an index nested-loop probe targets on the inner table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeTarget {
    /// Single-column primary key.
    Pk,
    /// Secondary index at `def.indexes[pos]`.
    Sec(usize),
}

/// How a table's rows combine with the rows already produced.
#[derive(Debug, Clone)]
enum JoinKind {
    /// First table in execution order.
    First,
    /// Hash join on the given equi-conjunct key expressions.
    Hash { outer: Vec<Expr>, inner: Vec<Expr> },
    /// For each outer row, evaluate `outer` and probe the inner table's
    /// index directly — the inner table is never scanned.
    IndexNested { outer: Expr, target: ProbeTarget },
    /// No connecting conjunct: Cartesian product.
    Cross,
}

/// One table's placement in the executable plan.
#[derive(Debug, Clone)]
struct Step {
    /// FROM-list position of the table.
    t: usize,
    access: Access,
    join: JoinKind,
    /// Conjunct indices consumed by the join itself.
    join_conjuncts: Vec<usize>,
    /// Estimated cumulative row count after this step.
    est: u64,
}

/// An executable (and explainable) SELECT plan.
struct Plan {
    steps: Vec<Step>,
    /// Rows already emerge in ORDER BY order; `finish_select` skips its sort.
    presorted: bool,
}

/// The bound columns of one FROM table.
fn table_cols<'b>(bound: &'b BoundFrom, t: usize) -> &'b [BoundColumn] {
    &bound.columns[bound.offsets[t]..bound.offsets[t + 1]]
}

/// Build the plan shared by execution and EXPLAIN.
fn build_plan(
    select: &SelectStmt,
    bound: &BoundFrom,
    conjuncts: &[Expr],
    classified: &[Vec<usize>],
    params: Option<&HashMap<String, Value>>,
) -> Result<Plan> {
    let n = bound.tables.len();
    if n == 0 {
        return Ok(Plan {
            steps: Vec::new(),
            presorted: false,
        });
    }

    // Single-table conjunct indices, per table.
    let singles: Vec<Vec<usize>> = (0..n)
        .map(|t| {
            classified
                .iter()
                .enumerate()
                .filter(|(_, tabs)| tabs.len() == 1 && tabs[0] == t)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    // Pick an access path and estimate for each table in isolation.
    let mut accesses: Vec<(Access, f64)> = Vec::with_capacity(n);
    for (t, single) in singles.iter().enumerate() {
        let filters: Vec<&Expr> = single.iter().map(|&i| &conjuncts[i]).collect();
        accesses.push(choose_access(
            bound.tables[t],
            table_cols(bound, t),
            &filters,
            params,
        ));
    }

    if n == 1 {
        let (mut access, est) = accesses.pop().unwrap();
        let presorted = apply_order(select, bound, &mut access, params);
        return Ok(Plan {
            steps: vec![Step {
                t: 0,
                access,
                join: JoinKind::First,
                join_conjuncts: Vec::new(),
                est: est.ceil() as u64,
            }],
            presorted,
        });
    }

    // Greedy join ordering from the cheapest estimated input.
    let nrows: Vec<f64> = bound.tables.iter().map(|t| t.len() as f64).collect();
    let ests: Vec<f64> = accesses.iter().map(|(_, e)| *e).collect();
    let mut consumed = vec![false; conjuncts.len()];
    let mut in_plan = vec![false; n];
    let mut steps: Vec<Step> = Vec::new();

    let first = (0..n).min_by(|&a, &b| ests[a].total_cmp(&ests[b])).unwrap();
    in_plan[first] = true;
    let mut cur_est = ests[first];
    steps.push(Step {
        t: first,
        access: accesses[first].0.clone(),
        join: JoinKind::First,
        join_conjuncts: Vec::new(),
        est: cur_est.ceil() as u64,
    });

    while steps.len() < n {
        // Cost the cheapest way to attach each remaining connected table.
        let mut best: Option<(f64, usize, JoinKind, Vec<usize>)> = None;
        for c in 0..n {
            if in_plan[c] {
                continue;
            }
            // Equi-conjuncts linking the joined set to `c`.
            let mut outer_keys: Vec<Expr> = Vec::new();
            let mut inner_keys: Vec<Expr> = Vec::new();
            let mut equi: Vec<usize> = Vec::new();
            // Best probeable equi-conjunct: prefer a pk target (one match
            // per probe) over a secondary index.
            let mut probe: Option<(Expr, ProbeTarget, usize)> = None;
            for (i, conj) in conjuncts.iter().enumerate() {
                if consumed[i] {
                    continue;
                }
                let tabs = &classified[i];
                if !tabs.contains(&c)
                    || !tabs.iter().any(|t| *t != c)
                    || !tabs.iter().all(|t| *t == c || in_plan[*t])
                {
                    continue;
                }
                if let Expr::Binary {
                    left,
                    op: BinaryOp::Eq,
                    right,
                } = conj
                {
                    let lt = tables_of_expr(left, bound)?;
                    let rt = tables_of_expr(right, bound)?;
                    let (okey, ikey) = if rt.len() == 1 && rt[0] == c && !lt.contains(&c) {
                        (left, right)
                    } else if lt.len() == 1 && lt[0] == c && !rt.contains(&c) {
                        (right, left)
                    } else {
                        continue;
                    };
                    equi.push(i);
                    outer_keys.push(okey.as_ref().clone());
                    inner_keys.push(ikey.as_ref().clone());
                    if let Some(local) = bare_column_of(ikey, bound, c) {
                        let def = &bound.tables[c].def;
                        let target = if let Some(pos) = def.index_on(local) {
                            Some(ProbeTarget::Sec(pos))
                        } else if def.primary_key.as_slice() == [local] {
                            Some(ProbeTarget::Pk)
                        } else {
                            None
                        };
                        if let Some(tgt) = target {
                            let better = matches!(
                                (&probe, tgt),
                                (None, _) | (Some((_, ProbeTarget::Sec(_), _)), ProbeTarget::Pk)
                            );
                            if better {
                                probe = Some((okey.as_ref().clone(), tgt, i));
                            }
                        }
                    }
                }
            }
            if equi.is_empty() {
                continue;
            }

            let f_sel = FILTER_SEL.powi(singles[c].len() as i32);
            let hash_est = cur_est.max(ests[c]);
            let (est_c, join, jconj) = match &probe {
                Some((okey, tgt, i)) if cur_est * NL_MARGIN <= nrows[c] => {
                    let match_per = match tgt {
                        ProbeTarget::Pk => 1.0,
                        ProbeTarget::Sec(pos) => {
                            let distinct = bound.tables[c].sec_index(*pos).len().max(1) as f64;
                            (nrows[c] / distinct).max(1.0)
                        }
                    };
                    (
                        cur_est * match_per * f_sel,
                        JoinKind::IndexNested {
                            outer: okey.clone(),
                            target: *tgt,
                        },
                        vec![*i],
                    )
                }
                _ => (
                    hash_est,
                    JoinKind::Hash {
                        outer: outer_keys,
                        inner: inner_keys,
                    },
                    equi,
                ),
            };
            if best.as_ref().is_none_or(|(b, ..)| est_c < *b) {
                best = Some((est_c, c, join, jconj));
            }
        }

        let (est_c, c, join, jconj) = match best {
            Some(b) => b,
            None => {
                // Nothing connected: cross join the cheapest remainder.
                let c = (0..n)
                    .filter(|t| !in_plan[*t])
                    .min_by(|&a, &b| ests[a].total_cmp(&ests[b]))
                    .unwrap();
                (cur_est * ests[c].max(1.0), c, JoinKind::Cross, Vec::new())
            }
        };
        for &i in &jconj {
            consumed[i] = true;
        }
        in_plan[c] = true;
        cur_est = est_c;
        steps.push(Step {
            t: c,
            access: accesses[c].0.clone(),
            join,
            join_conjuncts: jconj,
            est: cur_est.ceil() as u64,
        });
    }

    Ok(Plan {
        steps,
        presorted: false,
    })
}

/// Choose the cheapest access path for one table given its single-table
/// filters, returning it with the estimated output row count.
fn choose_access(
    table: &TableData,
    cols: &[BoundColumn],
    filters: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> (Access, f64) {
    let nrows = table.len() as f64;

    if table.def.has_primary_key() && pk_pinned(table, cols, filters) {
        return (Access::PkPoint, 1.0);
    }

    // Best secondary-index probe by exact bucket counts.
    let mut best: Option<(Access, f64, usize)> = None;
    for (pos, ix) in table.def.indexes.iter().enumerate() {
        let col = &table.def.schema.columns[ix.column];
        if let Some(cand) = index_probe(table, cols, pos, &col.name, col.dtype, filters, params) {
            if best.as_ref().is_none_or(|(_, b, _)| cand.1 < *b) {
                best = Some(cand);
            }
        }
    }
    if let Some((access, base, probed)) = best {
        // The probe must clear the scan by a comfortable margin.
        if base * 2.0 <= nrows {
            let residual = filters.len().saturating_sub(probed);
            return (access, base * FILTER_SEL.powi(residual as i32));
        }
    }
    (Access::Scan, nrows * FILTER_SEL.powi(filters.len() as i32))
}

/// Do the filters pin every primary-key column to a constant?
fn pk_pinned(table: &TableData, cols: &[BoundColumn], filters: &[&Expr]) -> bool {
    table.def.primary_key.iter().all(|&pk_idx| {
        let pk_name = &table.def.schema.columns[pk_idx].name;
        filters.iter().any(|f| {
            matches!(f, Expr::Binary { left, op: BinaryOp::Eq, right }
                if (is_column_named(left, pk_name, cols) && is_constant(right))
                    || (is_column_named(right, pk_name, cols) && is_constant(left)))
        })
    })
}

/// Find the best equality or range probe for one secondary index. Returns
/// the access path, its exact base row estimate from the index buckets, and
/// how many filter conjuncts the probe subsumes.
#[allow(clippy::too_many_arguments)]
fn index_probe(
    table: &TableData,
    cols: &[BoundColumn],
    pos: usize,
    col_name: &str,
    dtype: DataType,
    filters: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> Option<(Access, f64, usize)> {
    let map = table.sec_index(pos);
    let nrows = table.len() as f64;
    let avg_bucket = nrows / map.len().max(1) as f64;

    // Prefer an equality probe: `col = const` or `col IN (consts)`.
    for f in filters {
        let values: Vec<Expr> = match f {
            Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } => {
                if is_column_named(left, col_name, cols) && is_constant(right) {
                    vec![right.as_ref().clone()]
                } else if is_column_named(right, col_name, cols) && is_constant(left) {
                    vec![left.as_ref().clone()]
                } else {
                    continue;
                }
            }
            Expr::InList {
                expr,
                negated: false,
                list,
            } if is_column_named(expr, col_name, cols) && list.iter().all(is_constant) => {
                list.clone()
            }
            _ => continue,
        };
        // Exact base: sum the matched buckets; values opaque at plan time
        // (e.g. EXPLAIN of a parameterized query) cost one average bucket.
        let mut seen: Vec<Value> = Vec::new();
        let mut base = 0.0;
        for v in &values {
            match probe_value(v, dtype, params) {
                Some(val) => {
                    if seen.contains(&val) {
                        continue;
                    }
                    base += map.get(&val).map_or(0, |ids| ids.len()) as f64;
                    seen.push(val);
                }
                None => base += avg_bucket,
            }
        }
        return Some((Access::SecEq { pos, values }, base, 1));
    }

    // Range probe: merge comparison and BETWEEN bounds on the column.
    let mut lo: Option<(Expr, bool, Option<Value>)> = None;
    let mut hi: Option<(Expr, bool, Option<Value>)> = None;
    let mut probed = 0usize;
    for f in filters {
        match f {
            Expr::Binary { left, op, right } => {
                let (bexpr, is_lo, inc) =
                    if is_column_named(left, col_name, cols) && is_constant(right) {
                        match op {
                            BinaryOp::Gt => (right.as_ref().clone(), true, false),
                            BinaryOp::GtEq => (right.as_ref().clone(), true, true),
                            BinaryOp::Lt => (right.as_ref().clone(), false, false),
                            BinaryOp::LtEq => (right.as_ref().clone(), false, true),
                            _ => continue,
                        }
                    } else if is_column_named(right, col_name, cols) && is_constant(left) {
                        // `const op col` mirrors the comparison.
                        match op {
                            BinaryOp::Lt => (left.as_ref().clone(), true, false),
                            BinaryOp::LtEq => (left.as_ref().clone(), true, true),
                            BinaryOp::Gt => (left.as_ref().clone(), false, false),
                            BinaryOp::GtEq => (left.as_ref().clone(), false, true),
                            _ => continue,
                        }
                    } else {
                        continue;
                    };
                let val = probe_value(&bexpr, dtype, params);
                if is_lo {
                    tighten_lo(&mut lo, bexpr, inc, val);
                } else {
                    tighten_hi(&mut hi, bexpr, inc, val);
                }
                probed += 1;
            }
            Expr::Between {
                expr,
                negated: false,
                low,
                high,
            } if is_column_named(expr, col_name, cols) && is_constant(low) && is_constant(high) => {
                let lv = probe_value(low, dtype, params);
                let hv = probe_value(high, dtype, params);
                tighten_lo(&mut lo, low.as_ref().clone(), true, lv);
                tighten_hi(&mut hi, high.as_ref().clone(), true, hv);
                probed += 1;
            }
            _ => {}
        }
    }
    if lo.is_none() && hi.is_none() {
        return None;
    }
    // Exact base when a bound is evaluable: count the buckets inside the
    // range. Both bounds opaque → assume a third of the table.
    let lo_v = lo
        .as_ref()
        .and_then(|(_, inc, v)| v.clone().map(|v| (v, *inc)));
    let hi_v = hi
        .as_ref()
        .and_then(|(_, inc, v)| v.clone().map(|v| (v, *inc)));
    let base = if lo_v.is_some() || hi_v.is_some() {
        range_count(map, lo_v.as_ref(), hi_v.as_ref()) as f64
    } else {
        nrows / 3.0
    };
    Some((
        Access::SecRange {
            pos,
            lo: lo.map(|(e, inc, _)| (e, inc)),
            hi: hi.map(|(e, inc, _)| (e, inc)),
            desc: false,
        },
        base,
        probed,
    ))
}

/// Keep the tighter of two lower bounds: an evaluable bound beats an opaque
/// one, a greater value (or stricter inclusivity) beats a lesser one.
fn tighten_lo(cur: &mut Option<(Expr, bool, Option<Value>)>, e: Expr, inc: bool, v: Option<Value>) {
    let replace = match (cur.as_ref(), &v) {
        (None, _) => true,
        (Some((_, _, None)), Some(_)) => true,
        (Some((_, cinc, Some(cv))), Some(nv)) => nv > cv || (nv == cv && *cinc && !inc),
        _ => false,
    };
    if replace {
        *cur = Some((e, inc, v));
    }
}

/// Mirror of [`tighten_lo`] for upper bounds.
fn tighten_hi(cur: &mut Option<(Expr, bool, Option<Value>)>, e: Expr, inc: bool, v: Option<Value>) {
    let replace = match (cur.as_ref(), &v) {
        (None, _) => true,
        (Some((_, _, None)), Some(_)) => true,
        (Some((_, cinc, Some(cv))), Some(nv)) => nv < cv || (nv == cv && *cinc && !inc),
        _ => false,
    };
    if replace {
        *cur = Some((e, inc, v));
    }
}

/// Evaluate a constant probe expression at plan time and coerce it to the
/// indexed column's type. `None` when it cannot be evaluated (parameters
/// absent during EXPLAIN) or evaluates to NULL.
fn probe_value(
    e: &Expr,
    dtype: DataType,
    params: Option<&HashMap<String, Value>>,
) -> Option<Value> {
    let empty: Row = Vec::new();
    let env = Env {
        columns: &[],
        row: &empty,
        params,
        precomputed: None,
    };
    let v = eval(e, &env).ok()?;
    if v.is_null() {
        return None;
    }
    Some(v.coerce_to(dtype).unwrap_or(v))
}

/// Execution-time probe evaluation: errors propagate (a missing parameter
/// is an error, exactly as a scan would report it); NULL means "matches
/// nothing" and comes back as `None`.
fn eval_probe(
    e: &Expr,
    dtype: DataType,
    params: Option<&HashMap<String, Value>>,
) -> Result<Option<Value>> {
    let empty: Row = Vec::new();
    let env = Env {
        columns: &[],
        row: &empty,
        params,
        precomputed: None,
    };
    let v = eval(e, &env)?;
    if v.is_null() {
        return Ok(None);
    }
    Ok(Some(v.coerce_to(dtype).unwrap_or(v)))
}

/// Sum the bucket sizes of the index entries inside the bounds.
fn range_count(
    map: &BTreeMap<Value, BTreeSet<RowId>>,
    lo: Option<&(Value, bool)>,
    hi: Option<&(Value, bool)>,
) -> usize {
    let lo_b = match lo {
        Some((v, true)) => Bound::Included(v.clone()),
        Some((v, false)) => Bound::Excluded(v.clone()),
        None => Bound::Excluded(Value::Null),
    };
    let hi_b = match hi {
        Some((v, true)) => Bound::Included(v.clone()),
        Some((v, false)) => Bound::Excluded(v.clone()),
        None => Bound::Unbounded,
    };
    if range_is_empty(&lo_b, &hi_b) {
        return 0;
    }
    map.range((lo_b, hi_b)).map(|(_, ids)| ids.len()).sum()
}

/// Would `BTreeMap::range` see an inverted (panicking) or empty range?
fn range_is_empty(lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    let (lv, li) = match lo {
        Bound::Included(v) => (v, true),
        Bound::Excluded(v) => (v, false),
        Bound::Unbounded => return false,
    };
    let (hv, hinc) = match hi {
        Bound::Included(v) => (v, true),
        Bound::Excluded(v) => (v, false),
        Bound::Unbounded => return false,
    };
    lv > hv || (lv == hv && !(li && hinc))
}

/// If `e` is a bare column reference belonging to FROM table `t`, return its
/// column index within that table.
fn bare_column_of(e: &Expr, bound: &BoundFrom, t: usize) -> Option<usize> {
    match e {
        Expr::Column { table, name } => {
            let env = Env::new(&bound.columns, &[]);
            let idx = env.resolve(table.as_deref(), name).ok()?;
            if idx >= bound.offsets[t] && idx < bound.offsets[t + 1] {
                Some(idx - bound.offsets[t])
            } else {
                None
            }
        }
        Expr::Nested(inner) => bare_column_of(inner, bound, t),
        _ => None,
    }
}

/// For a single-table plan, try to satisfy ORDER BY from index order by
/// rewriting the access path. Returns true when the access path's output
/// order already matches the requested order.
fn apply_order(
    select: &SelectStmt,
    bound: &BoundFrom,
    access: &mut Access,
    params: Option<&HashMap<String, Value>>,
) -> bool {
    if select.order_by.is_empty() {
        return false;
    }
    if matches!(access, Access::PkPoint) {
        // At most one output row: any requested order trivially holds.
        return true;
    }
    if select.order_by.len() != 1
        || !select.group_by.is_empty()
        || !collect_aggregates(select).is_empty()
    {
        return false;
    }
    let item = &select.order_by[0];
    let oc = match bare_column_of(&item.expr, bound, 0) {
        Some(c) => c,
        None => return false,
    };
    // `finish_select` sorts on a projection's value when an alias or exact
    // rendering matches; that is only our column's order when the matched
    // projection is the same column.
    let projections = match expand_projections(select, bound) {
        Ok(p) => p,
        Err(_) => return false,
    };
    let okey = render_expr(&item.expr);
    for (pexpr, pname) in &projections {
        let alias_match = matches!(&item.expr,
            Expr::Column { table: None, name } if name.eq_ignore_ascii_case(pname));
        if alias_match || render_expr(pexpr) == okey {
            if bare_column_of(pexpr, bound, 0) != Some(oc) {
                return false;
            }
            break;
        }
    }
    let table = bound.tables[0];
    let desc = item.desc;
    match access {
        Access::Scan => {
            if let Some(pos) = table.def.index_on(oc) {
                *access = Access::SecOrder { pos, desc };
                return true;
            }
            if table.def.primary_key.as_slice() == [oc] {
                *access = Access::PkOrder { desc };
                return true;
            }
            false
        }
        Access::SecEq { pos, values } => {
            if table.def.indexes[*pos].column != oc {
                return false;
            }
            if values.len() > 1 {
                // Visit the probe buckets in output order.
                let dtype = table.def.schema.columns[oc].dtype;
                let mut evald = Vec::with_capacity(values.len());
                for e in values.iter() {
                    match probe_value(e, dtype, params) {
                        Some(v) => evald.push((v, e.clone())),
                        None => return false,
                    }
                }
                evald.sort_by(|a, b| a.0.cmp(&b.0));
                if desc {
                    evald.reverse();
                }
                *values = evald.into_iter().map(|(_, e)| e).collect();
            }
            true
        }
        Access::SecRange { pos, desc: d, .. } => {
            if table.def.indexes[*pos].column != oc {
                return false;
            }
            *d = desc;
            true
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

/// Execute the plan's steps, returning joined rows laid out in FROM order.
fn run_plan(
    plan: &Plan,
    bound: &BoundFrom,
    conjuncts: &[Expr],
    classified: &[Vec<usize>],
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<Row>> {
    let mut applied: Vec<bool> = classified.iter().map(|tabs| tabs.is_empty()).collect();

    if bound.tables.is_empty() {
        // SELECT without FROM: one empty row.
        debug_assert!(applied.iter().all(|a| *a));
        return Ok(vec![Vec::new()]);
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut exec_cols: Vec<BoundColumn> = Vec::new();
    let mut exec_tables: Vec<usize> = Vec::new();

    for step in &plan.steps {
        let t = step.t;
        let cols = table_cols(bound, t);
        let mut filters: Vec<&Expr> = Vec::new();
        for (i, tabs) in classified.iter().enumerate() {
            if !applied[i] && tabs.len() == 1 && tabs[0] == t {
                filters.push(&conjuncts[i]);
            }
        }

        rows = match &step.join {
            JoinKind::IndexNested { outer, target } => index_nl_join(
                std::mem::take(&mut rows),
                &exec_cols,
                bound.tables[t],
                cols,
                outer,
                *target,
                &filters,
                params,
            )?,
            other => {
                let scan = access_rows(bound.tables[t], cols, &step.access, &filters, params)?;
                match other {
                    JoinKind::First => scan,
                    JoinKind::Cross => cross_join(std::mem::take(&mut rows), scan),
                    JoinKind::Hash { outer, inner } => {
                        let ok: Vec<&Expr> = outer.iter().collect();
                        let ik: Vec<&Expr> = inner.iter().collect();
                        hash_join(
                            std::mem::take(&mut rows),
                            &exec_cols,
                            scan,
                            cols,
                            &ok,
                            &ik,
                            params,
                        )?
                    }
                    JoinKind::IndexNested { .. } => unreachable!(),
                }
            }
        };

        for (i, tabs) in classified.iter().enumerate() {
            if tabs.len() == 1 && tabs[0] == t {
                applied[i] = true;
            }
        }
        for &i in &step.join_conjuncts {
            applied[i] = true;
        }
        exec_cols.extend_from_slice(cols);
        exec_tables.push(t);

        // Residual conjuncts that became fully evaluable with this step.
        let mut residual: Vec<usize> = Vec::new();
        for (i, tabs) in classified.iter().enumerate() {
            if !applied[i] && tabs.iter().all(|x| exec_tables.contains(x)) {
                residual.push(i);
            }
        }
        if !residual.is_empty() {
            let mut kept = Vec::with_capacity(rows.len());
            'rows: for row in rows {
                for &i in &residual {
                    let env = Env {
                        columns: &exec_cols,
                        row: &row,
                        params,
                        precomputed: None,
                    };
                    if truth(&eval(&conjuncts[i], &env)?)? != Some(true) {
                        continue 'rows;
                    }
                }
                kept.push(row);
            }
            rows = kept;
            for &i in &residual {
                applied[i] = true;
            }
        }
    }

    debug_assert!(applied.iter().all(|a| *a), "unapplied conjunct after join");

    // Rows accumulated in execution order; permute segments to FROM order.
    if exec_tables.windows(2).any(|w| w[0] > w[1]) {
        let n = bound.tables.len();
        let mut seg = vec![(0usize, 0usize); n];
        let mut off = 0;
        for &t in &exec_tables {
            let w = bound.offsets[t + 1] - bound.offsets[t];
            seg[t] = (off, off + w);
            off += w;
        }
        rows = rows
            .into_iter()
            .map(|r| {
                let mut out = Vec::with_capacity(r.len());
                for s in &seg {
                    out.extend_from_slice(&r[s.0..s.1]);
                }
                out
            })
            .collect();
    }
    Ok(rows)
}

/// Produce one table's rows via the planned access path, applying every
/// single-table filter to each candidate. Scans emit row-id order; index
/// paths emit index-key order.
fn access_rows(
    table: &TableData,
    cols: &[BoundColumn],
    access: &Access,
    filters: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<Row>> {
    let keep = |row: &Row| -> Result<bool> {
        for f in filters {
            let env = Env {
                columns: cols,
                row,
                params,
                precomputed: None,
            };
            if truth(&eval(f, &env)?)? != Some(true) {
                return Ok(false);
            }
        }
        Ok(true)
    };

    match access {
        Access::Scan => {
            let mut out = Vec::new();
            for row in table.rows.values() {
                if keep(row)? {
                    out.push(row.clone());
                }
            }
            Ok(out)
        }
        Access::PkPoint => {
            let candidates = match try_point_lookup(table, cols, filters, params)? {
                Some(c) => c,
                // The plan promised a pinned key; fall back to a scan if the
                // constants stop qualifying at execution time.
                None => table.rows.values().cloned().collect(),
            };
            let mut out = Vec::new();
            for row in candidates {
                if keep(&row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Access::SecEq { pos, values } => {
            let dtype = table.def.schema.columns[table.def.indexes[*pos].column].dtype;
            let map = table.sec_index(*pos);
            let mut seen: Vec<Value> = Vec::new();
            let mut out = Vec::new();
            for vexpr in values {
                let v = match eval_probe(vexpr, dtype, params)? {
                    Some(v) => v,
                    None => continue, // `col = NULL` matches nothing
                };
                if seen.contains(&v) {
                    continue;
                }
                if let Some(ids) = map.get(&v) {
                    for id in ids {
                        let row = &table.rows[id];
                        if keep(row)? {
                            out.push(row.clone());
                        }
                    }
                }
                seen.push(v);
            }
            Ok(out)
        }
        Access::SecRange { pos, lo, hi, desc } => {
            let dtype = table.def.schema.columns[table.def.indexes[*pos].column].dtype;
            let lo_v = match lo {
                Some((e, inc)) => match eval_probe(e, dtype, params)? {
                    Some(v) => Some((v, *inc)),
                    None => return Ok(Vec::new()), // NULL bound: empty range
                },
                None => None,
            };
            let hi_v = match hi {
                Some((e, inc)) => match eval_probe(e, dtype, params)? {
                    Some(v) => Some((v, *inc)),
                    None => return Ok(Vec::new()),
                },
                None => None,
            };
            let lo_b = match &lo_v {
                Some((v, true)) => Bound::Included(v.clone()),
                Some((v, false)) => Bound::Excluded(v.clone()),
                // No low bound still skips NULL keys: no comparison
                // predicate matches NULL.
                None => Bound::Excluded(Value::Null),
            };
            let hi_b = match &hi_v {
                Some((v, true)) => Bound::Included(v.clone()),
                Some((v, false)) => Bound::Excluded(v.clone()),
                None => Bound::Unbounded,
            };
            if range_is_empty(&lo_b, &hi_b) {
                return Ok(Vec::new());
            }
            let map = table.sec_index(*pos);
            let buckets: Box<dyn Iterator<Item = (&Value, &BTreeSet<RowId>)>> = if *desc {
                Box::new(map.range((lo_b, hi_b)).rev())
            } else {
                Box::new(map.range((lo_b, hi_b)))
            };
            let mut out = Vec::new();
            for (_, ids) in buckets {
                for id in ids {
                    let row = &table.rows[id];
                    if keep(row)? {
                        out.push(row.clone());
                    }
                }
            }
            Ok(out)
        }
        Access::SecOrder { pos, desc } => {
            let map = table.sec_index(*pos);
            let buckets: Box<dyn Iterator<Item = (&Value, &BTreeSet<RowId>)>> = if *desc {
                Box::new(map.iter().rev())
            } else {
                Box::new(map.iter())
            };
            let mut out = Vec::new();
            for (_, ids) in buckets {
                for id in ids {
                    let row = &table.rows[id];
                    if keep(row)? {
                        out.push(row.clone());
                    }
                }
            }
            Ok(out)
        }
        Access::PkOrder { desc } => {
            let entries: Box<dyn Iterator<Item = (&Vec<Value>, &RowId)>> = if *desc {
                Box::new(table.pk_index.iter().rev())
            } else {
                Box::new(table.pk_index.iter())
            };
            let mut out = Vec::new();
            for (_, id) in entries {
                let row = &table.rows[id];
                if keep(row)? {
                    out.push(row.clone());
                }
            }
            Ok(out)
        }
    }
}

/// Index nested-loop join: for each outer row, evaluate the outer key and
/// probe the inner table's index directly. Inner-table filters apply to
/// each probed candidate; NULL outer keys never match.
#[allow(clippy::too_many_arguments)]
fn index_nl_join(
    outer_rows: Vec<Row>,
    outer_cols: &[BoundColumn],
    inner: &TableData,
    inner_cols: &[BoundColumn],
    outer_key: &Expr,
    target: ProbeTarget,
    filters: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<Row>> {
    let key_col = match target {
        ProbeTarget::Pk => inner.def.primary_key[0],
        ProbeTarget::Sec(pos) => inner.def.indexes[pos].column,
    };
    let dtype = inner.def.schema.columns[key_col].dtype;
    let mut out = Vec::new();
    for orow in outer_rows {
        let env = Env {
            columns: outer_cols,
            row: &orow,
            params,
            precomputed: None,
        };
        let v = eval(outer_key, &env)?;
        if v.is_null() {
            continue;
        }
        let v = v.coerce_to(dtype).unwrap_or(v);
        let mut push = |row: &Row| -> Result<()> {
            for f in filters {
                let env = Env {
                    columns: inner_cols,
                    row,
                    params,
                    precomputed: None,
                };
                if truth(&eval(f, &env)?)? != Some(true) {
                    return Ok(());
                }
            }
            let mut joined = orow.clone();
            joined.extend(row.iter().cloned());
            out.push(joined);
            Ok(())
        };
        match target {
            ProbeTarget::Pk => {
                if let Some(id) = inner.row_id_by_key(std::slice::from_ref(&v)) {
                    push(&inner.rows[&id])?;
                }
            }
            ProbeTarget::Sec(pos) => {
                if let Some(ids) = inner.sec_index(pos).get(&v) {
                    for id in ids {
                        push(&inner.rows[id])?;
                    }
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

/// The fixed schema of EXPLAIN output.
pub fn explain_schema() -> Schema {
    Schema::new(vec![
        Column::new("step", DataType::Int).not_null(),
        Column::new("table", DataType::Text).not_null(),
        Column::new("join", DataType::Text).not_null(),
        Column::new("access", DataType::Text).not_null(),
        Column::new("index", DataType::Text),
        Column::new("est_rows", DataType::Int).not_null(),
    ])
}

fn explain_row(
    step: i64,
    table: &str,
    join: &str,
    access: &str,
    index: Option<&str>,
    est: i64,
) -> Row {
    vec![
        Value::Int(step),
        Value::Text(table.to_string()),
        Value::Text(join.to_string()),
        Value::Text(access.to_string()),
        index.map_or(Value::Null, |s| Value::Text(s.to_string())),
        Value::Int(est),
    ]
}

/// Explain a statement: the plan the engine would execute, one row per
/// step, returned as an ordinary result set.
pub fn explain_statement(
    stmt: &Statement,
    catalog: &dyn Catalog,
    params: Option<&HashMap<String, Value>>,
) -> Result<ResultSet> {
    match stmt {
        Statement::Explain(inner) => explain_statement(inner, catalog, params),
        Statement::Select(s) => explain_select(s, catalog, params),
        Statement::Insert(i) => {
            catalog.table(&i.table)?;
            let est = match &i.source {
                InsertSource::Values(v) => v.len() as i64,
                InsertSource::Select(_) => 0,
            };
            Ok(ResultSet {
                schema: explain_schema(),
                rows: vec![explain_row(
                    1,
                    &i.table.canonical(),
                    "-",
                    "insert",
                    None,
                    est,
                )],
            })
        }
        Statement::Update(u) => explain_dml(catalog, &u.table, u.where_clause.as_ref()),
        Statement::Delete(d) => explain_dml(catalog, &d.table, d.where_clause.as_ref()),
        _ => Err(EngineError::unsupported(
            "EXPLAIN supports SELECT, INSERT, UPDATE and DELETE",
        )),
    }
}

/// UPDATE/DELETE run a full scan of the target table today; report that
/// honestly rather than inventing an index path execution won't take.
fn explain_dml(
    catalog: &dyn Catalog,
    table: &ObjectName,
    where_clause: Option<&Expr>,
) -> Result<ResultSet> {
    let data = catalog.table(table)?;
    let n = split_conjuncts(where_clause).len();
    let est = (data.len() as f64 * FILTER_SEL.powi(n as i32)).ceil() as i64;
    Ok(ResultSet {
        schema: explain_schema(),
        rows: vec![explain_row(1, &data.def.name, "-", "scan", None, est)],
    })
}

fn explain_select(
    select: &SelectStmt,
    catalog: &dyn Catalog,
    params: Option<&HashMap<String, Value>>,
) -> Result<ResultSet> {
    let bound = bind_from(select, catalog)?;
    // Surface the same binding errors the query itself would.
    output_schema_from_binding(select, &bound)?;
    let conjuncts = split_conjuncts(select.where_clause.as_ref());
    let mut classified = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        classified.push(tables_of_expr(c, &bound)?);
    }
    let plan = build_plan(select, &bound, &conjuncts, &classified, params)?;

    let mut rows = Vec::new();
    for (i, step) in plan.steps.iter().enumerate() {
        let def = &bound.tables[step.t].def;
        let (join, probe_index) = match &step.join {
            JoinKind::First => ("-", None),
            JoinKind::Hash { .. } => ("hash", None),
            JoinKind::Cross => ("cross", None),
            JoinKind::IndexNested { target, .. } => (
                "index-nested",
                Some(match target {
                    ProbeTarget::Pk => "pk".to_string(),
                    ProbeTarget::Sec(pos) => def.indexes[*pos].name.clone(),
                }),
            ),
        };
        let (access, index) = if probe_index.is_some() {
            ("probe".to_string(), probe_index)
        } else {
            match &step.access {
                Access::Scan => ("scan".to_string(), None),
                Access::PkPoint => ("pk-point".to_string(), Some("pk".to_string())),
                Access::SecEq { pos, .. } => {
                    ("index-eq".to_string(), Some(def.indexes[*pos].name.clone()))
                }
                Access::SecRange { pos, desc, .. } => (
                    if *desc {
                        "index-range-desc"
                    } else {
                        "index-range"
                    }
                    .to_string(),
                    Some(def.indexes[*pos].name.clone()),
                ),
                Access::SecOrder { pos, desc } => (
                    if *desc {
                        "index-order-desc"
                    } else {
                        "index-order"
                    }
                    .to_string(),
                    Some(def.indexes[*pos].name.clone()),
                ),
                Access::PkOrder { desc } => (
                    if *desc { "pk-order-desc" } else { "pk-order" }.to_string(),
                    Some("pk".to_string()),
                ),
            }
        };
        rows.push(explain_row(
            (i + 1) as i64,
            &def.name,
            join,
            &access,
            index.as_deref(),
            step.est as i64,
        ));
    }
    if plan.steps.is_empty() {
        rows.push(explain_row(1, "", "-", "const", None, 1));
    }
    if !select.order_by.is_empty() {
        let how = if plan.presorted {
            "order-by-index"
        } else {
            "order-by-sort"
        };
        let est = plan.steps.last().map_or(0, |s| s.est as i64);
        rows.push(explain_row(
            (plan.steps.len() + 1) as i64,
            "",
            "-",
            how,
            None,
            est,
        ));
    }
    Ok(ResultSet {
        schema: explain_schema(),
        rows,
    })
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

struct BoundFrom<'a> {
    /// Borrowed table data, in FROM order — scans never copy table storage.
    tables: Vec<&'a TableData>,
    /// Flattened bound columns across tables, in FROM order.
    columns: Vec<BoundColumn>,
    /// `offsets[i]` = first column index of table `i`; one extra entry holds
    /// the total width.
    offsets: Vec<usize>,
}

fn bind_from<'a>(select: &SelectStmt, catalog: &'a dyn Catalog) -> Result<BoundFrom<'a>> {
    let mut tables = Vec::with_capacity(select.from.len());
    let mut columns = Vec::new();
    let mut offsets = vec![0usize];
    for item in &select.from {
        let data = catalog.table(&item.table)?;
        let qualifier = item
            .alias
            .clone()
            .unwrap_or_else(|| item.table.name.clone());
        for col in &data.def.schema.columns {
            columns.push(BoundColumn {
                qualifier: Some(qualifier.clone()),
                name: col.name.clone(),
                dtype: col.dtype,
                nullable: col.nullable,
            });
        }
        offsets.push(columns.len());
        tables.push(data);
    }
    Ok(BoundFrom {
        tables,
        columns,
        offsets,
    })
}

/// Expand the projection list into concrete expressions with output names.
fn expand_projections(select: &SelectStmt, bound: &BoundFrom) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                if bound.columns.is_empty() {
                    return Err(EngineError::column("SELECT * with no FROM clause"));
                }
                for c in &bound.columns {
                    out.push((
                        Expr::Column {
                            table: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for c in &bound.columns {
                    if c.qualifier
                        .as_deref()
                        .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                    {
                        out.push((
                            Expr::Column {
                                table: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            c.name.clone(),
                        ));
                        any = true;
                    }
                }
                if !any {
                    return Err(EngineError::column(format!("unknown table alias '{q}'")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| output_name(expr));
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn output_schema_from_binding(select: &SelectStmt, bound: &BoundFrom) -> Result<Schema> {
    let projections = expand_projections(select, bound)?;
    let mut cols = Vec::with_capacity(projections.len());
    for (expr, name) in &projections {
        let (dtype, nullable) = infer_type(expr, &bound.columns)?;
        cols.push(Column {
            name: name.clone(),
            dtype,
            nullable,
        });
    }
    Ok(Schema::new(cols))
}

// ---------------------------------------------------------------------------
// Scanning and joining
// ---------------------------------------------------------------------------

/// If the filter conjuncts contain `pk_col = <constant>` for every primary-
/// key column, resolve the key through the index and return the candidate
/// rows (zero or one). `None` means the fast path does not apply.
fn try_point_lookup(
    table: &TableData,
    cols: &[BoundColumn],
    filters: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> Result<Option<Vec<Row>>> {
    if !table.def.has_primary_key() {
        return Ok(None);
    }
    let empty_row: Row = Vec::new();
    let mut key = Vec::with_capacity(table.def.primary_key.len());
    for &pk_idx in &table.def.primary_key {
        let pk_name = &table.def.schema.columns[pk_idx].name;
        let mut found = None;
        for f in filters {
            if let Expr::Binary {
                left,
                op: phoenix_sql::ast::BinaryOp::Eq,
                right,
            } = f
            {
                let (col_side, const_side) =
                    if is_column_named(left, pk_name, cols) && is_constant(right) {
                        (left, right)
                    } else if is_column_named(right, pk_name, cols) && is_constant(left) {
                        (right, left)
                    } else {
                        continue;
                    };
                let _ = col_side;
                let env = Env {
                    columns: &[],
                    row: &empty_row,
                    params,
                    precomputed: None,
                };
                let v = eval(const_side, &env)?;
                // Coerce to the key column's type so index comparison is
                // exact (e.g. `k = 5` against a FLOAT key).
                let coerced = v
                    .coerce_to(table.def.schema.columns[pk_idx].dtype)
                    .unwrap_or(v);
                found = Some(coerced);
                break;
            }
        }
        match found {
            Some(v) => key.push(v),
            None => return Ok(None),
        }
    }
    Ok(Some(match table.row_id_by_key(&key) {
        Some(rid) => vec![table.rows[&rid].clone()],
        None => Vec::new(),
    }))
}

/// Is `e` a bare reference to the column `name` of this table?
fn is_column_named(e: &Expr, name: &str, cols: &[BoundColumn]) -> bool {
    match e {
        Expr::Column { table, name: n } if n.eq_ignore_ascii_case(name) => match table {
            None => true,
            Some(q) => cols.iter().any(|c| {
                c.qualifier
                    .as_deref()
                    .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
            }),
        },
        Expr::Nested(inner) => is_column_named(inner, name, cols),
        _ => false,
    }
}

/// Constant expression: literals and parameters only (no column refs).
fn is_constant(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Nested(inner) => is_constant(inner),
        Expr::Unary { expr, .. } => is_constant(expr),
        Expr::Binary { left, right, .. } => is_constant(left) && is_constant(right),
        _ => false,
    }
}

fn cross_join(left: Vec<Row>, right: Vec<Row>) -> Vec<Row> {
    let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()));
    for l in &left {
        for r in &right {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            out.push(row);
        }
    }
    out
}

/// Hash join: build on the (already-filtered) inner input, probe with the
/// joined prefix. NULL keys on either side never match.
#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: Vec<Row>,
    left_cols: &[BoundColumn],
    right: Vec<Row>,
    right_cols: &[BoundColumn],
    left_keys: &[&Expr],
    right_keys: &[&Expr],
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<Row>> {
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(right.len());
    for r in &right {
        let env = Env {
            columns: right_cols,
            row: r,
            params,
            precomputed: None,
        };
        let mut key = Vec::with_capacity(right_keys.len());
        let mut null = false;
        for k in right_keys {
            let v = eval(k, &env)?;
            if v.is_null() {
                null = true;
                break;
            }
            key.push(v);
        }
        if !null {
            table.entry(key).or_default().push(r);
        }
    }

    let mut out = Vec::new();
    for l in &left {
        let env = Env {
            columns: left_cols,
            row: l,
            params,
            precomputed: None,
        };
        let mut key = Vec::with_capacity(left_keys.len());
        let mut null = false;
        for k in left_keys {
            let v = eval(k, &env)?;
            if v.is_null() {
                null = true;
                break;
            }
            key.push(v);
        }
        if null {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for r in matches {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Conjunct analysis
// ---------------------------------------------------------------------------

/// Split an optional predicate into top-level AND conjuncts.
pub fn split_conjuncts(pred: Option<&Expr>) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: phoenix_sql::ast::BinaryOp::And,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Nested(inner) => walk(inner, out),
            other => out.push(other.clone()),
        }
    }
    if let Some(p) = pred {
        walk(p, &mut out);
    }
    out
}

/// Which FROM tables does this expression reference? Sorted, deduplicated.
fn tables_of_expr(expr: &Expr, bound: &BoundFrom) -> Result<Vec<usize>> {
    let mut tables = Vec::new();
    collect_tables(expr, bound, &mut tables)?;
    tables.sort_unstable();
    tables.dedup();
    Ok(tables)
}

fn collect_tables(expr: &Expr, bound: &BoundFrom, out: &mut Vec<usize>) -> Result<()> {
    match expr {
        Expr::Column { table, name } => {
            let env = Env::new(&bound.columns, &[]);
            let idx = env.resolve(table.as_deref(), name)?;
            // Map the flat column index back to its table.
            let t = bound
                .offsets
                .windows(2)
                .position(|w| idx >= w[0] && idx < w[1])
                .ok_or_else(|| EngineError::internal("column offset out of range"))?;
            out.push(t);
            Ok(())
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Nested(expr) => {
            collect_tables(expr, bound, out)
        }
        Expr::Binary { left, right, .. } => {
            collect_tables(left, bound, out)?;
            collect_tables(right, bound, out)
        }
        Expr::Function { args, .. } => {
            for a in args {
                if !matches!(a, Expr::Wildcard) {
                    collect_tables(a, bound, out)?;
                }
            }
            Ok(())
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_tables(c, bound, out)?;
                collect_tables(v, bound, out)?;
            }
            if let Some(e) = else_expr {
                collect_tables(e, bound, out)?;
            }
            Ok(())
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_tables(expr, bound, out)?;
            collect_tables(low, bound, out)?;
            collect_tables(high, bound, out)
        }
        Expr::InList { expr, list, .. } => {
            collect_tables(expr, bound, out)?;
            for e in list {
                collect_tables(e, bound, out)?;
            }
            Ok(())
        }
        Expr::Like { expr, pattern, .. } => {
            collect_tables(expr, bound, out)?;
            collect_tables(pattern, bound, out)
        }
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Aggregation / projection / ordering
// ---------------------------------------------------------------------------

/// Collect the distinct aggregate expressions appearing anywhere in the
/// statement's output positions, keyed by rendered text.
fn collect_aggregates(select: &SelectStmt) -> Vec<Expr> {
    let mut seen: Vec<Expr> = Vec::new();
    let mut push = |e: &Expr| {
        let key = render_expr(e);
        if !seen.iter().any(|s| render_expr(s) == key) {
            seen.push(e.clone());
        }
    };
    fn walk(e: &Expr, push: &mut dyn FnMut(&Expr)) {
        match e {
            Expr::Function { name, .. } if is_aggregate(name) => push(e),
            Expr::Function { args, .. } => args.iter().for_each(|a| walk(a, push)),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Nested(expr) => {
                walk(expr, push)
            }
            Expr::Binary { left, right, .. } => {
                walk(left, push);
                walk(right, push);
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    walk(c, push);
                    walk(v, push);
                }
                if let Some(x) = else_expr {
                    walk(x, push);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, push);
                walk(low, push);
                walk(high, push);
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, push);
                list.iter().for_each(|x| walk(x, push));
            }
            Expr::Like { expr, pattern, .. } => {
                walk(expr, push);
                walk(pattern, push);
            }
            _ => {}
        }
    }
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut push);
        }
    }
    if let Some(h) = &select.having {
        walk(h, &mut push);
    }
    for o in &select.order_by {
        walk(&o.expr, &mut push);
    }
    seen
}

fn finish_select(
    select: &SelectStmt,
    bound: &BoundFrom,
    rows: Vec<Row>,
    params: Option<&HashMap<String, Value>>,
    schema: Schema,
    presorted: bool,
) -> Result<ResultSet> {
    let projections = expand_projections(select, bound)?;
    let aggregates = collect_aggregates(select);
    let grouped = !select.group_by.is_empty() || !aggregates.is_empty();

    // (output row, sort-env precomputed map, input row) triples for ORDER BY.
    type SortableRow = (Row, Option<HashMap<String, Value>>, Option<Row>);
    let mut output: Vec<SortableRow> = Vec::new();

    if grouped {
        // Group rows by group-key values.
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        for row in rows {
            let env = Env {
                columns: &bound.columns,
                row: &row,
                params,
                precomputed: None,
            };
            let mut key = Vec::with_capacity(select.group_by.len());
            for g in &select.group_by {
                key.push(eval(g, &env)?);
            }
            let mut kb = bytes::BytesMut::new();
            phoenix_storage::codec::put_row(&mut kb, &key);
            let kb = kb.to_vec();
            match index.get(&kb) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    index.insert(kb, groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // A global aggregate over zero rows still yields one group.
        if groups.is_empty() && select.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        for (key, grows) in &groups {
            let mut pre: HashMap<String, Value> = HashMap::new();
            for (g, k) in select.group_by.iter().zip(key.iter()) {
                pre.insert(render_expr(g), k.clone());
            }
            for agg in &aggregates {
                let v = compute_aggregate(agg, grows, bound, params)?;
                pre.insert(render_expr(agg), v);
            }
            // Representative row for column refs not captured by the group
            // key (lenient, MySQL-style; strict SQL would reject them).
            let rep = grows.first().cloned().unwrap_or_default();
            let env = Env {
                columns: &bound.columns,
                row: &rep,
                params,
                precomputed: Some(&pre),
            };
            if let Some(h) = &select.having {
                if truth(&eval(h, &env)?)? != Some(true) {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(projections.len());
            for (expr, _) in &projections {
                out_row.push(eval(expr, &env)?);
            }
            output.push((out_row, Some(pre), Some(rep)));
        }
    } else {
        for row in rows {
            let env = Env {
                columns: &bound.columns,
                row: &row,
                params,
                precomputed: None,
            };
            let mut out_row = Vec::with_capacity(projections.len());
            for (expr, _) in &projections {
                out_row.push(eval(expr, &env)?);
            }
            output.push((out_row, None, Some(row)));
        }
    }

    // SELECT DISTINCT: deduplicate output rows (before ordering, as SQL
    // defines — DISTINCT is a property of the result set).
    if select.distinct {
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        output.retain(|(row, _, _)| {
            let mut kb = bytes::BytesMut::new();
            phoenix_storage::codec::put_row(&mut kb, row);
            seen.insert(kb.to_vec())
        });
    }

    // ORDER BY — skipped when the access path already delivered the rows in
    // the requested order.
    if !select.order_by.is_empty() && !presorted {
        // Precompute sort keys.
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(output.len());
        for (out_row, pre, in_row) in &output {
            let mut keys = Vec::with_capacity(select.order_by.len());
            for item in &select.order_by {
                let v = sort_key_value(
                    &item.expr,
                    select,
                    &projections,
                    out_row,
                    pre.as_ref(),
                    in_row.as_deref(),
                    bound,
                    params,
                )?;
                keys.push(v);
            }
            keyed.push((keys, out_row.clone()));
        }
        keyed.sort_by(|a, b| {
            for (i, item) in select.order_by.iter().enumerate() {
                let ord = a.0[i].cmp(&b.0[i]);
                let ord = if item.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        output = keyed.into_iter().map(|(_, r)| (r, None, None)).collect();
    }

    // OFFSET / LIMIT.
    let mut rows: Vec<Row> = output.into_iter().map(|(r, _, _)| r).collect();
    if let Some(off) = select.offset {
        rows = rows.into_iter().skip(off as usize).collect();
    }
    if let Some(lim) = select.limit {
        rows.truncate(lim as usize);
    }

    Ok(ResultSet { schema, rows })
}

/// Evaluate one ORDER BY expression for a single output row.
#[allow(clippy::too_many_arguments)]
fn sort_key_value(
    expr: &Expr,
    _select: &SelectStmt,
    projections: &[(Expr, String)],
    out_row: &Row,
    pre: Option<&HashMap<String, Value>>,
    in_row: Option<&[Value]>,
    bound: &BoundFrom,
    params: Option<&HashMap<String, Value>>,
) -> Result<Value> {
    // Ordinal reference: ORDER BY 2.
    if let Expr::Literal(phoenix_sql::ast::Literal::Int(n)) = expr {
        let i = *n as usize;
        if i >= 1 && i <= out_row.len() {
            return Ok(out_row[i - 1].clone());
        }
        return Err(EngineError::column(format!(
            "ORDER BY position {n} out of range"
        )));
    }
    // Alias or exact-projection match → output column.
    let key = render_expr(expr);
    for (i, (pexpr, pname)) in projections.iter().enumerate() {
        let alias_match =
            matches!(expr, Expr::Column { table: None, name } if name.eq_ignore_ascii_case(pname));
        if alias_match || render_expr(pexpr) == key {
            return Ok(out_row[i].clone());
        }
    }
    // Fall back to evaluating against the input/group environment.
    let in_row = in_row.ok_or_else(|| {
        EngineError::column(format!("cannot order by '{key}': not in projection"))
    })?;
    let env = Env {
        columns: &bound.columns,
        row: in_row,
        params,
        precomputed: pre,
    };
    eval(expr, &env)
}

/// Compute one aggregate over the rows of a group.
fn compute_aggregate(
    agg: &Expr,
    rows: &[Row],
    bound: &BoundFrom,
    params: Option<&HashMap<String, Value>>,
) -> Result<Value> {
    let (name, args, distinct) = match agg {
        Expr::Function {
            name,
            args,
            distinct,
        } => (name.to_ascii_uppercase(), args, *distinct),
        other => {
            return Err(EngineError::internal(format!(
                "not an aggregate: {other:?}"
            )))
        }
    };

    // COUNT(*) counts rows.
    if name == "COUNT" && matches!(args.first(), Some(Expr::Wildcard) | None) {
        return Ok(Value::Int(rows.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| EngineError::type_err(format!("{name}() needs an argument")))?;

    let mut values: Vec<Value> = Vec::new();
    for row in rows {
        let env = Env {
            columns: &bound.columns,
            row,
            params,
            precomputed: None,
        };
        let v = eval(arg, &env)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen: Vec<Value> = Vec::new();
        values.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }

    Ok(match name.as_str() {
        "COUNT" => Value::Int(values.len() as i64),
        "SUM" | "AVG" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            let sum: f64 = values
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        EngineError::type_err(format!("{name}() over non-numeric value"))
                    })
                })
                .sum::<Result<f64>>()?;
            if name == "AVG" {
                Value::Float(sum / values.len() as f64)
            } else if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        "MIN" | "MAX" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = compare(&v, &b)?;
                        let take = if name == "MIN" {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
        other => return Err(EngineError::unsupported(format!("aggregate {other}()"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{DataType, TableDef};

    struct TestCatalog {
        store: Store,
    }

    impl Catalog for TestCatalog {
        fn table(&self, name: &ObjectName) -> Result<&TableData> {
            self.store
                .table(&name.canonical())
                .map_err(|e| EngineError::new(ErrorCode::NotFound, e.to_string()))
        }
    }

    fn catalog() -> TestCatalog {
        let mut store = Store::new();
        store
            .create_table(
                TableDef::new(
                    "dbo.customer",
                    Schema::new(vec![
                        Column::new("id", DataType::Int).not_null(),
                        Column::new("name", DataType::Text),
                        Column::new("nation", DataType::Int),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        store
            .create_table(
                TableDef::new(
                    "dbo.orders",
                    Schema::new(vec![
                        Column::new("okey", DataType::Int).not_null(),
                        Column::new("cust_id", DataType::Int),
                        Column::new("total", DataType::Float),
                        Column::new("status", DataType::Text),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        {
            let c = store.table_mut("dbo.customer").unwrap();
            for (id, name, nation) in [(1, "Smith", 10), (2, "Jones", 10), (3, "Smith", 20)] {
                c.insert(vec![
                    Value::Int(id),
                    Value::Text(name.into()),
                    Value::Int(nation),
                ])
                .unwrap();
            }
        }
        {
            let o = store.table_mut("dbo.orders").unwrap();
            for (okey, cid, total, status) in [
                (100, 1, 10.0, "O"),
                (101, 1, 20.0, "F"),
                (102, 2, 30.0, "O"),
                (103, 3, 40.0, "F"),
                (104, 3, 50.0, "F"),
            ] {
                o.insert(vec![
                    Value::Int(okey),
                    Value::Int(cid),
                    Value::Float(total),
                    Value::Text(status.into()),
                ])
                .unwrap();
            }
        }
        TestCatalog { store }
    }

    fn run(sql: &str) -> ResultSet {
        let cat = catalog();
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => execute_select(&s, &cat, None).unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_select() {
        let rs = run("SELECT 1 + 1, 'x'");
        assert_eq!(rs.rows, vec![vec![Value::Int(2), Value::Text("x".into())]]);
    }

    #[test]
    fn full_scan_in_insertion_order() {
        let rs = run("SELECT id FROM customer");
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }

    #[test]
    fn filter_pushdown() {
        let rs = run("SELECT id FROM customer WHERE name = 'Smith'");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn where_0_eq_1_returns_schema_only() {
        let rs = run("SELECT id, name FROM customer WHERE (name = 'Smith') AND (0 = 1)");
        assert!(rs.rows.is_empty());
        assert_eq!(rs.schema.columns[0].name, "id");
        assert_eq!(rs.schema.columns[0].dtype, DataType::Int);
        assert_eq!(rs.schema.columns[1].dtype, DataType::Text);
    }

    #[test]
    fn hash_join_two_tables() {
        let rs = run("SELECT c.name, o.total FROM customer c, orders o \
             WHERE c.id = o.cust_id AND o.status = 'F' ORDER BY o.total");
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::Text("Smith".into()));
        assert_eq!(rs.rows[2][1], Value::Float(50.0));
    }

    #[test]
    fn explicit_join_syntax() {
        let rs = run(
            "SELECT c.name FROM customer c JOIN orders o ON c.id = o.cust_id WHERE o.total > 35.0",
        );
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn cross_join_when_no_equi() {
        let rs = run("SELECT c.id, o.okey FROM customer c, orders o");
        assert_eq!(rs.rows.len(), 15);
    }

    #[test]
    fn group_by_with_aggregates() {
        let rs = run(
            "SELECT status, COUNT(*) AS n, SUM(total) AS s, AVG(total), MIN(total), MAX(total) \
             FROM orders GROUP BY status ORDER BY status",
        );
        assert_eq!(rs.rows.len(), 2);
        // F: 3 orders totalling 110
        assert_eq!(rs.rows[0][0], Value::Text("F".into()));
        assert_eq!(rs.rows[0][1], Value::Int(3));
        assert_eq!(rs.rows[0][2], Value::Float(110.0));
        // O: 2 orders totalling 40
        assert_eq!(rs.rows[1][1], Value::Int(2));
        assert_eq!(rs.rows[1][2], Value::Float(40.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let rs = run("SELECT COUNT(*), SUM(total) FROM orders");
        assert_eq!(rs.rows, vec![vec![Value::Int(5), Value::Float(150.0)]]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let rs = run("SELECT COUNT(*), SUM(total) FROM orders WHERE okey > 999");
        assert_eq!(rs.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn having_filters_groups() {
        let rs = run("SELECT cust_id, COUNT(*) FROM orders GROUP BY cust_id HAVING COUNT(*) >= 2 ORDER BY cust_id");
        assert_eq!(rs.rows.len(), 2); // customers 1 and 3
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT name) FROM customer");
        assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let rs = run("SELECT id AS k FROM customer ORDER BY k DESC");
        assert_eq!(rs.rows[0], vec![Value::Int(3)]);
        let rs = run("SELECT id, name FROM customer ORDER BY 2, 1 DESC");
        assert_eq!(rs.rows[0], vec![Value::Int(2), Value::Text("Jones".into())]);
    }

    #[test]
    fn order_by_non_projected_column() {
        let rs = run("SELECT name FROM customer ORDER BY id DESC");
        assert_eq!(rs.rows[0], vec![Value::Text("Smith".into())]);
    }

    #[test]
    fn limit_offset() {
        let rs = run("SELECT okey FROM orders ORDER BY okey LIMIT 2 OFFSET 1");
        assert_eq!(rs.rows, vec![vec![Value::Int(101)], vec![Value::Int(102)]]);
        let rs = run("SELECT okey FROM orders OFFSET 3");
        assert_eq!(rs.rows.len(), 2);
        let rs = run("SELECT TOP 1 okey FROM orders");
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn aggregate_in_arithmetic() {
        let rs = run("SELECT SUM(total) / COUNT(*) FROM orders");
        assert_eq!(rs.rows, vec![vec![Value::Float(30.0)]]);
    }

    #[test]
    fn case_with_aggregate_q14_shape() {
        let rs = run(
            "SELECT 100.0 * SUM(CASE WHEN status LIKE 'O%' THEN total ELSE 0.0 END) / SUM(total) FROM orders",
        );
        match &rs.rows[0][0] {
            Value::Float(f) => assert!((f - 26.6667).abs() < 0.01, "{f}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn schema_without_execution() {
        let cat = catalog();
        let s = match parse_statement(
            "SELECT name, SUM(total) AS st FROM customer, orders WHERE id = cust_id GROUP BY name",
        )
        .unwrap()
        {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let schema = select_schema(&s, &cat).unwrap();
        assert_eq!(schema.columns[0].name, "name");
        assert_eq!(schema.columns[1].name, "st");
        assert_eq!(schema.columns[1].dtype, DataType::Float);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let cat = catalog();
        let s = match parse_statement("SELECT * FROM nope").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            execute_select(&s, &cat, None).unwrap_err().code,
            ErrorCode::NotFound
        );
        let s = match parse_statement("SELECT zzz FROM customer").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            execute_select(&s, &cat, None).unwrap_err().code,
            ErrorCode::Column
        );
    }

    #[test]
    fn three_way_join() {
        // Self-join chain through two tables plus customer again.
        let rs = run(
            "SELECT c.name, o.okey, c2.id FROM customer c, orders o, customer c2 \
             WHERE c.id = o.cust_id AND o.cust_id = c2.id AND c.id = 1 ORDER BY o.okey",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][2], Value::Int(1));
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let mut cat = catalog();
        cat.store
            .table_mut("dbo.orders")
            .unwrap()
            .insert(vec![
                Value::Int(105),
                Value::Null,
                Value::Float(1.0),
                Value::Text("O".into()),
            ])
            .unwrap();
        let s =
            match parse_statement("SELECT c.id FROM customer c, orders o WHERE c.id = o.cust_id")
                .unwrap()
            {
                Statement::Select(s) => s,
                other => panic!("{other:?}"),
            };
        let rs = execute_select(&s, &cat, None).unwrap();
        assert_eq!(rs.rows.len(), 5); // the NULL-keyed order matches nothing
    }
}

#[cfg(test)]
mod point_lookup_tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{DataType, TableDef};

    struct Cat {
        store: Store,
    }

    impl Catalog for Cat {
        fn table(&self, name: &ObjectName) -> Result<&TableData> {
            self.store
                .table(&name.canonical())
                .map_err(EngineError::from)
        }
    }

    fn cat() -> Cat {
        let mut store = Store::new();
        store
            .create_table(
                TableDef::new(
                    "dbo.kv",
                    Schema::new(vec![
                        Column::new("k", DataType::Int).not_null(),
                        Column::new("v", DataType::Text),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        let t = store.table_mut("dbo.kv").unwrap();
        for i in 0..1000 {
            t.insert(vec![Value::Int(i), Value::Text(format!("v{i}"))])
                .unwrap();
        }
        // Composite-keyed table.
        store
            .create_table(
                TableDef::new(
                    "dbo.pair",
                    Schema::new(vec![
                        Column::new("a", DataType::Int).not_null(),
                        Column::new("b", DataType::Int).not_null(),
                        Column::new("v", DataType::Int),
                    ]),
                )
                .with_primary_key(vec![0, 1]),
            )
            .unwrap();
        let t = store.table_mut("dbo.pair").unwrap();
        for a in 0..10 {
            for b in 0..10 {
                t.insert(vec![Value::Int(a), Value::Int(b), Value::Int(a * 10 + b)])
                    .unwrap();
            }
        }
        Cat { store }
    }

    fn run(cat: &Cat, sql: &str) -> Vec<Row> {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => execute_select(&s, cat, None).unwrap().rows,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn point_lookup_matches_scan_semantics() {
        let c = cat();
        let rows = run(&c, "SELECT v FROM kv WHERE k = 437");
        assert_eq!(rows, vec![vec![Value::Text("v437".into())]]);
        // Missing key → empty, not an error.
        assert!(run(&c, "SELECT v FROM kv WHERE k = 99999").is_empty());
        // Reversed operand order also hits the fast path.
        let rows = run(&c, "SELECT v FROM kv WHERE 42 = k");
        assert_eq!(rows, vec![vec![Value::Text("v42".into())]]);
    }

    #[test]
    fn point_lookup_keeps_residual_predicates() {
        let c = cat();
        // The key matches but the residual predicate does not.
        assert!(run(&c, "SELECT v FROM kv WHERE k = 10 AND v = 'nope'").is_empty());
        let rows = run(&c, "SELECT v FROM kv WHERE k = 10 AND v = 'v10'");
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn composite_key_lookup() {
        let c = cat();
        let rows = run(&c, "SELECT v FROM pair WHERE a = 3 AND b = 7");
        assert_eq!(rows, vec![vec![Value::Int(37)]]);
        // Partial key does NOT take the fast path but must still be correct.
        let rows = run(&c, "SELECT v FROM pair WHERE a = 3");
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn constant_expressions_and_coercion() {
        let c = cat();
        let rows = run(&c, "SELECT v FROM kv WHERE k = 400 + 37");
        assert_eq!(rows, vec![vec![Value::Text("v437".into())]]);
        // Float constant coerces to the INT key.
        let rows = run(&c, "SELECT v FROM kv WHERE k = 437.0");
        assert_eq!(rows, vec![vec![Value::Text("v437".into())]]);
    }

    #[test]
    fn column_equals_column_is_not_a_point_lookup() {
        let c = cat();
        // `k = k` references a column on both sides; must fall back to scan
        // and return everything.
        let rows = run(&c, "SELECT k FROM kv WHERE k = k");
        assert_eq!(rows.len(), 1000);
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{DataType, TableDef};

    struct Cat {
        store: Store,
    }

    impl Catalog for Cat {
        fn table(&self, name: &ObjectName) -> Result<&TableData> {
            self.store
                .table(&name.canonical())
                .map_err(EngineError::from)
        }
    }

    fn cat() -> Cat {
        let mut store = Store::new();
        store
            .create_table(TableDef::new(
                "dbo.dup",
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ]),
            ))
            .unwrap();
        let t = store.table_mut("dbo.dup").unwrap();
        for (a, b) in [(1, "x"), (1, "x"), (2, "x"), (1, "y"), (2, "x")] {
            t.insert(vec![Value::Int(a), Value::Text(b.into())])
                .unwrap();
        }
        Cat { store }
    }

    fn run(cat: &Cat, sql: &str) -> Vec<Row> {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => execute_select(&s, cat, None).unwrap().rows,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_deduplicates_rows() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT a, b FROM dup ORDER BY a, b");
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Text("x".into())],
                vec![Value::Int(1), Value::Text("y".into())],
                vec![Value::Int(2), Value::Text("x".into())],
            ]
        );
    }

    #[test]
    fn distinct_single_column() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT b FROM dup");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn distinct_preserves_first_occurrence_order() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT a FROM dup");
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn distinct_respects_limit() {
        let c = cat();
        let rows = run(&c, "SELECT DISTINCT a, b FROM dup LIMIT 2");
        assert_eq!(rows.len(), 2);
    }
}

#[cfg(test)]
mod index_plan_tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{DataType, TableDef};

    struct Cat {
        store: Store,
    }

    impl Catalog for Cat {
        fn table(&self, name: &ObjectName) -> Result<&TableData> {
            self.store
                .table(&name.canonical())
                .map_err(EngineError::from)
        }
    }

    /// 102 items: ids 0..99 with cat = id % 5 and price = id, plus two
    /// NULL-cat rows priced 1000/1001. Secondary indexes on cat and price.
    fn cat() -> Cat {
        let mut store = Store::new();
        store
            .create_table(
                TableDef::new(
                    "dbo.item",
                    Schema::new(vec![
                        Column::new("id", DataType::Int).not_null(),
                        Column::new("cat", DataType::Int),
                        Column::new("price", DataType::Float),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        store
            .create_table(
                TableDef::new(
                    "dbo.category",
                    Schema::new(vec![
                        Column::new("cid", DataType::Int).not_null(),
                        Column::new("label", DataType::Text),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        {
            let t = store.table_mut("dbo.item").unwrap();
            for i in 0..100i64 {
                t.insert(vec![
                    Value::Int(i),
                    Value::Int(i % 5),
                    Value::Float(i as f64),
                ])
                .unwrap();
            }
            t.insert(vec![Value::Int(100), Value::Null, Value::Float(1000.0)])
                .unwrap();
            t.insert(vec![Value::Int(101), Value::Null, Value::Float(1001.0)])
                .unwrap();
            t.create_index("ix_cat", 1).unwrap();
            t.create_index("ix_price", 2).unwrap();
        }
        {
            let t = store.table_mut("dbo.category").unwrap();
            for (i, l) in ["zero", "one", "two", "three", "four"].iter().enumerate() {
                t.insert(vec![Value::Int(i as i64), Value::Text((*l).into())])
                    .unwrap();
            }
        }
        Cat { store }
    }

    fn run(c: &Cat, sql: &str) -> Vec<Row> {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => execute_select(&s, c, None).unwrap().rows,
            other => panic!("{other:?}"),
        }
    }

    fn explain(c: &Cat, sql: &str) -> Vec<Row> {
        let stmt = parse_statement(sql).unwrap();
        explain_statement(&stmt, c, None).unwrap().rows
    }

    fn txt(v: &Value) -> String {
        match v {
            Value::Text(t) => t.clone(),
            Value::Null => "<null>".into(),
            other => other.to_string(),
        }
    }

    /// (join, access, index) columns of one EXPLAIN row.
    fn shape(row: &Row) -> (String, String, String) {
        (txt(&row[2]), txt(&row[3]), txt(&row[4]))
    }

    fn ids(rows: &[Row]) -> Vec<i64> {
        rows.iter()
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                other => panic!("{other:?}"),
            })
            .collect()
    }

    #[test]
    fn equality_probe_matches_scan_semantics() {
        let c = cat();
        let rows = run(&c, "SELECT id FROM item WHERE cat = 3");
        assert_eq!(ids(&rows), (0..20).map(|i| i * 5 + 3).collect::<Vec<_>>());
        let ex = explain(&c, "EXPLAIN SELECT id FROM item WHERE cat = 3");
        assert_eq!(
            shape(&ex[0]),
            ("-".into(), "index-eq".into(), "ix_cat".into())
        );
    }

    #[test]
    fn equality_probe_coerces_constant() {
        // Int constant against the FLOAT price column.
        let c = cat();
        let rows = run(&c, "SELECT id FROM item WHERE price = 50");
        assert_eq!(ids(&rows), vec![50]);
    }

    #[test]
    fn in_list_probe_dedupes_and_keeps_list_order() {
        let c = cat();
        let rows = run(&c, "SELECT id FROM item WHERE cat IN (4, 1, 4)");
        assert_eq!(rows.len(), 40);
        assert_eq!(ids(&rows)[0], 4); // cat-4 bucket first, list order
        let ex = explain(&c, "EXPLAIN SELECT id FROM item WHERE cat IN (4, 1, 4)");
        assert_eq!(shape(&ex[0]).1, "index-eq");
    }

    #[test]
    fn range_probe_excludes_null_keys() {
        let c = cat();
        // The two NULL-cat rows satisfy no comparison; the probe must skip
        // their index bucket exactly as predicate evaluation would.
        let rows = run(&c, "SELECT id FROM item WHERE cat > 2");
        assert_eq!(rows.len(), 40);
        assert!(ids(&rows).iter().all(|i| i % 5 >= 3));
        let ex = explain(&c, "EXPLAIN SELECT id FROM item WHERE cat > 2");
        assert_eq!(
            shape(&ex[0]),
            ("-".into(), "index-range".into(), "ix_cat".into())
        );
    }

    #[test]
    fn range_probe_merges_bounds_and_between() {
        let c = cat();
        let rows = run(
            &c,
            "SELECT id FROM item WHERE price >= 10.0 AND price < 15.0",
        );
        assert_eq!(ids(&rows), vec![10, 11, 12, 13, 14]);
        let rows = run(&c, "SELECT id FROM item WHERE price BETWEEN 20.0 AND 24.0");
        assert_eq!(ids(&rows), vec![20, 21, 22, 23, 24]);
    }

    #[test]
    fn unselective_probe_falls_back_to_scan() {
        let c = cat();
        // cat >= 0 matches 100 of 102 rows: scanning is cheaper.
        let ex = explain(&c, "EXPLAIN SELECT id FROM item WHERE cat >= 0");
        assert_eq!(shape(&ex[0]).1, "scan");
        assert_eq!(run(&c, "SELECT id FROM item WHERE cat >= 0").len(), 100);
    }

    #[test]
    fn join_reorders_and_probes_secondary_index() {
        let c = cat();
        let rows = run(
            &c,
            "SELECT i.id, c.label FROM item i, category c \
             WHERE i.cat = c.cid AND c.label = 'two'",
        );
        assert_eq!(rows.len(), 20);
        // Output layout is FROM order even though category executed first.
        for r in &rows {
            assert!(matches!(&r[0], Value::Int(i) if i % 5 == 2));
            assert_eq!(r[1], Value::Text("two".into()));
        }
        let ex = explain(
            &c,
            "EXPLAIN SELECT i.id, c.label FROM item i, category c \
             WHERE i.cat = c.cid AND c.label = 'two'",
        );
        assert_eq!(txt(&ex[0][1]), "dbo.category");
        assert_eq!(shape(&ex[0]), ("-".into(), "scan".into(), "<null>".into()));
        assert_eq!(txt(&ex[1][1]), "dbo.item");
        assert_eq!(
            shape(&ex[1]),
            ("index-nested".into(), "probe".into(), "ix_cat".into())
        );
    }

    #[test]
    fn join_probes_primary_key() {
        let c = cat();
        let rows = run(
            &c,
            "SELECT i.id, c.label FROM item i, category c \
             WHERE c.cid = i.cat AND i.price < 1.0",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[0][1], Value::Text("zero".into()));
        let ex = explain(
            &c,
            "EXPLAIN SELECT i.id, c.label FROM item i, category c \
             WHERE c.cid = i.cat AND i.price < 1.0",
        );
        assert_eq!(
            shape(&ex[1]),
            ("index-nested".into(), "probe".into(), "pk".into())
        );
    }

    #[test]
    fn order_by_walks_index_instead_of_sorting() {
        let c = cat();
        let rows = run(&c, "SELECT id FROM item ORDER BY price DESC LIMIT 3");
        assert_eq!(ids(&rows), vec![101, 100, 99]);
        let ex = explain(
            &c,
            "EXPLAIN SELECT id FROM item ORDER BY price DESC LIMIT 3",
        );
        assert_eq!(shape(&ex[0]).1, "index-order-desc");
        assert_eq!(shape(&ex[1]).1, "order-by-index");
    }

    #[test]
    fn order_by_index_sorts_nulls_first() {
        let c = cat();
        // NULL sorts lowest; index order must agree with the sort path.
        let rows = run(&c, "SELECT id FROM item ORDER BY cat LIMIT 2");
        assert_eq!(ids(&rows), vec![100, 101]);
    }

    #[test]
    fn order_by_pk_walks_pk_index() {
        let c = cat();
        let rows = run(&c, "SELECT cid FROM category ORDER BY cid DESC LIMIT 2");
        assert_eq!(ids(&rows), vec![4, 3]);
        let ex = explain(
            &c,
            "EXPLAIN SELECT cid FROM category ORDER BY cid DESC LIMIT 2",
        );
        assert_eq!(shape(&ex[0]).1, "pk-order-desc");
    }

    #[test]
    fn range_probe_satisfies_order_by() {
        let c = cat();
        let rows = run(
            &c,
            "SELECT id FROM item WHERE price > 90.0 ORDER BY price DESC",
        );
        assert_eq!(rows.len(), 11);
        assert_eq!(ids(&rows)[0], 101);
        let ex = explain(
            &c,
            "EXPLAIN SELECT id FROM item WHERE price > 90.0 ORDER BY price DESC",
        );
        assert_eq!(shape(&ex[0]).1, "index-range-desc");
        assert_eq!(shape(&ex[1]).1, "order-by-index");
    }

    #[test]
    fn alias_shadowing_forces_a_real_sort() {
        let c = cat();
        // ORDER BY price binds to the alias (the cat values), not the
        // indexed price column — index order must NOT be claimed.
        let rows = run(&c, "SELECT cat AS price FROM item ORDER BY price");
        assert_eq!(rows.len(), 102);
        assert_eq!(rows[0][0], Value::Null);
        let ex = explain(&c, "EXPLAIN SELECT cat AS price FROM item ORDER BY price");
        assert_eq!(shape(&ex[1]).1, "order-by-sort");
    }

    #[test]
    fn explain_handles_parameterized_probes() {
        let c = cat();
        // Parameters are absent at EXPLAIN time; the plan still forms.
        let ex = explain(&c, "EXPLAIN SELECT id FROM item WHERE price < @p");
        assert_eq!(shape(&ex[0]).1, "index-range");
    }

    #[test]
    fn explain_dml_and_insert() {
        let c = cat();
        let ex = explain(&c, "EXPLAIN UPDATE item SET price = 0.0 WHERE cat = 1");
        assert_eq!(txt(&ex[0][1]), "dbo.item");
        assert_eq!(shape(&ex[0]).1, "scan");
        let ex = explain(
            &c,
            "EXPLAIN INSERT INTO item VALUES (500, 1, 1.0), (501, 2, 2.0)",
        );
        assert_eq!(shape(&ex[0]).1, "insert");
        assert_eq!(ex[0][5], Value::Int(2));
        let ex = explain(&c, "EXPLAIN DELETE FROM category WHERE cid = 1");
        assert_eq!(shape(&ex[0]).1, "scan");
    }

    #[test]
    fn explain_point_lookup_and_const() {
        let c = cat();
        let ex = explain(&c, "EXPLAIN SELECT price FROM item WHERE id = 42");
        assert_eq!(shape(&ex[0]), ("-".into(), "pk-point".into(), "pk".into()));
        assert_eq!(ex[0][5], Value::Int(1));
        let ex = explain(&c, "EXPLAIN SELECT 1 + 1");
        assert_eq!(shape(&ex[0]).1, "const");
    }

    #[test]
    fn probe_results_equal_scan_results() {
        // Same data, same queries, indexed vs unindexed: identical rows.
        let indexed = cat();
        let mut plain = cat();
        {
            let t = plain.store.table_mut("dbo.item").unwrap();
            t.drop_index("ix_cat").unwrap();
            t.drop_index("ix_price").unwrap();
        }
        for sql in [
            "SELECT id, cat, price FROM item WHERE cat = 2 ORDER BY id",
            "SELECT id FROM item WHERE cat IN (0, 3) ORDER BY id",
            "SELECT id FROM item WHERE price > 95.0 AND price <= 1000.0 ORDER BY id",
            "SELECT id FROM item WHERE cat = 1 AND price > 50.0 ORDER BY id",
            "SELECT i.id FROM item i, category c WHERE i.cat = c.cid ORDER BY i.id",
        ] {
            assert_eq!(run(&indexed, sql), run(&plain, sql), "{sql}");
        }
    }
}
