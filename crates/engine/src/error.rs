//! The engine error model.
//!
//! Errors carry a machine-readable [`ErrorCode`] (in the spirit of SQLSTATE
//! classes) plus a human-readable message. The code crosses the wire intact:
//! the driver re-materializes it, and Phoenix's failure detector keys off the
//! distinction between *server* errors (the statement failed; the session is
//! fine) and *communication* errors (the session may be gone) — the latter
//! are produced by the driver, never by the engine.

use std::fmt;

use phoenix_sql::ParseError;
use phoenix_storage::db::DbError;
use phoenix_storage::store::StoreError;

/// Machine-readable error class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// SQL could not be parsed.
    Parse = 1,
    /// Referenced table/procedure/cursor does not exist.
    NotFound = 2,
    /// Object already exists.
    AlreadyExists = 3,
    /// Unknown or ambiguous column.
    Column = 4,
    /// Type error in expression evaluation or coercion.
    Type = 5,
    /// Constraint violation (primary key, NOT NULL, arity).
    Constraint = 6,
    /// Transaction-state misuse (nested BEGIN, COMMIT without BEGIN, …).
    Txn = 7,
    /// Feature outside the supported dialect.
    Unsupported = 8,
    /// Cursor misuse (bad direction for kind, fetch after close, …).
    Cursor = 9,
    /// Unknown session (stale handle — after a server crash every session
    /// id from the previous incarnation dies; Phoenix relies on this).
    NoSession = 10,
    /// Internal invariant failure — always a bug.
    Internal = 11,
    /// I/O or durability failure.
    Storage = 12,
    /// Server is at capacity (session cap reached, admission queue full).
    /// Transient by contract: the client may retry after a backoff — the
    /// driver treats this code as retryable.
    Busy = 13,
    /// This server incarnation was fenced by a newer primary (or has not
    /// been promoted yet) and refuses logins and writes. Retryable by the
    /// driver's taxonomy: the client should rotate to the next server in
    /// its list, where the promoted incarnation is (or will be) accepting.
    Fenced = 14,
}

impl ErrorCode {
    /// Decode a wire error code (unknowns map to `Internal`).
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Parse,
            2 => ErrorCode::NotFound,
            3 => ErrorCode::AlreadyExists,
            4 => ErrorCode::Column,
            5 => ErrorCode::Type,
            6 => ErrorCode::Constraint,
            7 => ErrorCode::Txn,
            8 => ErrorCode::Unsupported,
            9 => ErrorCode::Cursor,
            10 => ErrorCode::NoSession,
            12 => ErrorCode::Storage,
            13 => ErrorCode::Busy,
            14 => ErrorCode::Fenced,
            _ => ErrorCode::Internal,
        }
    }
}

/// An engine error: code + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl EngineError {
    /// An error with the given class and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> EngineError {
        EngineError {
            code,
            message: message.into(),
        }
    }

    /// `NotFound` shorthand.
    pub fn not_found(what: impl fmt::Display) -> EngineError {
        EngineError::new(ErrorCode::NotFound, format!("{what}"))
    }

    /// `Column` (unknown/ambiguous column) shorthand.
    pub fn column(msg: impl Into<String>) -> EngineError {
        EngineError::new(ErrorCode::Column, msg)
    }

    /// `Type` error shorthand.
    pub fn type_err(msg: impl Into<String>) -> EngineError {
        EngineError::new(ErrorCode::Type, msg)
    }

    /// `Unsupported` feature shorthand.
    pub fn unsupported(msg: impl Into<String>) -> EngineError {
        EngineError::new(ErrorCode::Unsupported, msg)
    }

    /// `Internal` invariant-failure shorthand.
    pub fn internal(msg: impl Into<String>) -> EngineError {
        EngineError::new(ErrorCode::Internal, msg)
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}] {}", self.code, self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::new(ErrorCode::Parse, e.to_string())
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        let code = match &e {
            StoreError::TableExists(_) | StoreError::ProcExists(_) | StoreError::IndexExists(_) => {
                ErrorCode::AlreadyExists
            }
            StoreError::NoSuchTable(_)
            | StoreError::NoSuchProc(_)
            | StoreError::NoSuchIndex(_)
            | StoreError::NoSuchRow { .. } => ErrorCode::NotFound,
            StoreError::DuplicateKey(_) | StoreError::ArityMismatch { .. } => ErrorCode::Constraint,
        };
        EngineError::new(code, e.to_string())
    }
}

impl From<DbError> for EngineError {
    fn from(e: DbError) -> Self {
        match e {
            DbError::Store(s) => s.into(),
            DbError::Io(io) => EngineError::new(ErrorCode::Storage, io.to_string()),
            DbError::Decode(d) => EngineError::new(ErrorCode::Storage, d.to_string()),
            DbError::NoSuchTxn(t) => {
                EngineError::new(ErrorCode::Txn, format!("no such transaction {t}"))
            }
            DbError::TxnActive(t) => {
                EngineError::new(ErrorCode::Txn, format!("transaction {t} active"))
            }
        }
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::NotFound,
            ErrorCode::AlreadyExists,
            ErrorCode::Column,
            ErrorCode::Type,
            ErrorCode::Constraint,
            ErrorCode::Txn,
            ErrorCode::Unsupported,
            ErrorCode::Cursor,
            ErrorCode::NoSession,
            ErrorCode::Internal,
            ErrorCode::Storage,
            ErrorCode::Busy,
            ErrorCode::Fenced,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), code);
        }
    }

    #[test]
    fn store_error_mapping() {
        let e: EngineError = StoreError::NoSuchTable("t".into()).into();
        assert_eq!(e.code, ErrorCode::NotFound);
        let e: EngineError = StoreError::DuplicateKey("t".into()).into();
        assert_eq!(e.code, ErrorCode::Constraint);
    }
}
