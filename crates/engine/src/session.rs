//! Per-session volatile state.
//!
//! Everything in a [`SessionState`] lives only in server memory: the temp
//! store (tables and procedures spelled `#name`), connection options set by
//! the client, the open explicit transaction, and open server cursors. A
//! server crash destroys all of it — which is precisely the loss the paper's
//! Phoenix layer exists to mask. The engine makes no attempt to persist any
//! of this; persistence of *session state* is Phoenix's job, performed by
//! materializing it as ordinary durable tables.

use std::collections::HashMap;

use phoenix_storage::store::Store;
use phoenix_storage::types::{TxnId, Value};

use crate::cursor::{Cursor, CursorId};

/// Session identifier. Monotone within one server incarnation; after a crash
/// all previous ids are invalid (`ErrorCode::NoSession`), which is how stale
/// handles surface.
pub type SessionId = u64;

/// Volatile per-session state.
pub struct SessionState {
    /// The session's id.
    pub id: SessionId,
    /// Login user name.
    pub user: String,
    /// Connection options set via `SET name value`, in application order.
    /// Order is kept because Phoenix replays them in order at recovery.
    pub options: Vec<(String, Value)>,
    /// Session-scoped temporary tables and procedures (`#name`). A bare
    /// volatile [`Store`]: no WAL, no snapshot — dies with the process.
    pub temp: Store,
    /// The open explicit transaction, if any.
    pub txn: Option<TxnId>,
    /// Open server cursors.
    pub cursors: HashMap<CursorId, Cursor>,
    /// Rows affected (or returned) by the previous statement — the value of
    /// `@@ROWCOUNT`. DML sets it to the affected count, SELECT to the row
    /// count, and everything else resets it to 0 (T-SQL-compatible enough
    /// for the wrapped-request pattern, which reads it in the statement
    /// immediately following the DML).
    pub rowcount: u64,
    /// Tombstone set (under this state's mutex) by the lifecycle manager
    /// when it spills the session: the durable spill row is now the
    /// authoritative copy and this in-memory state is an orphan. A request
    /// thread that cloned the catalog entry before the spill re-checks this
    /// after locking and retries its lookup instead of executing against
    /// state whose effects would be silently discarded.
    pub(crate) spilled_out: bool,
}

impl SessionState {
    /// A fresh session with empty volatile state.
    pub fn new(id: SessionId, user: impl Into<String>) -> SessionState {
        SessionState {
            id,
            user: user.into(),
            options: Vec::new(),
            temp: Store::new(),
            txn: None,
            cursors: HashMap::new(),
            rowcount: 0,
            spilled_out: false,
        }
    }

    /// Record a SET option (later settings of the same name override, but
    /// the history keeps only the latest value per name).
    pub fn set_option(&mut self, name: &str, value: Value) {
        if let Some(slot) = self
            .options
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            slot.1 = value;
        } else {
            self.options.push((name.to_string(), value));
        }
    }

    /// Current value of a SET option, if set.
    pub fn option(&self, name: &str) -> Option<&Value> {
        self.options
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_override_in_place() {
        let mut s = SessionState::new(1, "alice");
        s.set_option("lock_timeout", Value::Int(5));
        s.set_option("flag", Value::Bool(true));
        s.set_option("LOCK_TIMEOUT", Value::Int(9));
        assert_eq!(s.option("lock_timeout"), Some(&Value::Int(9)));
        assert_eq!(s.options.len(), 2);
        assert_eq!(s.options[0].0, "lock_timeout"); // order preserved
    }
}
