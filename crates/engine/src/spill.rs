//! Durable session spill and restore — the session lifecycle manager's
//! mechanism.
//!
//! The paper persists a session's *recovery context* in ordinary durable
//! tables so a crashed server can resurrect it. This module applies the same
//! trick to a server that is merely **full**: an idle session's volatile
//! state (SET options, temp tables and procedures, open cursors, `@@ROWCOUNT`)
//! is serialized into a row of `phoenix.sessiond_spill` and evicted from
//! engine memory. The next engine call that names the session transparently
//! restores it — callers cannot tell a spilled session from a resident one.
//!
//! Spill rows are keyed `(incarnation, sid)`. The incarnation stamp is drawn
//! fresh at every [`Engine::open`], and the in-memory spilled index starts
//! empty, so rows written by a previous (crashed) incarnation can never be
//! restored — they age out through the retention window
//! ([`Engine::purge_spilled`]) exactly like the paper's abandoned-session
//! garbage. A session with an open transaction or an in-flight statement is
//! never spilled.
//!
//! Observable via `phoenix_sessiond_*` metrics and `server_lifecycle`
//! journal events; crash-injectable at the `sessiond.spill` fault point.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use phoenix_obs::{journal, registry, Counter, EventKind, Gauge};
use phoenix_storage::codec::{get_row, get_str, get_table_def, put_row, put_str, put_table_def};
use phoenix_storage::store::Store;
use phoenix_storage::store::StoreSnapshot;
use phoenix_storage::types::{Column, DataType, RowId, Schema, TableDef, Value};

use crate::cursor::Cursor;
use crate::engine::{Engine, SessionEntry};
use crate::error::{EngineError, ErrorCode, Result};
use crate::exec::CatalogView;
use crate::metrics::engine_metrics;
use crate::session::{SessionId, SessionState};

/// The durable table spilled sessions live in.
pub const SPILL_TABLE: &str = "phoenix.sessiond_spill";

/// What the engine remembers about a spilled session (everything else is in
/// the durable row).
pub struct SpilledInfo {
    /// Login user, kept for observability without deserializing the row.
    pub user: String,
}

/// Metric handles for the session lifecycle manager.
pub struct SessiondMetrics {
    /// Sessions spilled to the durable table (`phoenix_sessiond_spilled_total`).
    pub spilled_total: Arc<Counter>,
    /// Spilled sessions transparently restored
    /// (`phoenix_sessiond_restored_total`).
    pub restored_total: Arc<Counter>,
    /// Spills forced by the `max_sessions` cap
    /// (`phoenix_sessiond_evicted_total`).
    pub evicted_total: Arc<Counter>,
    /// Spill rows discarded by the retention window or session close
    /// (`phoenix_sessiond_purged_total`).
    pub purged_total: Arc<Counter>,
    /// Logins/requests refused with a retryable Busy
    /// (`phoenix_sessiond_busy_total`).
    pub busy_total: Arc<Counter>,
    /// Sessions currently spilled (`phoenix_sessiond_spilled_sessions`).
    pub spilled_sessions: Arc<Gauge>,
    /// Serialized payload bytes written by spills
    /// (`phoenix_sessiond_spill_bytes_total`).
    pub spill_bytes: Arc<Counter>,
    /// Cleanup-job passes completed (`phoenix_sessiond_cleanup_runs_total`).
    pub cleanup_runs: Arc<Counter>,
}

/// The lifecycle metric set, registered on first use.
pub fn sessiond_metrics() -> &'static SessiondMetrics {
    static M: OnceLock<SessiondMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        SessiondMetrics {
            spilled_total: r.counter(
                "phoenix_sessiond_spilled_total",
                "sessions spilled to the durable spill table",
            ),
            restored_total: r.counter(
                "phoenix_sessiond_restored_total",
                "spilled sessions transparently restored",
            ),
            evicted_total: r.counter(
                "phoenix_sessiond_evicted_total",
                "spills forced by the max_sessions cap",
            ),
            purged_total: r.counter(
                "phoenix_sessiond_purged_total",
                "spill rows discarded (retention window or session close)",
            ),
            busy_total: r.counter(
                "phoenix_sessiond_busy_total",
                "requests refused with retryable Busy (cap or admission)",
            ),
            spilled_sessions: r.gauge(
                "phoenix_sessiond_spilled_sessions",
                "sessions currently spilled",
            ),
            spill_bytes: r.counter(
                "phoenix_sessiond_spill_bytes_total",
                "serialized payload bytes written by spills",
            ),
            cleanup_runs: r.counter(
                "phoenix_sessiond_cleanup_runs_total",
                "lifecycle cleanup-job passes completed",
            ),
        }
    })
}

fn unix_secs() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

fn busy(msg: impl Into<String>) -> EngineError {
    EngineError::new(ErrorCode::Busy, msg)
}

// -- payload serialization ---------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(EngineError::new(
            ErrorCode::Storage,
            "session spill: truncated payload",
        ));
    }
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    *buf = &buf[8..];
    Ok(v)
}

fn codec_err(e: phoenix_storage::codec::DecodeError) -> EngineError {
    EngineError::new(ErrorCode::Storage, format!("session spill: {e}"))
}

fn encode_session(state: &SessionState) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    put_str(&mut buf, &state.user);
    put_u64(&mut buf, state.rowcount);

    put_u64(&mut buf, state.options.len() as u64);
    for (name, value) in &state.options {
        put_str(&mut buf, name);
        put_row(&mut buf, &vec![value.clone()]);
    }

    // Temp tables, in deterministic name order; rows in row-id (scan) order
    // so restored scan order matches.
    let mut names = state.temp.table_names();
    names.sort();
    put_u64(&mut buf, names.len() as u64);
    for name in &names {
        let t = state.temp.table(name).expect("listed temp table exists");
        put_table_def(&mut buf, &t.def);
        let mut rids: Vec<RowId> = t.rows.keys().copied().collect();
        rids.sort_unstable();
        put_u64(&mut buf, rids.len() as u64);
        for rid in rids {
            put_row(&mut buf, &t.rows[&rid]);
        }
    }

    let mut procs: Vec<(String, String)> = state
        .temp
        .procs()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    procs.sort();
    put_u64(&mut buf, procs.len() as u64);
    for (name, sql) in &procs {
        put_str(&mut buf, name);
        put_str(&mut buf, sql);
    }

    // Cursors, length-prefixed so decode can slice each one exactly.
    let mut cids: Vec<u64> = state.cursors.keys().copied().collect();
    cids.sort_unstable();
    put_u64(&mut buf, cids.len() as u64);
    for cid in cids {
        let mut cbuf = Vec::new();
        state.cursors[&cid].spill_encode(&mut cbuf);
        put_u64(&mut buf, cbuf.len() as u64);
        buf.extend_from_slice(&cbuf);
    }
    buf
}

fn decode_session(sid: SessionId, bytes: &[u8], snap: &StoreSnapshot) -> Result<SessionState> {
    let mut buf: &[u8] = bytes;
    let user = get_str(&mut buf).map_err(codec_err)?;
    let rowcount = get_u64(&mut buf)?;

    let nopts = get_u64(&mut buf)? as usize;
    let mut options = Vec::with_capacity(nopts.min(1 << 12));
    for _ in 0..nopts {
        let name = get_str(&mut buf).map_err(codec_err)?;
        let mut row = get_row(&mut buf).map_err(codec_err)?;
        let value = row.pop().unwrap_or(Value::Null);
        options.push((name, value));
    }

    let mut temp = Store::new();
    let ntables = get_u64(&mut buf)? as usize;
    for _ in 0..ntables {
        let def = get_table_def(&mut buf).map_err(codec_err)?;
        let name = def.name.clone();
        temp.create_table(def)?;
        let nrows = get_u64(&mut buf)? as usize;
        let t = temp.table_mut(&name)?;
        for _ in 0..nrows {
            t.insert(get_row(&mut buf).map_err(codec_err)?)?;
        }
    }
    let nprocs = get_u64(&mut buf)? as usize;
    for _ in 0..nprocs {
        let name = get_str(&mut buf).map_err(codec_err)?;
        let sql = get_str(&mut buf).map_err(codec_err)?;
        temp.create_proc(&name, &sql)?;
    }

    let mut state = SessionState::new(sid, user);
    state.rowcount = rowcount;
    state.options = options;
    state.temp = temp;

    let ncursors = get_u64(&mut buf)? as usize;
    for _ in 0..ncursors {
        let len = get_u64(&mut buf)? as usize;
        if buf.len() < len {
            return Err(EngineError::new(
                ErrorCode::Storage,
                "session spill: truncated cursor payload",
            ));
        }
        let mut cbuf = &buf[..len];
        buf = &buf[len..];
        let view = CatalogView {
            durable: snap,
            temp: &state.temp,
        };
        let cursor = Cursor::spill_decode(&mut cbuf, &view)?;
        state.cursors.insert(cursor.id, cursor);
    }
    Ok(state)
}

// -- hex (Value::Text carrier for the binary payload) ------------------------

fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return Err(EngineError::new(
            ErrorCode::Storage,
            "session spill: odd-length hex payload",
        ));
    }
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        match (nibble(pair[0]), nibble(pair[1])) {
            (Some(h), Some(l)) => out.push((h << 4) | l),
            _ => {
                return Err(EngineError::new(
                    ErrorCode::Storage,
                    "session spill: invalid hex payload",
                ))
            }
        }
    }
    Ok(out)
}

// -- the lifecycle API -------------------------------------------------------

impl Engine {
    /// This incarnation's spill-key stamp (tests, tooling).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Number of sessions currently spilled to the durable table.
    pub fn spilled_session_count(&self) -> usize {
        self.spilled.lock().len()
    }

    /// Open a session for `user`, honoring the `max_sessions` cap: at the
    /// cap, the least-recently-active idle session is spilled to make room;
    /// if nothing is spillable the caller gets a retryable
    /// [`ErrorCode::Busy`].
    pub fn try_create_session(&self, user: &str) -> Result<SessionId> {
        let _gate = self.stall_gate.read();
        let Some(cap) = self.config.max_sessions else {
            return Ok(self.install_session(user));
        };
        // The cap check and the insert happen under one catalog write lock,
        // so concurrent logins cannot all pass a stale check and push the
        // resident count past the cap. Each round that finds the catalog
        // full spills one victim and retries; the loop is bounded because a
        // racing login can steal the slot we just freed.
        for _ in 0..8 {
            {
                let mut sessions = self.sessions.write();
                if sessions.len() < cap {
                    return Ok(self.install_session_locked(&mut sessions, user));
                }
            }
            let mut candidates: Vec<(u64, SessionId)> = self
                .sessions
                .read()
                .iter()
                .map(|(id, e)| (e.last_active.load(Ordering::Relaxed), *id))
                .collect();
            candidates.sort_unstable();
            let mut evicted = false;
            for (_, sid) in candidates {
                if self.spill_session_inner(sid, None).is_ok() {
                    sessiond_metrics().evicted_total.inc();
                    evicted = true;
                    break;
                }
            }
            if !evicted {
                break;
            }
        }
        // Nothing was spillable (or we kept losing the race) — one last
        // atomic check in case a concurrent close freed a slot.
        {
            let mut sessions = self.sessions.write();
            if sessions.len() < cap {
                return Ok(self.install_session_locked(&mut sessions, user));
            }
        }
        sessiond_metrics().busy_total.inc();
        Err(busy(format!(
            "session limit {cap} reached and no session is idle; retry"
        )))
    }

    /// Spill session `sid`'s volatile state to the durable spill table and
    /// release its engine memory. Fails with [`ErrorCode::Busy`] if the
    /// session has a statement in flight or an open transaction (spilling
    /// mid-transaction would detach the txn from its owner).
    pub fn spill_session(&self, sid: SessionId) -> Result<()> {
        let _gate = self.stall_gate.read();
        self.spill_session_inner(sid, None).map(|_| ())
    }

    fn spill_session_inner(&self, sid: SessionId, idle_cutoff: Option<u64>) -> Result<usize> {
        // Lock order: spilled index, then session catalog (matches restore).
        let mut spilled = self.spilled.lock();
        let mut sessions = self.sessions.write();
        let entry = sessions
            .get(&sid)
            .cloned()
            .ok_or_else(|| EngineError::new(ErrorCode::NoSession, format!("no session {sid}")))?;
        // Re-validate idleness under the catalog lock: the victim was picked
        // from an unlocked scan and may have been touched since. (`touch`
        // happens under the catalog read lock, so it cannot interleave with
        // this check.)
        if let Some(cutoff) = idle_cutoff {
            if entry.last_active.load(Ordering::Relaxed) > cutoff {
                return Err(busy(format!("session {sid} is no longer idle")));
            }
        }
        let mut state = entry
            .state
            .try_lock()
            .ok_or_else(|| busy(format!("session {sid} has a statement in flight")))?;
        if state.txn.is_some() {
            return Err(busy(format!("session {sid} has an open transaction")));
        }
        // Chaos point: a crash injected here costs nothing — the session is
        // still fully resident and no durable byte has been written.
        phoenix_chaos::check_durable("sessiond.spill")
            .map_err(|e| EngineError::new(ErrorCode::Storage, e.to_string()))?;

        let payload = encode_session(&state);
        let bytes = payload.len();
        let user = state.user.clone();
        let temp_tables = state.temp.tables().count() as i64;
        self.ensure_spill_table()?;
        let key = [Value::Int(self.incarnation as i64), Value::Int(sid as i64)];
        let row = vec![
            Value::Int(self.incarnation as i64),
            Value::Int(sid as i64),
            Value::Int(unix_secs()),
            Value::Text(user.clone()),
            Value::Text(hex_encode(&payload)),
        ];
        let txn = self.durable.begin()?;
        let write = (|| -> Result<()> {
            // Upsert: a session can be spilled more than once per lifetime.
            if let Ok(data) = self.durable.snapshot().table(SPILL_TABLE) {
                if let Some(rid) = data.row_id_by_key(&key) {
                    self.durable.delete(txn, SPILL_TABLE, rid)?;
                }
            }
            self.durable.insert(txn, SPILL_TABLE, row)?;
            Ok(())
        })();
        match write {
            Ok(()) => self.durable.commit(txn)?,
            Err(e) => {
                let _ = self.durable.abort(txn);
                return Err(e);
            }
        }
        // Tombstone, set while we still hold the state mutex: a request
        // thread that cloned the catalog entry before this spill will see it
        // after acquiring the lock and retry its lookup (restoring the
        // durable row we just wrote) instead of executing against an orphan.
        state.spilled_out = true;
        drop(state);
        sessions.remove(&sid);
        spilled.insert(sid, SpilledInfo { user });
        let m = sessiond_metrics();
        m.spilled_total.inc();
        m.spilled_sessions.inc();
        m.spill_bytes.add(bytes as u64);
        let em = engine_metrics();
        em.sessions_active.dec();
        em.temp_tables.add(-temp_tables);
        journal().record(
            "sessiond",
            EventKind::ServerLifecycle,
            format!("spill sid={sid} bytes={bytes}"),
        );
        Ok(bytes)
    }

    /// Restore a spilled session into engine memory (the transparent half of
    /// the lifecycle contract; called from the session lookup on a miss).
    pub(crate) fn restore_session(&self, sid: SessionId) -> Result<Arc<SessionEntry>> {
        let mut spilled = self.spilled.lock();
        // A racing restore may have beaten us to the index lock.
        if let Some(entry) = self.sessions.read().get(&sid).cloned() {
            entry.touch();
            return Ok(entry);
        }
        if !spilled.contains_key(&sid) {
            return Err(EngineError::new(
                ErrorCode::NoSession,
                format!("no session {sid}"),
            ));
        }
        let snap = self.durable.snapshot();
        let key = [Value::Int(self.incarnation as i64), Value::Int(sid as i64)];
        let data = snap.table(SPILL_TABLE).map_err(|_| {
            EngineError::internal(format!("session {sid} indexed as spilled, table missing"))
        })?;
        let rid = data.row_id_by_key(&key).ok_or_else(|| {
            EngineError::internal(format!("session {sid} indexed as spilled, row missing"))
        })?;
        let payload = match &data.rows[&rid][4] {
            Value::Text(hex) => hex_decode(hex)?,
            other => {
                return Err(EngineError::internal(format!(
                    "spill payload for session {sid} is {other:?}, not text"
                )))
            }
        };
        let state = decode_session(sid, &payload, &snap)?;
        let temp_tables = state.temp.tables().count() as i64;
        // The row is consumed by the restore: delete it before going live so
        // a later crash can't resurrect a second copy of this state.
        let txn = self.durable.begin()?;
        match self.durable.delete(txn, SPILL_TABLE, rid) {
            Ok(_) => self.durable.commit(txn)?,
            Err(e) => {
                let _ = self.durable.abort(txn);
                return Err(e.into());
            }
        }
        let entry = Arc::new(SessionEntry::new(state));
        self.sessions.write().insert(sid, entry.clone());
        spilled.remove(&sid);
        let m = sessiond_metrics();
        m.restored_total.inc();
        m.spilled_sessions.dec();
        let em = engine_metrics();
        em.sessions_active.inc();
        em.temp_tables.add(temp_tables);
        journal().record(
            "sessiond",
            EventKind::ServerLifecycle,
            format!("restore sid={sid}"),
        );
        Ok(entry)
    }

    /// Close a session that is currently spilled: discard its durable row.
    pub(crate) fn close_spilled_session(&self, sid: SessionId) -> Result<()> {
        let mut spilled = self.spilled.lock();
        if spilled.remove(&sid).is_none() {
            return Err(EngineError::new(
                ErrorCode::NoSession,
                format!("no session {sid}"),
            ));
        }
        sessiond_metrics().spilled_sessions.dec();
        let key = [Value::Int(self.incarnation as i64), Value::Int(sid as i64)];
        if let Ok(data) = self.durable.snapshot().table(SPILL_TABLE) {
            if let Some(rid) = data.row_id_by_key(&key) {
                let txn = self.durable.begin()?;
                match self.durable.delete(txn, SPILL_TABLE, rid) {
                    Ok(_) => self.durable.commit(txn)?,
                    Err(e) => {
                        let _ = self.durable.abort(txn);
                        return Err(e.into());
                    }
                }
                sessiond_metrics().purged_total.inc();
            }
        }
        journal().record(
            "sessiond",
            EventKind::ServerLifecycle,
            format!("close-spilled sid={sid}"),
        );
        Ok(())
    }

    /// Spill every session idle for at least `idle_for` (no statement in the
    /// window, no open transaction). Returns how many were spilled. The
    /// periodic cleanup job calls this.
    pub fn spill_idle_sessions(&self, idle_for: Duration) -> usize {
        let _gate = self.stall_gate.read();
        let now = phoenix_obs::now_us();
        let cutoff = now.saturating_sub(idle_for.as_micros() as u64);
        let mut victims: Vec<SessionId> = self
            .sessions
            .read()
            .iter()
            .filter(|(_, e)| e.last_active.load(Ordering::Relaxed) <= cutoff)
            .map(|(id, _)| *id)
            .collect();
        // Session-id order, not map order: the chaos explorer relies on the
        // `sessiond.spill` visit sequence being a pure function of the
        // workload.
        victims.sort_unstable();
        let mut spilled = 0;
        for sid in victims {
            // The cutoff travels with the spill so idleness is re-verified
            // under the catalog lock — a session touched after this scan is
            // skipped, not spilled mid-request.
            if self.spill_session_inner(sid, Some(cutoff)).is_ok() {
                spilled += 1;
            }
        }
        spilled
    }

    /// Discard spill rows older than `retention` — including rows stranded
    /// by previous incarnations, which is how crashed-and-abandoned session
    /// state is garbage-collected. Returns how many rows were purged.
    pub fn purge_spilled(&self, retention: Duration) -> usize {
        let _gate = self.stall_gate.read();
        let now = unix_secs();
        let snap = self.durable.snapshot();
        let Ok(data) = snap.table(SPILL_TABLE) else {
            return 0;
        };
        let victims: Vec<(RowId, i64, i64)> = data
            .rows
            .iter()
            .filter_map(|(rid, row)| match (&row[0], &row[1], &row[2]) {
                (Value::Int(inc), Value::Int(sid), Value::Int(saved_at)) => {
                    let expired = saved_at.saturating_add(retention.as_secs() as i64) <= now;
                    expired.then_some((*rid, *inc, *sid))
                }
                _ => None,
            })
            .collect();
        if victims.is_empty() {
            return 0;
        }
        let mut spilled = self.spilled.lock();
        let txn = match self.durable.begin() {
            Ok(t) => t,
            Err(_) => return 0,
        };
        let mut purged = 0;
        for (rid, _, _) in &victims {
            if self.durable.delete(txn, SPILL_TABLE, *rid).is_ok() {
                purged += 1;
            }
        }
        if self.durable.commit(txn).is_err() {
            return 0;
        }
        for (_, inc, sid) in &victims {
            if *inc == self.incarnation as i64 && spilled.remove(&(*sid as u64)).is_some() {
                sessiond_metrics().spilled_sessions.dec();
            }
        }
        sessiond_metrics().purged_total.add(purged as u64);
        journal().record(
            "sessiond",
            EventKind::ServerLifecycle,
            format!("purge rows={purged}"),
        );
        purged as usize
    }

    fn ensure_spill_table(&self) -> Result<()> {
        if self.durable.snapshot().has_table(SPILL_TABLE) {
            return Ok(());
        }
        let def = TableDef::new(
            SPILL_TABLE,
            Schema::new(vec![
                Column::new("inc", DataType::Int).not_null(),
                Column::new("sid", DataType::Int).not_null(),
                Column::new("saved_at", DataType::Int).not_null(),
                Column::new("usr", DataType::Text).not_null(),
                Column::new("payload", DataType::Text).not_null(),
            ]),
        )
        .with_primary_key(vec![0, 1]);
        let txn = self.durable.begin()?;
        match self.durable.create_table(txn, def) {
            Ok(()) => {
                self.durable.commit(txn)?;
                Ok(())
            }
            Err(e) => {
                let _ = self.durable.abort(txn);
                let e: EngineError = e.into();
                // Raced another creator: fine, the table exists.
                if e.code == ErrorCode::AlreadyExists {
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }
}
