#![warn(missing_docs)]

//! # phoenix-engine
//!
//! The SQL database server engine beneath Phoenix: the substrate the paper's
//! prototype ran against a commercial DBMS, rebuilt here from scratch.
//!
//! Architecture (bottom-up):
//!
//! * [`error`] — the engine error model (SQLSTATE-like codes that travel the
//!   wire to the driver).
//! * [`eval`] — scalar expression evaluation with SQL three-valued logic,
//!   `LIKE` matching, scalar functions, and static type inference (which is
//!   what answers Phoenix's `WHERE 0=1` metadata probe with zero rows).
//! * [`plan`] — SELECT execution: conjunct-driven hash-join planning over
//!   multi-table FROM lists, grouped aggregation, HAVING, ORDER BY,
//!   LIMIT/OFFSET.
//! * [`exec`] — DML and DDL execution against durable and session-temporary
//!   state.
//! * [`cursor`] — server cursors: materialized forward-only, *keyset* (key
//!   snapshot at open, rows re-fetched by key) and *dynamic* (predicate
//!   re-evaluated per fetch over primary-key ranges) — the two cursor kinds
//!   §3 of the paper treats specially.
//! * [`session`] — per-session volatile state: temp tables and procedures,
//!   connection options, the open transaction, open cursors. Everything in
//!   a session dies with the server process; that is the contract Phoenix is
//!   built to mask.
//! * [`engine`] — the facade the server exposes: create/close sessions,
//!   execute statements, open/fetch/close cursors, checkpoint.
//!
//! Durability is delegated to [`phoenix_storage`]: base-table mutations are
//! WAL-logged and commit-forced; recovery on restart replays committed work.
//! Scan order of a base table is insertion (row-id) order, which is the
//! documented substitute for the paper's reliance on stable result-table
//! ordering (see DESIGN.md §5).

pub mod cursor;
pub mod engine;
pub mod error;
pub mod eval;
pub mod exec;
pub mod metrics;
pub mod plan;
pub mod session;
pub mod spill;

pub use cursor::{CursorId, CursorKind, FetchDir};
pub use engine::{
    read_epoch, write_epoch, CommitMode, Engine, EngineConfig, ExecOutcome, ExecResult,
};
pub use error::{EngineError, ErrorCode};
pub use session::SessionId;
