//! Server cursors.
//!
//! Three kinds, mirroring the ODBC cursor taxonomy the paper works through:
//!
//! * **Materialized** (forward-only/static): the full result is computed at
//!   open and blocks are served from the snapshot. This is also the fallback
//!   when a keyset/dynamic request can't be honored (no primary key,
//!   multi-table query), matching real drivers' silent cursor downgrading.
//! * **Keyset**: the set of qualifying *primary keys* is captured at open;
//!   each fetch re-reads current row data by key. Rows deleted since open are
//!   skipped; updates are visible — §3's keyset semantics.
//! * **Dynamic**: only a position (last key seen) is kept; each fetch
//!   re-evaluates the predicate over the primary-key order starting after
//!   that key, so inserts and deletes are visible as they happen — §3's
//!   dynamic semantics.

use std::ops::Bound;

use phoenix_sql::ast::{Expr, ObjectName, SelectItem, SelectStmt};
use phoenix_storage::types::{Row, Schema, Value};

use crate::error::{EngineError, ErrorCode, Result};
use crate::eval::{eval, truth, BoundColumn, Env};
use crate::plan::{execute_select, Catalog};

/// Cursor identifier, unique within a server incarnation.
pub type CursorId = u64;

/// The cursor kind requested by the client at statement-open time (the ODBC
/// statement attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorKind {
    /// Materialized at open; forward-only block delivery.
    ForwardOnly,
    /// Key membership fixed at open; rows re-read by key.
    Keyset,
    /// Predicate re-evaluated per fetch over primary-key order.
    Dynamic,
}

/// Fetch orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchDir {
    /// The next `n` rows.
    Next,
    /// The previous `n` rows (scrollable kinds only).
    Prior,
    /// Position so the fetch returns rows starting at 0-based row `k`
    /// (materialized and keyset cursors only — dynamic cursors have no
    /// stable numbering, as in ODBC).
    Absolute(u64),
}

/// An open server cursor.
pub struct Cursor {
    /// The cursor's handle.
    pub id: CursorId,
    /// Result metadata.
    pub schema: Schema,
    /// The kind actually granted (may be a downgrade from the request).
    pub kind: CursorKind,
    /// The SELECT this cursor was opened over, rendered back to SQL. Dynamic
    /// cursors are rebuilt from this text when a spilled session is restored.
    select_sql: String,
    state: State,
}

enum State {
    Materialized {
        rows: Vec<Row>,
        pos: usize,
    },
    Keyset {
        table: ObjectName,
        /// Qualifying primary keys captured at open, in result order.
        keys: Vec<Vec<Value>>,
        pos: usize,
        /// Output projection: indices into the table's columns.
        projection: Vec<usize>,
    },
    Dynamic {
        table: ObjectName,
        predicate: Option<Expr>,
        columns: Vec<BoundColumn>,
        projection: Vec<usize>,
        /// Key of the last row delivered; `None` before the first fetch.
        last_key: Option<Vec<Value>>,
    },
}

/// Outcome of a fetch: the rows plus whether the cursor reached the end in
/// this direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fetched {
    /// The fetched rows (possibly fewer than requested).
    pub rows: Vec<Row>,
    /// No more rows in this direction?
    pub at_end: bool,
}

impl Cursor {
    /// Open a cursor over `select`. `requested` may be downgraded (see
    /// module docs); the granted kind is recorded on the cursor.
    pub fn open(
        id: CursorId,
        select: &SelectStmt,
        requested: CursorKind,
        catalog: &dyn Catalog,
    ) -> Result<Cursor> {
        match requested {
            CursorKind::ForwardOnly => Self::open_materialized(id, select, catalog),
            CursorKind::Keyset | CursorKind::Dynamic => {
                match keyed_single_table(select, catalog, requested == CursorKind::Keyset)? {
                    Some((table, projection, columns, key_idx)) => {
                        if requested == CursorKind::Keyset {
                            Self::open_keyset(id, select, catalog, table, projection, key_idx)
                        } else {
                            Self::open_dynamic(id, select, catalog, table, projection, columns)
                        }
                    }
                    // Downgrade: no key or unsupported shape.
                    None => Self::open_materialized(id, select, catalog),
                }
            }
        }
    }

    fn open_materialized(
        id: CursorId,
        select: &SelectStmt,
        catalog: &dyn Catalog,
    ) -> Result<Cursor> {
        let rs = execute_select(select, catalog, None)?;
        Ok(Cursor {
            id,
            schema: rs.schema,
            kind: CursorKind::ForwardOnly,
            select_sql: render_select(select),
            state: State::Materialized {
                rows: rs.rows,
                pos: 0,
            },
        })
    }

    fn open_keyset(
        id: CursorId,
        select: &SelectStmt,
        catalog: &dyn Catalog,
        table: ObjectName,
        projection: Vec<usize>,
        key_idx: Vec<usize>,
    ) -> Result<Cursor> {
        // Capture qualifying keys in the query's own order by rewriting the
        // projection to the key columns.
        let data = catalog.table(&table)?;
        let key_names: Vec<String> = key_idx
            .iter()
            .map(|&i| data.def.schema.columns[i].name.clone())
            .collect();
        let schema = projected_schema(data, &projection);
        let key_select = phoenix_sql::rewrite::with_projections(select.clone(), &key_names);
        let rs = execute_select(&key_select, catalog, None)?;
        Ok(Cursor {
            id,
            schema,
            kind: CursorKind::Keyset,
            select_sql: render_select(select),
            state: State::Keyset {
                table,
                keys: rs.rows,
                pos: 0,
                projection,
            },
        })
    }

    fn open_dynamic(
        id: CursorId,
        select: &SelectStmt,
        catalog: &dyn Catalog,
        table: ObjectName,
        projection: Vec<usize>,
        columns: Vec<BoundColumn>,
    ) -> Result<Cursor> {
        let data = catalog.table(&table)?;
        let schema = projected_schema(data, &projection);
        Ok(Cursor {
            id,
            schema,
            kind: CursorKind::Dynamic,
            select_sql: render_select(select),
            state: State::Dynamic {
                table,
                predicate: select.where_clause.clone(),
                columns,
                projection,
                last_key: None,
            },
        })
    }

    /// Current (0-based) position for materialized/keyset cursors; used by
    /// Phoenix to remember where delivery was interrupted.
    pub fn position(&self) -> Option<u64> {
        match &self.state {
            State::Materialized { pos, .. } | State::Keyset { pos, .. } => Some(*pos as u64),
            State::Dynamic { .. } => None,
        }
    }

    /// The key of the last row delivered by a dynamic cursor.
    pub fn last_key(&self) -> Option<&[Value]> {
        match &self.state {
            State::Dynamic { last_key, .. } => last_key.as_deref(),
            _ => None,
        }
    }

    /// Fetch up to `n` rows in the given direction.
    pub fn fetch(&mut self, dir: FetchDir, n: usize, catalog: &dyn Catalog) -> Result<Fetched> {
        match &mut self.state {
            State::Materialized { rows, pos } => match dir {
                FetchDir::Next => {
                    let start = *pos;
                    let end = (start + n).min(rows.len());
                    *pos = end;
                    Ok(Fetched {
                        rows: rows[start..end].to_vec(),
                        at_end: end >= rows.len(),
                    })
                }
                FetchDir::Prior => {
                    let end = *pos;
                    let start = end.saturating_sub(n);
                    *pos = start;
                    Ok(Fetched {
                        rows: rows[start..end].to_vec(),
                        at_end: start == 0,
                    })
                }
                FetchDir::Absolute(k) => {
                    *pos = (k as usize).min(rows.len());
                    let start = *pos;
                    let end = (start + n).min(rows.len());
                    *pos = end;
                    Ok(Fetched {
                        rows: rows[start..end].to_vec(),
                        at_end: end >= rows.len(),
                    })
                }
            },
            State::Keyset {
                table,
                keys,
                pos,
                projection,
            } => {
                let data = catalog.table(table)?;
                let mut out = Vec::with_capacity(n);
                match dir {
                    FetchDir::Next | FetchDir::Absolute(_) => {
                        if let FetchDir::Absolute(k) = dir {
                            *pos = (k as usize).min(keys.len());
                        }
                        while out.len() < n && *pos < keys.len() {
                            let key = &keys[*pos];
                            *pos += 1;
                            // Deleted rows are skipped; updated rows return
                            // current data (keyset semantics).
                            if let Some(rid) = data.row_id_by_key(key) {
                                let row = &data.rows[&rid];
                                out.push(projection.iter().map(|&i| row[i].clone()).collect());
                            }
                        }
                        Ok(Fetched {
                            at_end: *pos >= keys.len(),
                            rows: out,
                        })
                    }
                    FetchDir::Prior => {
                        while out.len() < n && *pos > 0 {
                            *pos -= 1;
                            let key = &keys[*pos];
                            if let Some(rid) = data.row_id_by_key(key) {
                                let row = &data.rows[&rid];
                                out.push(projection.iter().map(|&i| row[i].clone()).collect());
                            }
                        }
                        out.reverse();
                        Ok(Fetched {
                            at_end: *pos == 0,
                            rows: out,
                        })
                    }
                }
            }
            State::Dynamic {
                table,
                predicate,
                columns,
                projection,
                last_key,
            } => {
                let data = catalog.table(table)?;
                let mut out = Vec::with_capacity(n);
                match dir {
                    FetchDir::Next => {
                        let lower = match last_key.clone() {
                            Some(k) => Bound::Excluded(k),
                            None => Bound::Unbounded,
                        };
                        for (key, rid) in data.pk_index.range((lower, Bound::Unbounded)) {
                            let row = &data.rows[rid];
                            if row_passes(predicate.as_ref(), columns, row)? {
                                out.push(projection.iter().map(|&i| row[i].clone()).collect());
                                *last_key = Some(key.clone());
                                if out.len() == n {
                                    break;
                                }
                            }
                        }
                        Ok(Fetched {
                            at_end: out.len() < n,
                            rows: out,
                        })
                    }
                    FetchDir::Prior => {
                        let upper = match last_key.clone() {
                            Some(k) => Bound::Excluded(k),
                            None => {
                                return Ok(Fetched {
                                    rows: Vec::new(),
                                    at_end: true,
                                })
                            }
                        };
                        for (key, rid) in data.pk_index.range((Bound::Unbounded, upper)).rev() {
                            let row = &data.rows[rid];
                            if row_passes(predicate.as_ref(), columns, row)? {
                                out.push(projection.iter().map(|&i| row[i].clone()).collect());
                                *last_key = Some(key.clone());
                                if out.len() == n {
                                    break;
                                }
                            }
                        }
                        let at_end = out.len() < n;
                        out.reverse();
                        Ok(Fetched { rows: out, at_end })
                    }
                    FetchDir::Absolute(_) => Err(EngineError::new(
                        ErrorCode::Cursor,
                        "dynamic cursors do not support absolute positioning",
                    )),
                }
            }
        }
    }
}

// -- spill serialization -----------------------------------------------------
//
// A spilled session writes its open cursors into the durable
// `phoenix.sessiond_spill` payload. Materialized and keyset cursors are
// position-exact: their captured rows / keys and the delivery position are
// serialized verbatim, so restore continues from the same row with the same
// membership. Dynamic cursors carry no captured set by design — they are
// rebuilt from the rendered SELECT text against the *current* catalog, and
// the last-delivered key is re-seeded so the next FETCH NEXT resumes after
// it (exactly the paper's §3 dynamic-cursor recovery contract).

const SPILL_MATERIALIZED: u8 = 0;
const SPILL_KEYSET: u8 = 1;
const SPILL_DYNAMIC: u8 = 2;

use phoenix_storage::codec::{
    get_row, get_schema, get_str, put_row, put_schema, put_str, DecodeError,
};

fn spill_err(e: DecodeError) -> EngineError {
    EngineError::new(ErrorCode::Storage, format!("cursor spill: {e}"))
}

fn need(buf: &[u8], n: usize) -> Result<()> {
    if buf.len() < n {
        Err(EngineError::new(
            ErrorCode::Storage,
            "cursor spill: truncated payload",
        ))
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    need(buf, 1)?;
    let v = buf[0];
    *buf = &buf[1..];
    Ok(v)
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    need(buf, 8)?;
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    *buf = &buf[8..];
    Ok(v)
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_object_name(buf: &mut Vec<u8>, name: &ObjectName) {
    buf.push(name.namespace.is_some() as u8);
    if let Some(ns) = &name.namespace {
        put_str(buf, ns);
    }
    put_str(buf, &name.name);
}

fn get_object_name(buf: &mut &[u8]) -> Result<ObjectName> {
    let has_ns = get_u8(buf)? != 0;
    let namespace = if has_ns {
        Some(get_str(buf).map_err(spill_err)?)
    } else {
        None
    };
    let name = get_str(buf).map_err(spill_err)?;
    Ok(ObjectName { namespace, name })
}

impl Cursor {
    /// Serialize this cursor into a spill payload.
    pub(crate) fn spill_encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.id);
        put_str(buf, &self.select_sql);
        match &self.state {
            State::Materialized { rows, pos } => {
                buf.push(SPILL_MATERIALIZED);
                put_schema(buf, &self.schema);
                put_u64(buf, *pos as u64);
                put_u64(buf, rows.len() as u64);
                for row in rows {
                    put_row(buf, row);
                }
            }
            State::Keyset {
                table,
                keys,
                pos,
                projection,
            } => {
                buf.push(SPILL_KEYSET);
                put_schema(buf, &self.schema);
                put_object_name(buf, table);
                put_u64(buf, *pos as u64);
                put_u64(buf, keys.len() as u64);
                for key in keys {
                    put_row(buf, key);
                }
                put_u64(buf, projection.len() as u64);
                for &i in projection {
                    put_u64(buf, i as u64);
                }
            }
            State::Dynamic { last_key, .. } => {
                buf.push(SPILL_DYNAMIC);
                buf.push(last_key.is_some() as u8);
                if let Some(k) = last_key {
                    put_row(buf, k);
                }
            }
        }
    }

    /// Rebuild a cursor from a spill payload. Needs the catalog because
    /// dynamic cursors are re-opened against the current state of the world.
    pub(crate) fn spill_decode(buf: &mut &[u8], catalog: &dyn Catalog) -> Result<Cursor> {
        let id = get_u64(buf)?;
        let select_sql = get_str(buf).map_err(spill_err)?;
        match get_u8(buf)? {
            SPILL_MATERIALIZED => {
                let schema = get_schema(buf).map_err(spill_err)?;
                let pos = get_u64(buf)? as usize;
                let n = get_u64(buf)? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    rows.push(get_row(buf).map_err(spill_err)?);
                }
                Ok(Cursor {
                    id,
                    schema,
                    kind: CursorKind::ForwardOnly,
                    select_sql,
                    state: State::Materialized { rows, pos },
                })
            }
            SPILL_KEYSET => {
                let schema = get_schema(buf).map_err(spill_err)?;
                let table = get_object_name(buf)?;
                let pos = get_u64(buf)? as usize;
                let n = get_u64(buf)? as usize;
                let mut keys = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    keys.push(get_row(buf).map_err(spill_err)?);
                }
                let np = get_u64(buf)? as usize;
                let mut projection = Vec::with_capacity(np.min(1 << 16));
                for _ in 0..np {
                    projection.push(get_u64(buf)? as usize);
                }
                Ok(Cursor {
                    id,
                    schema,
                    kind: CursorKind::Keyset,
                    select_sql,
                    state: State::Keyset {
                        table,
                        keys,
                        pos,
                        projection,
                    },
                })
            }
            SPILL_DYNAMIC => {
                let last_key = if get_u8(buf)? != 0 {
                    Some(get_row(buf).map_err(spill_err)?)
                } else {
                    None
                };
                let select = match phoenix_sql::parser::parse_statement(&select_sql)? {
                    phoenix_sql::ast::Statement::Select(s) => s,
                    _ => {
                        return Err(EngineError::internal(
                            "spilled dynamic cursor text is not a SELECT",
                        ))
                    }
                };
                let mut cursor = Cursor::open(id, &select, CursorKind::Dynamic, catalog)?;
                if cursor.kind != CursorKind::Dynamic {
                    return Err(EngineError::new(
                        ErrorCode::Cursor,
                        "spilled dynamic cursor no longer qualifies (table or key changed)",
                    ));
                }
                if let State::Dynamic { last_key: slot, .. } = &mut cursor.state {
                    *slot = last_key;
                }
                Ok(cursor)
            }
            other => Err(EngineError::new(
                ErrorCode::Storage,
                format!("cursor spill: unknown state tag {other}"),
            )),
        }
    }
}

fn render_select(select: &SelectStmt) -> String {
    phoenix_sql::display::render_statement(&phoenix_sql::ast::Statement::Select(select.clone()))
}

fn row_passes(pred: Option<&Expr>, columns: &[BoundColumn], row: &Row) -> Result<bool> {
    match pred {
        None => Ok(true),
        Some(p) => {
            let env = Env::new(columns, row);
            Ok(truth(&eval(p, &env)?)? == Some(true))
        }
    }
}

fn projected_schema(data: &phoenix_storage::store::TableData, projection: &[usize]) -> Schema {
    Schema::new(
        projection
            .iter()
            .map(|&i| data.def.schema.columns[i].clone())
            .collect(),
    )
}

/// Check whether `select` has the shape keyset/dynamic cursors support:
/// single table with a primary key, plain column projection (or `*`), no
/// grouping/aggregation/limit. Returns the table, output projection
/// (column indices), bound columns, and the key column indices.
///
/// ORDER BY is allowed only when `allow_order` is set (keyset requests):
/// the keyset captures qualifying keys in the query's own order — with a
/// secondary index on the sort column the planner serves that order by an
/// index walk, and restore replays the captured sequence position-exact.
/// Dynamic cursors walk primary-key order by construction, so any ORDER BY
/// still downgrades them.
#[allow(clippy::type_complexity)]
fn keyed_single_table(
    select: &SelectStmt,
    catalog: &dyn Catalog,
    allow_order: bool,
) -> Result<Option<(ObjectName, Vec<usize>, Vec<BoundColumn>, Vec<usize>)>> {
    if select.from.len() != 1
        || select.distinct
        || !select.group_by.is_empty()
        || select.having.is_some()
        || select.limit.is_some()
        || select.offset.is_some()
    {
        return Ok(None);
    }
    match select.order_by.as_slice() {
        [] => {}
        [item] if allow_order && matches!(&item.expr, Expr::Column { .. }) => {}
        _ => return Ok(None),
    }
    let item = &select.from[0];
    let data = catalog.table(&item.table)?;
    if !data.def.has_primary_key() {
        return Ok(None);
    }
    let qualifier = item
        .alias
        .clone()
        .unwrap_or_else(|| item.table.name.clone());
    let columns: Vec<BoundColumn> = data
        .def
        .schema
        .columns
        .iter()
        .map(|c| BoundColumn {
            qualifier: Some(qualifier.clone()),
            name: c.name.clone(),
            dtype: c.dtype,
            nullable: c.nullable,
        })
        .collect();

    let mut projection = Vec::new();
    for p in &select.projections {
        match p {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                projection.extend(0..columns.len());
            }
            SelectItem::Expr {
                expr: Expr::Column { table, name },
                ..
            } => {
                let env = Env::new(&columns, &[]);
                match env.resolve(table.as_deref(), name) {
                    Ok(i) => projection.push(i),
                    Err(e) => return Err(e),
                }
            }
            // Computed projections force a downgrade.
            _ => return Ok(None),
        }
    }
    let key_idx = data.def.primary_key.clone();
    Ok(Some((item.table.clone(), projection, columns, key_idx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;
    use phoenix_storage::store::Store;
    use phoenix_storage::types::{Column, DataType, TableDef};

    struct Cat {
        store: Store,
    }

    impl Catalog for Cat {
        fn table(&self, name: &ObjectName) -> Result<&phoenix_storage::store::TableData> {
            self.store
                .table(&name.canonical())
                .map_err(EngineError::from)
        }
    }

    fn cat() -> Cat {
        let mut store = Store::new();
        store
            .create_table(
                TableDef::new(
                    "dbo.orders",
                    Schema::new(vec![
                        Column::new("okey", DataType::Int).not_null(),
                        Column::new("total", DataType::Float),
                    ]),
                )
                .with_primary_key(vec![0]),
            )
            .unwrap();
        let t = store.table_mut("dbo.orders").unwrap();
        for i in 1..=10 {
            t.insert(vec![Value::Int(i), Value::Float(i as f64 * 10.0)])
                .unwrap();
        }
        Cat { store }
    }

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn materialized_forward_and_prior() {
        let c = cat();
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders"),
            CursorKind::ForwardOnly,
            &c,
        )
        .unwrap();
        let f = cur.fetch(FetchDir::Next, 3, &c).unwrap();
        assert_eq!(f.rows.len(), 3);
        assert!(!f.at_end);
        let f = cur.fetch(FetchDir::Prior, 2, &c).unwrap();
        assert_eq!(f.rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
        let f = cur.fetch(FetchDir::Absolute(8), 5, &c).unwrap();
        assert_eq!(f.rows.len(), 2);
        assert!(f.at_end);
    }

    #[test]
    fn keyset_sees_updates_and_skips_deletes() {
        let mut c = cat();
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey, total FROM orders WHERE okey <= 5"),
            CursorKind::Keyset,
            &c,
        )
        .unwrap();
        assert_eq!(cur.kind, CursorKind::Keyset);
        let f = cur.fetch(FetchDir::Next, 2, &c).unwrap();
        assert_eq!(f.rows.len(), 2);

        // Update row 3 and delete row 4 *after* the keyset was captured.
        {
            let t = c.store.table_mut("dbo.orders").unwrap();
            let rid3 = t.row_id_by_key(&[Value::Int(3)]).unwrap();
            t.update(rid3, vec![Value::Int(3), Value::Float(999.0)])
                .unwrap();
            let rid4 = t.row_id_by_key(&[Value::Int(4)]).unwrap();
            t.delete(rid4).unwrap();
        }

        let f = cur.fetch(FetchDir::Next, 3, &c).unwrap();
        // Row 3 shows updated data; row 4 is skipped; row 5 completes.
        assert_eq!(
            f.rows,
            vec![
                vec![Value::Int(3), Value::Float(999.0)],
                vec![Value::Int(5), Value::Float(50.0)],
            ]
        );
        assert!(f.at_end);
    }

    #[test]
    fn keyset_does_not_see_inserts() {
        let mut c = cat();
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders"),
            CursorKind::Keyset,
            &c,
        )
        .unwrap();
        c.store
            .table_mut("dbo.orders")
            .unwrap()
            .insert(vec![Value::Int(99), Value::Float(1.0)])
            .unwrap();
        let mut total = 0;
        loop {
            let f = cur.fetch(FetchDir::Next, 4, &c).unwrap();
            total += f.rows.len();
            if f.at_end {
                break;
            }
        }
        assert_eq!(total, 10); // insert invisible to keyset
    }

    #[test]
    fn dynamic_sees_inserts() {
        let mut c = cat();
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders WHERE total >= 20.0"),
            CursorKind::Dynamic,
            &c,
        )
        .unwrap();
        assert_eq!(cur.kind, CursorKind::Dynamic);
        let f = cur.fetch(FetchDir::Next, 2, &c).unwrap();
        assert_eq!(f.rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);

        // Insert a row *between* the cursor position and the next key.
        // okey=3 was last delivered; nothing between 3 and 4 is possible for
        // ints, so insert at the end and also delete 4 to show dynamism.
        {
            let t = c.store.table_mut("dbo.orders").unwrap();
            t.insert(vec![Value::Int(99), Value::Float(20.0)]).unwrap();
            let rid4 = t.row_id_by_key(&[Value::Int(4)]).unwrap();
            t.delete(rid4).unwrap();
        }

        let mut rest = Vec::new();
        loop {
            let f = cur.fetch(FetchDir::Next, 3, &c).unwrap();
            rest.extend(f.rows);
            if f.at_end {
                break;
            }
        }
        let keys: Vec<i64> = rest.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![5, 6, 7, 8, 9, 10, 99]); // 4 gone, 99 visible
    }

    #[test]
    fn dynamic_prior_walks_backwards() {
        let c = cat();
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders"),
            CursorKind::Dynamic,
            &c,
        )
        .unwrap();
        let f = cur.fetch(FetchDir::Prior, 2, &c).unwrap();
        assert!(f.rows.is_empty()); // before first fetch there is no position
        cur.fetch(FetchDir::Next, 5, &c).unwrap();
        let f = cur.fetch(FetchDir::Prior, 2, &c).unwrap();
        assert_eq!(f.rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
    }

    #[test]
    fn dynamic_rejects_absolute() {
        let c = cat();
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders"),
            CursorKind::Dynamic,
            &c,
        )
        .unwrap();
        let e = cur.fetch(FetchDir::Absolute(3), 1, &c).unwrap_err();
        assert_eq!(e.code, ErrorCode::Cursor);
    }

    #[test]
    fn downgrade_without_primary_key() {
        let mut c = cat();
        c.store
            .create_table(TableDef::new(
                "dbo.nokey",
                Schema::new(vec![Column::new("v", DataType::Int)]),
            ))
            .unwrap();
        c.store
            .table_mut("dbo.nokey")
            .unwrap()
            .insert(vec![Value::Int(1)])
            .unwrap();
        let cur = Cursor::open(1, &select("SELECT v FROM nokey"), CursorKind::Keyset, &c).unwrap();
        assert_eq!(cur.kind, CursorKind::ForwardOnly);
    }

    #[test]
    fn downgrade_on_aggregation() {
        let c = cat();
        let cur = Cursor::open(
            1,
            &select("SELECT COUNT(*) FROM orders"),
            CursorKind::Dynamic,
            &c,
        )
        .unwrap();
        assert_eq!(cur.kind, CursorKind::ForwardOnly);
    }

    #[test]
    fn keyset_position_is_reported() {
        let c = cat();
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders"),
            CursorKind::Keyset,
            &c,
        )
        .unwrap();
        cur.fetch(FetchDir::Next, 4, &c).unwrap();
        assert_eq!(cur.position(), Some(4));
    }

    #[test]
    fn keyset_order_by_rides_index_and_restores_position_exact() {
        let mut c = cat();
        c.store
            .table_mut("dbo.orders")
            .unwrap()
            .create_index("ix_total", 1)
            .unwrap();
        // ORDER BY on the indexed column no longer downgrades a keyset:
        // the key capture walks the index in order (no sort).
        let mut cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders ORDER BY total DESC"),
            CursorKind::Keyset,
            &c,
        )
        .unwrap();
        assert_eq!(cur.kind, CursorKind::Keyset);
        let f = cur.fetch(FetchDir::Next, 3, &c).unwrap();
        assert_eq!(
            f.rows,
            vec![
                vec![Value::Int(10)],
                vec![Value::Int(9)],
                vec![Value::Int(8)]
            ]
        );

        // Spill and restore: the captured order and position come back
        // verbatim, so delivery resumes mid-sequence with no re-sort.
        let mut buf = Vec::new();
        cur.spill_encode(&mut buf);
        let mut slice = buf.as_slice();
        let mut restored = Cursor::spill_decode(&mut slice, &c).unwrap();
        assert_eq!(restored.kind, CursorKind::Keyset);
        assert_eq!(restored.position(), Some(3));
        let f = restored.fetch(FetchDir::Next, 3, &c).unwrap();
        assert_eq!(
            f.rows,
            vec![
                vec![Value::Int(7)],
                vec![Value::Int(6)],
                vec![Value::Int(5)]
            ]
        );
    }

    #[test]
    fn dynamic_order_by_still_downgrades() {
        let c = cat();
        let cur = Cursor::open(
            1,
            &select("SELECT okey FROM orders ORDER BY total DESC"),
            CursorKind::Dynamic,
            &c,
        )
        .unwrap();
        assert_eq!(cur.kind, CursorKind::ForwardOnly);
    }
}
