//! Scalar expression evaluation and static type inference.
//!
//! Evaluation follows SQL three-valued logic: comparisons involving `NULL`
//! yield `NULL`, `AND`/`OR` are Kleene connectives, and a `WHERE` predicate
//! admits a row only when it evaluates to `TRUE` (not `NULL`).
//!
//! Type inference ([`infer_type`]) computes a result-set schema without
//! executing anything — it is what lets the engine answer Phoenix's
//! `WHERE 0=1` metadata probe with column names, types and nullability and
//! zero rows, exactly as the paper requires ("only query compilation is
//! performed on the server").

use std::collections::HashMap;

use phoenix_sql::ast::{BinaryOp, Expr, Literal, UnaryOp};
use phoenix_sql::display::render_expr;
use phoenix_storage::types::{parse_date, DataType, Value};

use crate::error::{EngineError, Result};

/// A column visible to expression evaluation: optional qualifier (table name
/// or alias), column name, and declared type.
#[derive(Debug, Clone)]
pub struct BoundColumn {
    /// Table name or alias the column is reachable through.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// May hold `NULL`?
    pub nullable: bool,
}

/// The evaluation environment: a set of bound columns, the current row, an
/// optional parameter map (procedure execution), and — during grouped
/// aggregation — precomputed values for aggregate expressions and group keys,
/// looked up by rendered expression text.
pub struct Env<'a> {
    /// Columns visible to name resolution.
    pub columns: &'a [BoundColumn],
    /// The current row, positionally matching `columns`.
    pub row: &'a [Value],
    /// Procedure parameters (`@name`), when executing a procedure body.
    pub params: Option<&'a HashMap<String, Value>>,
    /// Rendered-expression → computed value, consulted before structural
    /// evaluation. Carries aggregate results and group keys in the
    /// post-aggregation environment.
    pub precomputed: Option<&'a HashMap<String, Value>>,
}

impl<'a> Env<'a> {
    /// An environment with no parameters or precomputed values.
    pub fn new(columns: &'a [BoundColumn], row: &'a [Value]) -> Env<'a> {
        Env {
            columns,
            row,
            params: None,
            precomputed: None,
        }
    }

    /// Builder: attach procedure parameters.
    pub fn with_params(mut self, params: &'a HashMap<String, Value>) -> Env<'a> {
        self.params = Some(params);
        self
    }

    /// Resolve a column reference to its index. Ambiguity (same unqualified
    /// name bound by several tables) is an error, as in SQL.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if !c.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(q) = qualifier {
                let matches = c
                    .qualifier
                    .as_deref()
                    .is_some_and(|cq| cq.eq_ignore_ascii_case(q));
                if !matches {
                    continue;
                }
            }
            if found.is_some() {
                return Err(EngineError::column(format!("ambiguous column '{name}'")));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            let full = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            };
            EngineError::column(format!("unknown column '{full}'"))
        })
    }
}

/// Aggregate function names, recognized case-insensitively.
pub fn is_aggregate(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "SUM" | "COUNT" | "AVG" | "MIN" | "MAX"
    )
}

/// Does this expression contain an aggregate function call?
pub fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Function { name, .. } if is_aggregate(name) => true,
        Expr::Function { args, .. } => args.iter().any(contains_aggregate),
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::Nested(e) => contains_aggregate(e),
        _ => false,
    }
}

/// Convert a SQL literal to a runtime value.
pub fn literal_value(lit: &Literal) -> Result<Value> {
    Ok(match lit {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::String(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Date(s) => Value::Date(
            parse_date(s)
                .ok_or_else(|| EngineError::type_err(format!("bad date literal '{s}'")))?,
        ),
    })
}

/// Evaluate `expr` in `env`.
pub fn eval(expr: &Expr, env: &Env<'_>) -> Result<Value> {
    // Precomputed aggregate/group values take precedence over structural
    // evaluation (post-aggregation environment).
    if let Some(pre) = env.precomputed {
        if let Some(v) = pre.get(&render_expr(expr)) {
            return Ok(v.clone());
        }
    }

    match expr {
        Expr::Literal(lit) => literal_value(lit),
        Expr::Column { table, name } => {
            let idx = env.resolve(table.as_deref(), name)?;
            Ok(env.row[idx].clone())
        }
        Expr::Param(p) => match env.params.and_then(|m| m.get(p)) {
            Some(v) => Ok(v.clone()),
            None => Err(EngineError::column(format!("unbound parameter '@{p}'"))),
        },
        // System variables are substituted by the engine facade before
        // execution (DML shapes only); one surviving to evaluation means it
        // was used somewhere that substitution does not cover.
        Expr::SysVar(n) => Err(EngineError::unsupported(format!(
            "system variable '@@{n}' is not available in this context"
        ))),
        Expr::Unary { op, expr } => {
            let v = eval(expr, env)?;
            match op {
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(EngineError::type_err(format!("NOT applied to {other}"))),
                },
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(EngineError::type_err(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, env),
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            if is_aggregate(name) {
                return Err(EngineError::column(format!(
                    "aggregate {name}() used outside aggregation context"
                )));
            }
            if *distinct {
                return Err(EngineError::unsupported("DISTINCT on scalar function"));
            }
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, env))
                .collect::<Result<Vec<_>>>()?;
            scalar_function(name, &vals)
        }
        Expr::Wildcard => Err(EngineError::column("'*' outside COUNT(*)")),
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, val) in branches {
                if eval(cond, env)? == Value::Bool(true) {
                    return eval(val, env);
                }
            }
            match else_expr {
                Some(e) => eval(e, env),
                None => Ok(Value::Null),
            }
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval(expr, env)?;
            let lo = eval(low, env)?;
            let hi = eval(high, env)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let inside = compare(&lo, &v)? != std::cmp::Ordering::Greater
                && compare(&v, &hi)? != std::cmp::Ordering::Greater;
            Ok(Value::Bool(inside != *negated))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval(expr, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, env)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if compare(&v, &iv)? == std::cmp::Ordering::Equal {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval(expr, env)?;
            let p = eval(pattern, env)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(pat)) => {
                    Ok(Value::Bool(like_match(&s, &pat) != *negated))
                }
                (a, b) => Err(EngineError::type_err(format!("LIKE on {a} / {b}"))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Nested(e) => eval(e, env),
    }
}

fn eval_binary(left: &Expr, op: BinaryOp, right: &Expr, env: &Env<'_>) -> Result<Value> {
    // Kleene AND/OR with short-circuiting where sound.
    if op == BinaryOp::And || op == BinaryOp::Or {
        let l = eval(left, env)?;
        let lb = truth(&l)?;
        match (op, lb) {
            (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = eval(right, env)?;
        let rb = truth(&r)?;
        return Ok(match (op, lb, rb) {
            (BinaryOp::And, Some(a), Some(b)) => Value::Bool(a && b),
            (BinaryOp::And, Some(false), _) | (BinaryOp::And, _, Some(false)) => Value::Bool(false),
            (BinaryOp::Or, Some(a), Some(b)) => Value::Bool(a || b),
            (BinaryOp::Or, Some(true), _) | (BinaryOp::Or, _, Some(true)) => Value::Bool(true),
            _ => Value::Null,
        });
    }

    let l = eval(left, env)?;
    let r = eval(right, env)?;

    if op.is_comparison() {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        let ord = compare(&l, &r)?;
        use std::cmp::Ordering::*;
        let b = match op {
            BinaryOp::Eq => ord == Equal,
            BinaryOp::NotEq => ord != Equal,
            BinaryOp::Lt => ord == Less,
            BinaryOp::LtEq => ord != Greater,
            BinaryOp::Gt => ord == Greater,
            BinaryOp::GtEq => ord != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }

    // Arithmetic (and string concatenation via `+`).
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (op, &l, &r) {
        (BinaryOp::Add, Value::Text(a), Value::Text(b)) => Ok(Value::Text(format!("{a}{b}"))),
        (BinaryOp::Add, Value::Date(d), Value::Int(n)) => Ok(Value::Date(d + *n as i32)),
        (BinaryOp::Sub, Value::Date(d), Value::Int(n)) => Ok(Value::Date(d - *n as i32)),
        (BinaryOp::Sub, Value::Date(a), Value::Date(b)) => {
            Ok(Value::Int((*a as i64) - (*b as i64)))
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EngineError::type_err(format!(
                        "arithmetic on non-numeric values {l} {} {r}",
                        op.sql()
                    )))
                }
            };
            let both_int = matches!((&l, &r), (Value::Int(_), Value::Int(_)));
            Ok(match op {
                BinaryOp::Add if both_int => Value::Int(a as i64 + b as i64),
                BinaryOp::Sub if both_int => Value::Int(a as i64 - b as i64),
                BinaryOp::Mul if both_int => Value::Int((a as i64).wrapping_mul(b as i64)),
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                // Division always yields float: `1/2 = 0.5`, not 0. Documented
                // dialect deviation from T-SQL integer division.
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(EngineError::type_err("division by zero"));
                    }
                    Value::Float(a / b)
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Err(EngineError::type_err("modulo by zero"));
                    }
                    if both_int {
                        Value::Int(a as i64 % b as i64)
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => unreachable!("non-arithmetic op in arithmetic path"),
            })
        }
    }
}

/// Truth view of a value for WHERE/HAVING: `Some(bool)` or `None` for NULL.
pub fn truth(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EngineError::type_err(format!(
            "expected boolean predicate, got {other}"
        ))),
    }
}

/// SQL comparison between two non-null values, with Int/Float cross-typing
/// and Text→Date coercion (so `odate >= '1994-01-01'` works).
pub fn compare(a: &Value, b: &Value) -> Result<std::cmp::Ordering> {
    use Value::*;
    let ord = match (a, b) {
        (Int(_), Int(_))
        | (Float(_), Float(_))
        | (Int(_), Float(_))
        | (Float(_), Int(_))
        | (Text(_), Text(_))
        | (Bool(_), Bool(_))
        | (Date(_), Date(_)) => a.cmp(b),
        (Text(s), Date(_)) => match parse_date(s) {
            Some(d) => Date(d).cmp(b),
            None => {
                return Err(EngineError::type_err(format!(
                    "cannot compare '{s}' to a date"
                )))
            }
        },
        (Date(_), Text(s)) => match parse_date(s) {
            Some(d) => a.cmp(&Date(d)),
            None => {
                return Err(EngineError::type_err(format!(
                    "cannot compare a date to '{s}'"
                )))
            }
        },
        _ => {
            return Err(EngineError::type_err(format!(
                "cannot compare {a} with {b}"
            )))
        }
    };
    Ok(ord)
}

/// One compiled `LIKE` pattern element.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pat {
    /// A literal character.
    Lit(char),
    /// `_` — exactly one character.
    One,
    /// `%` — any run of characters (adjacent `%`s collapse at compile time).
    Any,
}

/// A `LIKE` pattern compiled once and reused across every row of a scan —
/// the predicate in a Q13/Q16-style filter runs the matcher once per row,
/// and re-interpreting the pattern text each time dominated scan cost.
#[derive(Debug)]
enum LikePattern {
    /// `[lit] % lit % … % [lit]` — no `_`, at least one `%`: matched with
    /// plain substring scans (`str::find`) instead of per-character
    /// stepping. This is the Q13/Q16 predicate shape and the hot path.
    Segments {
        /// Literal anchored at the start (pattern did not begin with `%`).
        prefix: Option<String>,
        /// Floating literals that must occur in order between the anchors.
        middle: Vec<String>,
        /// Literal anchored at the end (pattern did not end with `%`).
        suffix: Option<String>,
    },
    /// Everything else: the general backtracking token matcher.
    Tokens(Vec<Pat>),
}

impl LikePattern {
    fn compile(pattern: &str) -> LikePattern {
        let mut pats = Vec::with_capacity(pattern.len());
        for c in pattern.chars() {
            match c {
                '%' => {
                    if pats.last() != Some(&Pat::Any) {
                        pats.push(Pat::Any);
                    }
                }
                '_' => pats.push(Pat::One),
                c => pats.push(Pat::Lit(c)),
            }
        }
        let has_one = pats.contains(&Pat::One);
        let has_any = pats.contains(&Pat::Any);
        if has_one || !has_any {
            return LikePattern::Tokens(pats);
        }
        // Split into literal runs around the `%`s.
        let mut runs: Vec<String> = vec![String::new()];
        for p in &pats {
            match p {
                Pat::Lit(c) => runs.last_mut().unwrap().push(*c),
                Pat::Any => runs.push(String::new()),
                Pat::One => unreachable!(),
            }
        }
        // An empty first/last run means the pattern begins/ends with `%`.
        let suffix = match runs.pop() {
            Some(r) if !r.is_empty() => Some(r),
            _ => None,
        };
        let prefix = if runs.first().is_some_and(|r| !r.is_empty()) {
            Some(runs.remove(0))
        } else {
            None
        };
        runs.retain(|r| !r.is_empty());
        LikePattern::Segments {
            prefix,
            middle: runs,
            suffix,
        }
    }

    fn matches(&self, s: &str) -> bool {
        match self {
            LikePattern::Segments {
                prefix,
                middle,
                suffix,
            } => {
                let mut lo = 0;
                if let Some(p) = prefix {
                    if !s.starts_with(p.as_str()) {
                        return false;
                    }
                    lo = p.len();
                }
                let mut hi = s.len();
                if let Some(x) = suffix {
                    if hi < lo + x.len() || !s.ends_with(x.as_str()) {
                        return false;
                    }
                    hi -= x.len();
                }
                let mut region = &s[lo..hi];
                for seg in middle {
                    match region.find(seg.as_str()) {
                        Some(k) => region = &region[k + seg.len()..],
                        None => return false,
                    }
                }
                true
            }
            LikePattern::Tokens(pats) => Self::match_tokens(pats, s),
        }
    }

    /// Classic iterative wildcard match with star backtracking: on a
    /// mismatch after a `%`, retry from one character further into the
    /// subject. Walks byte indices and steps chars via `chars().next()`,
    /// so no per-row allocation.
    fn match_tokens(p: &[Pat], s: &str) -> bool {
        let (mut si, mut pi) = (0usize, 0usize);
        // Most recent `%`: (pattern index after it, subject index to retry).
        let mut star: Option<(usize, usize)> = None;
        loop {
            if pi < p.len() {
                match p[pi] {
                    Pat::Any => {
                        star = Some((pi + 1, si));
                        pi += 1;
                        continue;
                    }
                    Pat::One => {
                        if let Some(c) = s[si..].chars().next() {
                            si += c.len_utf8();
                            pi += 1;
                            continue;
                        }
                    }
                    Pat::Lit(want) => {
                        if let Some(c) = s[si..].chars().next() {
                            if c == want {
                                si += c.len_utf8();
                                pi += 1;
                                continue;
                            }
                        }
                    }
                }
            } else if si == s.len() {
                return true;
            }
            // Mismatch (or pattern exhausted early): backtrack to the last
            // `%`, consuming one more subject character.
            match star {
                Some((star_pi, star_si)) if star_si < s.len() => {
                    let step = s[star_si..].chars().next().map_or(1, char::len_utf8);
                    star = Some((star_pi, star_si + step));
                    pi = star_pi;
                    si = star_si + step;
                }
                _ => return false,
            }
        }
    }
}

thread_local! {
    /// Per-thread compiled-pattern cache. Scans call [`like_match`] once per
    /// row with the same pattern text; this makes compilation once per
    /// pattern rather than once per row. Bounded so hostile workloads with
    /// unbounded distinct patterns cannot grow it without limit.
    static LIKE_CACHE: std::cell::RefCell<HashMap<String, std::rc::Rc<LikePattern>>> =
        std::cell::RefCell::new(HashMap::new());
}

const LIKE_CACHE_CAP: usize = 256;

/// `LIKE` pattern matching: `%` any run, `_` any single char. Matching is
/// case-sensitive, per ANSI. The pattern is compiled once per thread and
/// cached, so per-row cost is the match alone.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let compiled = LIKE_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(hit) = cache.get(pattern) {
            return std::rc::Rc::clone(hit);
        }
        if cache.len() >= LIKE_CACHE_CAP {
            cache.clear();
        }
        let fresh = std::rc::Rc::new(LikePattern::compile(pattern));
        cache.insert(pattern.to_string(), std::rc::Rc::clone(&fresh));
        fresh
    });
    compiled.matches(s)
}

/// Scalar (non-aggregate) function dispatch.
fn scalar_function(name: &str, args: &[Value]) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EngineError::type_err(format!(
                "{upper}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match upper.as_str() {
        "ABS" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(EngineError::type_err(format!("ABS({other})"))),
            }
        }
        "UPPER" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_uppercase())),
                other => Err(EngineError::type_err(format!("UPPER({other})"))),
            }
        }
        "LOWER" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_lowercase())),
                other => Err(EngineError::type_err(format!("LOWER({other})"))),
            }
        }
        "LENGTH" | "LEN" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(EngineError::type_err(format!("LENGTH({other})"))),
            }
        }
        "SUBSTR" | "SUBSTRING" => {
            arity(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Null, _, _) => Ok(Value::Null),
                (Value::Text(s), Value::Int(start), Value::Int(len)) => {
                    let start = (*start).max(1) as usize - 1; // SQL is 1-based
                    let out: String = s.chars().skip(start).take((*len).max(0) as usize).collect();
                    Ok(Value::Text(out))
                }
                _ => Err(EngineError::type_err("SUBSTR(text, int, int)")),
            }
        }
        "COALESCE" => {
            if args.is_empty() {
                return Err(EngineError::type_err("COALESCE needs arguments"));
            }
            Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null))
        }
        "ROUND" => {
            arity(2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) => Ok(Value::Null),
                (Value::Float(f), Value::Int(n)) => {
                    let m = 10f64.powi(*n as i32);
                    Ok(Value::Float((f * m).round() / m))
                }
                (Value::Int(i), Value::Int(_)) => Ok(Value::Int(*i)),
                _ => Err(EngineError::type_err("ROUND(number, int)")),
            }
        }
        "YEAR" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Date(d) => {
                    let (y, _, _) = phoenix_storage::types::civil_from_days(*d);
                    Ok(Value::Int(y))
                }
                other => Err(EngineError::type_err(format!("YEAR({other})"))),
            }
        }
        "MONTH" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Date(d) => {
                    let (_, m, _) = phoenix_storage::types::civil_from_days(*d);
                    Ok(Value::Int(m as i64))
                }
                other => Err(EngineError::type_err(format!("MONTH({other})"))),
            }
        }
        other => Err(EngineError::unsupported(format!(
            "unknown function {other}()"
        ))),
    }
}

/// Infer the static type of `expr` against the given bound columns.
///
/// Returns `(type, nullable)`. Where the type is genuinely unknowable
/// (e.g. a bare NULL literal) we default to `Text`, matching the behavior of
/// drivers that describe untyped NULLs as varchar.
pub fn infer_type(expr: &Expr, columns: &[BoundColumn]) -> Result<(DataType, bool)> {
    Ok(match expr {
        Expr::Literal(Literal::Null) => (DataType::Text, true),
        Expr::Literal(Literal::Int(_)) => (DataType::Int, false),
        Expr::Literal(Literal::Float(_)) => (DataType::Float, false),
        Expr::Literal(Literal::String(_)) => (DataType::Text, false),
        Expr::Literal(Literal::Bool(_)) => (DataType::Bool, false),
        Expr::Literal(Literal::Date(_)) => (DataType::Date, false),
        Expr::Column { table, name } => {
            // Reuse Env::resolve with an empty row.
            let env = Env::new(columns, &[]);
            let idx = env.resolve(table.as_deref(), name)?;
            (columns[idx].dtype, columns[idx].nullable)
        }
        Expr::Param(_) => (DataType::Text, true),
        Expr::SysVar(_) => (DataType::Int, false),
        Expr::Unary { op, expr } => {
            let (t, n) = infer_type(expr, columns)?;
            match op {
                UnaryOp::Not => (DataType::Bool, n),
                UnaryOp::Neg => (t, n),
            }
        }
        Expr::Binary { left, op, right } => {
            if *op == BinaryOp::And || *op == BinaryOp::Or || op.is_comparison() {
                (DataType::Bool, true)
            } else {
                let (lt, ln) = infer_type(left, columns)?;
                let (rt, rn) = infer_type(right, columns)?;
                let t = match (lt, rt) {
                    (DataType::Text, _) | (_, DataType::Text) => DataType::Text,
                    (DataType::Date, DataType::Int) => DataType::Date,
                    (DataType::Date, DataType::Date) => DataType::Int,
                    (DataType::Float, _) | (_, DataType::Float) => DataType::Float,
                    _ if *op == BinaryOp::Div => DataType::Float,
                    _ => DataType::Int,
                };
                (t, ln || rn)
            }
        }
        Expr::Function { name, args, .. } => {
            let upper = name.to_ascii_uppercase();
            match upper.as_str() {
                "COUNT" => (DataType::Int, false),
                "AVG" => (DataType::Float, true),
                "SUM" | "MIN" | "MAX" => {
                    let (t, _) = match args.first() {
                        Some(Expr::Wildcard) | None => (DataType::Int, true),
                        Some(a) => infer_type(a, columns)?,
                    };
                    let t = if upper == "SUM" && t == DataType::Int {
                        DataType::Int
                    } else {
                        t
                    };
                    (t, true)
                }
                "LENGTH" | "LEN" | "YEAR" | "MONTH" => (DataType::Int, true),
                "UPPER" | "LOWER" | "SUBSTR" | "SUBSTRING" => (DataType::Text, true),
                "ABS" | "ROUND" => match args.first() {
                    Some(a) => infer_type(a, columns)?,
                    None => (DataType::Float, true),
                },
                "COALESCE" => match args.first() {
                    Some(a) => {
                        let (t, _) = infer_type(a, columns)?;
                        (t, true)
                    }
                    None => (DataType::Text, true),
                },
                _ => (DataType::Text, true),
            }
        }
        Expr::Wildcard => (DataType::Int, false),
        Expr::Case {
            branches,
            else_expr,
        } => {
            // Type of the first non-NULL-literal branch.
            for (_, v) in branches {
                if !matches!(v, Expr::Literal(Literal::Null)) {
                    return infer_type(v, columns).map(|(t, _)| (t, true));
                }
            }
            match else_expr {
                Some(e) => {
                    let (t, _) = infer_type(e, columns)?;
                    (t, true)
                }
                None => (DataType::Text, true),
            }
        }
        Expr::Between { .. } | Expr::InList { .. } | Expr::Like { .. } | Expr::IsNull { .. } => {
            (DataType::Bool, true)
        }
        Expr::Nested(e) => infer_type(e, columns)?,
    })
}

/// The display name for a projection item without an alias: a bare column
/// keeps its name; anything else uses the rendered expression text.
pub fn output_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Nested(e) => output_name(e),
        other => render_expr(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;

    fn cols() -> Vec<BoundColumn> {
        vec![
            BoundColumn {
                qualifier: Some("t".into()),
                name: "a".into(),
                dtype: DataType::Int,
                nullable: false,
            },
            BoundColumn {
                qualifier: Some("t".into()),
                name: "b".into(),
                dtype: DataType::Text,
                nullable: true,
            },
            BoundColumn {
                qualifier: Some("u".into()),
                name: "a".into(),
                dtype: DataType::Float,
                nullable: true,
            },
        ]
    }

    fn expr_of(sql: &str) -> Expr {
        match parse_statement(&format!("SELECT {sql}")).unwrap() {
            Statement::Select(s) => match s.projections.into_iter().next().unwrap() {
                phoenix_sql::ast::SelectItem::Expr { expr, .. } => expr,
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    fn eval_str(sql: &str, row: &[Value]) -> Result<Value> {
        let columns = cols();
        let env = Env::new(&columns, row);
        eval(&expr_of(sql), &env)
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(5),
            Value::Text("Smith".into()),
            Value::Float(1.5),
        ]
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3", &row()).unwrap(), Value::Int(7));
        assert_eq!(eval_str("7 / 2", &row()).unwrap(), Value::Float(3.5));
        assert_eq!(eval_str("7 % 3", &row()).unwrap(), Value::Int(1));
        assert_eq!(eval_str("-t.a", &row()).unwrap(), Value::Int(-5));
        assert_eq!(eval_str("1.5 + 1", &row()).unwrap(), Value::Float(2.5));
        assert!(eval_str("1 / 0", &row()).is_err());
    }

    #[test]
    fn string_concat() {
        assert_eq!(
            eval_str("b + '!'", &row()).unwrap(),
            Value::Text("Smith!".into())
        );
    }

    #[test]
    fn qualified_resolution_and_ambiguity() {
        assert_eq!(eval_str("t.a", &row()).unwrap(), Value::Int(5));
        assert_eq!(eval_str("u.a", &row()).unwrap(), Value::Float(1.5));
        let e = eval_str("a", &row()).unwrap_err();
        assert!(e.message.contains("ambiguous"));
        assert!(eval_str("t.zzz", &row()).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let r = vec![Value::Int(5), Value::Null, Value::Float(1.0)];
        assert_eq!(eval_str("b = 'x'", &r).unwrap(), Value::Null);
        assert_eq!(eval_str("b = 'x' AND t.a = 5", &r).unwrap(), Value::Null);
        assert_eq!(
            eval_str("b = 'x' AND t.a = 9", &r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_str("b = 'x' OR t.a = 5", &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("NOT (b = 'x')", &r).unwrap(), Value::Null);
        assert_eq!(eval_str("b IS NULL", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("b IS NOT NULL", &r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn comparisons_and_coercion() {
        assert_eq!(eval_str("t.a > 4", &row()).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("t.a = 5.0", &row()).unwrap(), Value::Bool(true));
        assert_eq!(
            eval_str("DATE '1994-06-01' < '1995-01-01'", &row()).unwrap(),
            Value::Bool(true)
        );
        assert!(eval_str("t.a > 'x'", &row()).is_err());
    }

    #[test]
    fn between_in_like() {
        assert_eq!(
            eval_str("t.a BETWEEN 1 AND 10", &row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("t.a NOT BETWEEN 1 AND 4", &row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("t.a IN (1, 5, 9)", &row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("t.a NOT IN (1, 9)", &row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("t.a IN (1, NULL)", &row()).unwrap(), Value::Null);
        assert_eq!(eval_str("b LIKE 'Sm%'", &row()).unwrap(), Value::Bool(true));
        assert_eq!(
            eval_str("b LIKE '_mith'", &row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("b NOT LIKE '%x%'", &row()).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn like_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%c"));
        assert!(like_match("a%c", "a%c")); // literal pass-through of matched text
        assert!(!like_match("ABC", "abc")); // case-sensitive
        assert!(like_match("PROMO BURNISHED", "PROMO%"));
    }

    /// The compiled matcher agrees with ANSI semantics on the shapes the
    /// old recursive matcher was slowest at: multi-`%` patterns with
    /// backtracking, `%_` runs, and multibyte text.
    #[test]
    fn like_compiled_matcher_semantics() {
        // Q13-shaped multi-% with near-miss prefixes that force backtracking.
        assert!(like_match(
            "x special y requests z packages w",
            "%special%requests%packages%"
        ));
        assert!(!like_match(
            "x special y requests z package w",
            "%special%requests%packages%"
        ));
        assert!(!like_match(
            "special requests",
            "%special%requests%packages%"
        ));
        // A `%` must be able to match the empty run between two literals.
        assert!(like_match("ab", "a%b"));
        // `%_` requires at least one character after the run.
        assert!(like_match("abc", "%_"));
        assert!(!like_match("", "%_"));
        assert!(like_match("abc", "%_c"));
        // `_` counts characters, not bytes.
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("héllo", "%é%"));
        assert!(!like_match("héllo", "h__llo"));
        // Trailing-% and exact-suffix behavior.
        assert!(like_match("abcabc", "%abc"));
        assert!(!like_match("abcabd", "%abc"));
        // Collapsed repeated wildcards.
        assert!(like_match("abc", "%%%_%%"));
    }

    #[test]
    fn case_expression() {
        assert_eq!(
            eval_str("CASE WHEN t.a = 5 THEN 'five' ELSE 'other' END", &row()).unwrap(),
            Value::Text("five".into())
        );
        assert_eq!(
            eval_str("CASE WHEN t.a = 9 THEN 'nine' END", &row()).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_str("ABS(-3)", &row()).unwrap(), Value::Int(3));
        assert_eq!(
            eval_str("UPPER(b)", &row()).unwrap(),
            Value::Text("SMITH".into())
        );
        assert_eq!(eval_str("LENGTH(b)", &row()).unwrap(), Value::Int(5));
        assert_eq!(
            eval_str("SUBSTR(b, 2, 3)", &row()).unwrap(),
            Value::Text("mit".into())
        );
        assert_eq!(
            eval_str("COALESCE(NULL, 7)", &row()).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            eval_str("ROUND(2.567, 2)", &row()).unwrap(),
            Value::Float(2.57)
        );
        assert_eq!(
            eval_str("YEAR(DATE '1994-03-01')", &row()).unwrap(),
            Value::Int(1994)
        );
        assert_eq!(
            eval_str("MONTH(DATE '1994-03-01')", &row()).unwrap(),
            Value::Int(3)
        );
        assert!(eval_str("NO_SUCH_FN(1)", &row()).is_err());
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(
            eval_str("DATE '1970-01-01' + 10", &row()).unwrap(),
            Value::Date(10)
        );
        assert_eq!(
            eval_str("DATE '1970-02-01' - DATE '1970-01-01'", &row()).unwrap(),
            Value::Int(31)
        );
    }

    #[test]
    fn aggregates_rejected_outside_grouping() {
        let e = eval_str("SUM(t.a)", &row()).unwrap_err();
        assert!(e.message.contains("aggregate"));
    }

    #[test]
    fn type_inference() {
        let columns = cols();
        let t = |sql: &str| infer_type(&expr_of(sql), &columns).unwrap().0;
        assert_eq!(t("t.a"), DataType::Int);
        assert_eq!(t("t.a + 1"), DataType::Int);
        assert_eq!(t("t.a / 2"), DataType::Float);
        assert_eq!(t("t.a + u.a"), DataType::Float);
        assert_eq!(t("b + 'x'"), DataType::Text);
        assert_eq!(t("t.a > 1"), DataType::Bool);
        assert_eq!(t("COUNT(*)"), DataType::Int);
        assert_eq!(t("AVG(t.a)"), DataType::Float);
        assert_eq!(t("SUM(t.a)"), DataType::Int);
        assert_eq!(t("SUM(u.a)"), DataType::Float);
        assert_eq!(t("MIN(b)"), DataType::Text);
        assert_eq!(t("CASE WHEN TRUE THEN 1 END"), DataType::Int);
        assert_eq!(t("DATE '1994-01-01' + 30"), DataType::Date);
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        assert!(contains_aggregate(&expr_of("1 + SUM(t.a)")));
        assert!(contains_aggregate(&expr_of(
            "CASE WHEN COUNT(*) > 1 THEN 1 END"
        )));
        assert!(!contains_aggregate(&expr_of("t.a + 1")));
    }

    #[test]
    fn precomputed_values_win() {
        let columns = cols();
        let mut pre = HashMap::new();
        pre.insert("SUM(t.a)".to_string(), Value::Int(42));
        let r = row();
        let env = Env {
            columns: &columns,
            row: &r,
            params: None,
            precomputed: Some(&pre),
        };
        assert_eq!(eval(&expr_of("SUM(t.a)"), &env).unwrap(), Value::Int(42));
    }

    #[test]
    fn params() {
        let columns = cols();
        let mut params = HashMap::new();
        params.insert("cid".to_string(), Value::Int(9));
        let r = row();
        let env = Env::new(&columns, &r).with_params(&params);
        assert_eq!(eval(&expr_of("@cid + 1"), &env).unwrap(), Value::Int(10));
        assert!(eval(&expr_of("@missing"), &env).is_err());
    }

    #[test]
    fn output_names() {
        assert_eq!(output_name(&expr_of("t.a")), "a");
        assert_eq!(output_name(&expr_of("COUNT(*)")), "COUNT(*)");
    }
}
