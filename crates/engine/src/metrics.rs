//! Engine-layer metric handles, registered once and cached in a static.
//!
//! Statement latency is a labeled histogram family, one series per
//! statement class; the per-class `Arc`s are resolved at registration time
//! so classifying + recording on the execute path costs one match and one
//! atomic `fetch_add`.

use std::sync::{Arc, OnceLock};

use phoenix_obs::{registry, Counter, Gauge, Histogram};
use phoenix_sql::ast::Statement;

/// Cached handles for every engine metric.
pub struct EngineMetrics {
    /// Live sessions (`phoenix_sessions_active`).
    pub sessions_active: Arc<Gauge>,
    /// Sessions ever opened (`phoenix_sessions_opened_total`).
    pub sessions_opened: Arc<Counter>,
    /// Server cursors opened (`phoenix_cursor_opens_total`).
    pub cursor_opens: Arc<Counter>,
    /// Cursor fetch calls served (`phoenix_cursor_fetches_total`).
    pub cursor_fetches: Arc<Counter>,
    /// Session temp tables currently alive (`phoenix_temp_tables`) — the
    /// paper's liveness-proxy objects.
    pub temp_tables: Arc<Gauge>,
    /// CREATE/DROP INDEX statements applied (`phoenix_index_ddl_total`).
    pub index_ddl: Arc<Counter>,
    select: Arc<Histogram>,
    insert: Arc<Histogram>,
    update: Arc<Histogram>,
    delete: Arc<Histogram>,
    ddl: Arc<Histogram>,
    txn: Arc<Histogram>,
    proc: Arc<Histogram>,
    other: Arc<Histogram>,
}

impl EngineMetrics {
    /// The `phoenix_stmt_latency_us{class=...}` series for a statement.
    pub fn stmt_latency(&self, stmt: &Statement) -> &Histogram {
        match stmt {
            Statement::Select(_) => &self.select,
            Statement::Insert(_) => &self.insert,
            Statement::Update(_) => &self.update,
            Statement::Delete(_) => &self.delete,
            Statement::CreateTable(_)
            | Statement::DropTable { .. }
            | Statement::CreateProc(_)
            | Statement::DropProc { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropIndex { .. } => &self.ddl,
            Statement::Begin | Statement::Commit | Statement::Rollback => &self.txn,
            Statement::Exec(_) => &self.proc,
            // EXPLAIN plans but never touches data; bill it with SELECT.
            Statement::Explain(_) => &self.select,
            Statement::Set { .. } | Statement::Print(_) => &self.other,
        }
    }
}

/// The engine metric set, registered on first use.
pub fn engine_metrics() -> &'static EngineMetrics {
    static M: OnceLock<EngineMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        let lat = |class: &str| {
            r.histogram_with(
                "phoenix_stmt_latency_us",
                "statement execute latency by class in microseconds",
                &[("class", class)],
            )
        };
        EngineMetrics {
            sessions_active: r.gauge("phoenix_sessions_active", "live sessions"),
            sessions_opened: r.counter("phoenix_sessions_opened_total", "sessions ever opened"),
            cursor_opens: r.counter("phoenix_cursor_opens_total", "server cursors opened"),
            cursor_fetches: r.counter("phoenix_cursor_fetches_total", "cursor fetches served"),
            temp_tables: r.gauge("phoenix_temp_tables", "session temp tables currently alive"),
            index_ddl: r.counter(
                "phoenix_index_ddl_total",
                "CREATE/DROP INDEX statements applied",
            ),
            select: lat("select"),
            insert: lat("insert"),
            update: lat("update"),
            delete: lat("delete"),
            ddl: lat("ddl"),
            txn: lat("txn"),
            proc: lat("proc"),
            other: lat("other"),
        }
    })
}
