//! DML/DDL execution helpers.
//!
//! These functions *compute* the effect of a statement (rows to insert, row
//! updates, row ids to delete) against an immutable catalog view; the engine
//! facade then applies the effect through the durability layer (logged,
//! transactional) or the session temp store (volatile). Computing before
//! applying keeps borrows simple and makes `INSERT INTO t SELECT … FROM t`
//! self-joins well-defined (they see the pre-statement state).

use std::collections::HashMap;

use phoenix_sql::ast::{
    CreateTableStmt, DeleteStmt, InsertSource, InsertStmt, ObjectName, UpdateStmt,
};
use phoenix_storage::store::{Store, StoreSnapshot, TableData};
use phoenix_storage::types::{Column, DataType, Row, RowId, Schema, TableDef, Value};

use crate::error::{EngineError, ErrorCode, Result};
use crate::eval::{eval, truth, BoundColumn, Env};
use crate::plan::{execute_select, Catalog};

/// Immutable view over a durable-store snapshot plus one session's temp
/// store. Temp names (`#x`) resolve only in the temp store; everything else
/// only in the durable snapshot (which routes each lookup to the partition
/// shard owning that table).
pub struct CatalogView<'a> {
    /// The durable (crash-surviving) store image.
    pub durable: &'a StoreSnapshot,
    /// The session's volatile temp store.
    pub temp: &'a Store,
}

impl Catalog for CatalogView<'_> {
    fn table(&self, name: &ObjectName) -> Result<&TableData> {
        let key = name.canonical();
        if name.is_temp() {
            self.temp.table(&key).map_err(EngineError::from)
        } else {
            self.durable.table(&key).map_err(EngineError::from)
        }
    }
}

/// Map a parsed SQL type name to an engine type.
pub fn type_from_name(name: &str) -> Result<DataType> {
    DataType::from_sql_name(name)
        .ok_or_else(|| EngineError::unsupported(format!("unknown type '{name}'")))
}

/// Build a [`TableDef`] (with canonical name) from a CREATE TABLE statement.
pub fn build_table_def(c: &CreateTableStmt) -> Result<TableDef> {
    let mut columns = Vec::with_capacity(c.columns.len());
    for col in &c.columns {
        columns.push(Column {
            name: col.name.clone(),
            dtype: type_from_name(&col.type_name)?,
            nullable: !col.not_null,
        });
    }
    let schema = Schema::new(columns);
    let mut pk = Vec::with_capacity(c.primary_key.len());
    for name in &c.primary_key {
        let idx = schema.index_of(name).ok_or_else(|| {
            EngineError::column(format!("PRIMARY KEY column '{name}' not in table"))
        })?;
        pk.push(idx);
    }
    Ok(TableDef {
        name: c.name.canonical(),
        schema,
        primary_key: pk,
        indexes: Vec::new(),
    })
}

/// Coerce and validate one row against a schema: arity, type coercion,
/// NOT NULL.
pub fn coerce_row(values: Vec<Value>, schema: &Schema, table: &str) -> Result<Row> {
    if values.len() != schema.len() {
        return Err(EngineError::new(
            ErrorCode::Constraint,
            format!(
                "INSERT into '{table}' supplies {} values for {} columns",
                values.len(),
                schema.len()
            ),
        ));
    }
    let mut row = Vec::with_capacity(values.len());
    for (v, col) in values.into_iter().zip(&schema.columns) {
        let coerced = v.coerce_to(col.dtype).ok_or_else(|| {
            EngineError::type_err(format!(
                "cannot store {} value in column '{}' ({})",
                v, col.name, col.dtype
            ))
        })?;
        if coerced.is_null() && !col.nullable {
            return Err(EngineError::new(
                ErrorCode::Constraint,
                format!("column '{}' of '{table}' is NOT NULL", col.name),
            ));
        }
        row.push(coerced);
    }
    Ok(row)
}

/// Compute the fully coerced rows an INSERT will add.
pub fn compute_insert_rows(
    insert: &InsertStmt,
    target: &TableDef,
    catalog: &dyn Catalog,
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<Row>> {
    let schema = &target.schema;

    // Map an explicit column list to full-width rows (missing columns NULL).
    let expand = |values: Vec<Value>| -> Result<Vec<Value>> {
        match &insert.columns {
            None => Ok(values),
            Some(cols) => {
                if values.len() != cols.len() {
                    return Err(EngineError::new(
                        ErrorCode::Constraint,
                        format!(
                            "INSERT column list has {} names but {} values",
                            cols.len(),
                            values.len()
                        ),
                    ));
                }
                let mut full = vec![Value::Null; schema.len()];
                for (name, v) in cols.iter().zip(values) {
                    let idx = schema.index_of(name).ok_or_else(|| {
                        EngineError::column(format!(
                            "unknown column '{name}' in INSERT into '{}'",
                            target.name
                        ))
                    })?;
                    full[idx] = v;
                }
                Ok(full)
            }
        }
    };

    let mut rows = Vec::new();
    match &insert.source {
        InsertSource::Values(tuples) => {
            for tuple in tuples {
                let mut values = Vec::with_capacity(tuple.len());
                for e in tuple {
                    let env = Env {
                        columns: &[],
                        row: &[],
                        params,
                        precomputed: None,
                    };
                    values.push(eval(e, &env)?);
                }
                rows.push(coerce_row(expand(values)?, schema, &target.name)?);
            }
        }
        InsertSource::Select(sel) => {
            let rs = execute_select(sel, catalog, params)?;
            for r in rs.rows {
                rows.push(coerce_row(expand(r)?, schema, &target.name)?);
            }
        }
    }
    Ok(rows)
}

fn bind_table(data: &TableData, name: &ObjectName) -> Vec<BoundColumn> {
    data.def
        .schema
        .columns
        .iter()
        .map(|c| BoundColumn {
            qualifier: Some(name.name.clone()),
            name: c.name.clone(),
            dtype: c.dtype,
            nullable: c.nullable,
        })
        .collect()
}

/// Compute `(row_id, new_row)` pairs for an UPDATE.
pub fn compute_update(
    update: &UpdateStmt,
    data: &TableData,
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<(RowId, Row)>> {
    let columns = bind_table(data, &update.table);
    // Resolve assignment targets once.
    let mut targets = Vec::with_capacity(update.assignments.len());
    for (name, expr) in &update.assignments {
        let idx = data.def.schema.index_of(name).ok_or_else(|| {
            EngineError::column(format!(
                "unknown column '{name}' in UPDATE of '{}'",
                update.table
            ))
        })?;
        targets.push((idx, expr));
    }

    let mut out = Vec::new();
    for (&rid, row) in &data.rows {
        let env = Env {
            columns: &columns,
            row,
            params,
            precomputed: None,
        };
        let keep = match &update.where_clause {
            None => true,
            Some(p) => truth(&eval(p, &env)?)? == Some(true),
        };
        if !keep {
            continue;
        }
        let mut new_row = row.clone();
        for (idx, expr) in &targets {
            let v = eval(expr, &env)?;
            let col = &data.def.schema.columns[*idx];
            let coerced = v.coerce_to(col.dtype).ok_or_else(|| {
                EngineError::type_err(format!(
                    "cannot store {v} in column '{}' ({})",
                    col.name, col.dtype
                ))
            })?;
            if coerced.is_null() && !col.nullable {
                return Err(EngineError::new(
                    ErrorCode::Constraint,
                    format!("column '{}' is NOT NULL", col.name),
                ));
            }
            new_row[*idx] = coerced;
        }
        out.push((rid, new_row));
    }
    Ok(out)
}

/// Compute the row ids a DELETE will remove.
pub fn compute_delete(
    delete: &DeleteStmt,
    data: &TableData,
    params: Option<&HashMap<String, Value>>,
) -> Result<Vec<RowId>> {
    let columns = bind_table(data, &delete.table);
    let mut out = Vec::new();
    for (&rid, row) in &data.rows {
        let env = Env {
            columns: &columns,
            row,
            params,
            precomputed: None,
        };
        let hit = match &delete.where_clause {
            None => true,
            Some(p) => truth(&eval(p, &env)?)? == Some(true),
        };
        if hit {
            out.push(rid);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_sql::parser::parse_statement;
    use phoenix_sql::Statement;

    fn table() -> TableData {
        let def = TableDef {
            name: "dbo.t".into(),
            schema: Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("v", DataType::Float),
                Column::new("s", DataType::Text),
            ]),
            primary_key: vec![0],
            indexes: Vec::new(),
        };
        let mut data = TableData::new(def);
        for i in 1..=3 {
            data.insert(vec![
                Value::Int(i),
                Value::Float(i as f64),
                Value::Text(format!("row{i}")),
            ])
            .unwrap();
        }
        data
    }

    fn view_with(data: TableData) -> (StoreSnapshot, Store) {
        let mut durable = Store::new();
        durable.install_table(data);
        (StoreSnapshot::capture(&durable), Store::new())
    }

    #[test]
    fn build_def_maps_types_and_pk() {
        let stmt =
            parse_statement("CREATE TABLE ns.x (a INT NOT NULL, b VARCHAR(10), PRIMARY KEY (a))")
                .unwrap();
        let c = match stmt {
            Statement::CreateTable(c) => c,
            other => panic!("{other:?}"),
        };
        let def = build_table_def(&c).unwrap();
        assert_eq!(def.name, "ns.x");
        assert_eq!(def.schema.columns[1].dtype, DataType::Text);
        assert_eq!(def.primary_key, vec![0]);
        assert!(!def.schema.columns[0].nullable);
    }

    #[test]
    fn build_def_rejects_bad_pk_and_type() {
        let stmt = parse_statement("CREATE TABLE x (a INT, PRIMARY KEY (zz))").unwrap();
        let c = match stmt {
            Statement::CreateTable(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(build_table_def(&c).unwrap_err().code, ErrorCode::Column);
        let stmt = parse_statement("CREATE TABLE x (a BLOB)").unwrap();
        let c = match stmt {
            Statement::CreateTable(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            build_table_def(&c).unwrap_err().code,
            ErrorCode::Unsupported
        );
    }

    #[test]
    fn insert_values_with_column_list_and_coercion() {
        let data = table();
        let def = data.def.clone();
        let (durable, temp) = view_with(data);
        let view = CatalogView {
            durable: &durable,
            temp: &temp,
        };
        let stmt = parse_statement("INSERT INTO t (v, id) VALUES (7, 9)").unwrap();
        let ins = match stmt {
            Statement::Insert(i) => i,
            other => panic!("{other:?}"),
        };
        let rows = compute_insert_rows(&ins, &def, &view, None).unwrap();
        // v coerced int→float, s defaulted to NULL, order fixed up.
        assert_eq!(
            rows,
            vec![vec![Value::Int(9), Value::Float(7.0), Value::Null]]
        );
    }

    #[test]
    fn insert_rejects_null_in_not_null() {
        let data = table();
        let def = data.def.clone();
        let (durable, temp) = view_with(data);
        let view = CatalogView {
            durable: &durable,
            temp: &temp,
        };
        let stmt = parse_statement("INSERT INTO t (v) VALUES (1.5)").unwrap();
        let ins = match stmt {
            Statement::Insert(i) => i,
            other => panic!("{other:?}"),
        };
        let e = compute_insert_rows(&ins, &def, &view, None).unwrap_err();
        assert_eq!(e.code, ErrorCode::Constraint);
    }

    #[test]
    fn insert_select_pulls_through_catalog() {
        let data = table();
        let def = data.def.clone();
        let (durable, temp) = view_with(data);
        let view = CatalogView {
            durable: &durable,
            temp: &temp,
        };
        let stmt =
            parse_statement("INSERT INTO t SELECT id + 10, v, s FROM t WHERE id <= 2").unwrap();
        let ins = match stmt {
            Statement::Insert(i) => i,
            other => panic!("{other:?}"),
        };
        let rows = compute_insert_rows(&ins, &def, &view, None).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(11));
    }

    #[test]
    fn update_computes_new_rows() {
        let data = table();
        let stmt = parse_statement("UPDATE t SET v = v * 2.0 WHERE id >= 2").unwrap();
        let upd = match stmt {
            Statement::Update(u) => u,
            other => panic!("{other:?}"),
        };
        let changes = compute_update(&upd, &data, None).unwrap();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].1[1], Value::Float(4.0));
    }

    #[test]
    fn update_unknown_column_rejected() {
        let data = table();
        let stmt = parse_statement("UPDATE t SET nope = 1").unwrap();
        let upd = match stmt {
            Statement::Update(u) => u,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            compute_update(&upd, &data, None).unwrap_err().code,
            ErrorCode::Column
        );
    }

    #[test]
    fn delete_selects_rows() {
        let data = table();
        let stmt = parse_statement("DELETE FROM t WHERE s LIKE 'row%' AND id <> 2").unwrap();
        let del = match stmt {
            Statement::Delete(d) => d,
            other => panic!("{other:?}"),
        };
        let ids = compute_delete(&del, &data, None).unwrap();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn catalog_view_routes_temp_names() {
        let mut temp = Store::new();
        temp.create_table(TableDef::new(
            "#w",
            Schema::new(vec![Column::new("x", DataType::Int)]),
        ))
        .unwrap();
        let durable = StoreSnapshot::default();
        let view = CatalogView {
            durable: &durable,
            temp: &temp,
        };
        assert!(view.table(&ObjectName::bare("#w")).is_ok());
        assert!(view.table(&ObjectName::bare("w")).is_err());
    }
}
