//! Regression test for the reader-stall convoy.
//!
//! With a writer-priority reader-writer lock on the store, this sequence
//! stalls: a slow reader holds the lock shared, a writer queues behind it,
//! and every *new* reader then queues behind the writer — one slow scan
//! freezes the whole server. With published copy-on-write snapshots, readers
//! never touch the writer lock, so the new reader completes promptly while
//! the slow reader is still running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phoenix_engine::engine::{Engine, EngineConfig};
use phoenix_storage::db::Durability;

fn temp_dir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("phoenix-no-stall-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The slow reader: a quadratic cross-join aggregate over `rows²` pairs.
const SLOW_QUERY: &str = "SELECT COUNT(*) FROM big a, big b WHERE a.v < b.v";

fn load_rows(e: &Engine, sid: u64, from: i64, to: i64) {
    let mut vals = Vec::with_capacity(256);
    for v in from..to {
        vals.push(format!("({v})"));
        if vals.len() == 256 || v + 1 == to {
            e.execute(sid, &format!("INSERT INTO big VALUES {}", vals.join(", ")))
                .unwrap();
            vals.clear();
        }
    }
}

#[test]
fn new_reader_completes_while_slow_reader_runs_and_writer_waits() {
    let dir = temp_dir();
    let config = EngineConfig {
        durability: Durability::Buffered,
        checkpoint_every: None,
        ..EngineConfig::default()
    };
    let e = Arc::new(Engine::open(&dir, config).unwrap());
    let admin = e.create_session("admin");
    e.execute(admin, "CREATE TABLE big (v INT)").unwrap();
    e.execute(admin, "CREATE TABLE small (v INT)").unwrap();
    e.execute(admin, "INSERT INTO small VALUES (1), (2), (3)")
        .unwrap();

    // Calibrate: grow `big` until the slow query takes long enough that the
    // timing windows below are unambiguous on any build profile.
    let mut rows: i64 = 0;
    let slow_dur = loop {
        let target = if rows == 0 { 400 } else { rows * 2 };
        load_rows(&e, admin, rows, target);
        rows = target;
        let t0 = Instant::now();
        e.execute(admin, SLOW_QUERY).unwrap();
        let d = t0.elapsed();
        if d >= Duration::from_millis(400) || rows >= 25_600 {
            break d;
        }
    };

    let slow_done = Arc::new(AtomicBool::new(false));
    let slow_started = Arc::new(AtomicBool::new(false));

    // Session A: the slow reader.
    let a = {
        let e = Arc::clone(&e);
        let done = Arc::clone(&slow_done);
        let started = Arc::clone(&slow_started);
        std::thread::spawn(move || {
            let sid = e.create_session("slow-reader");
            started.store(true, Ordering::SeqCst);
            e.execute(sid, SLOW_QUERY).unwrap();
            done.store(true, Ordering::SeqCst);
        })
    };
    while !slow_started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    std::thread::sleep(slow_dur / 10);

    // Session B: a writer. On the old locking scheme it queues for the
    // store write lock behind A and drags every later reader with it.
    let b = {
        let e = Arc::clone(&e);
        std::thread::spawn(move || {
            let sid = e.create_session("writer");
            e.execute(sid, "INSERT INTO small VALUES (99)").unwrap();
        })
    };
    std::thread::sleep(slow_dur / 10);

    // Session C: a brand-new reader issued while A is still scanning and B
    // is (at worst) still queued. It must come back promptly — far sooner
    // than waiting out A's scan — and strictly before A finishes.
    let c_sid = e.create_session("new-reader");
    let t0 = Instant::now();
    let r = e.execute(c_sid, "SELECT COUNT(*) FROM small").unwrap();
    let c_latency = t0.elapsed();
    let a_was_done = slow_done.load(Ordering::SeqCst);

    assert!(!r.rows().is_empty());
    assert!(
        !a_was_done,
        "slow reader finished before the new reader ran; calibration too small \
         (slow_dur = {slow_dur:?}) — the test exercised nothing"
    );
    assert!(
        c_latency < slow_dur / 2,
        "new reader stalled {c_latency:?} behind a slow scan of {slow_dur:?}: \
         reader convoy is back"
    );

    a.join().unwrap();
    b.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
