// The offline build environment has no `proptest` crate available, so these
// property tests are compiled only when the `slow-proptests` feature is
// enabled (which requires supplying a real proptest dependency).
#![cfg(feature = "slow-proptests")]

//! Property tests of engine query-processing invariants.

use proptest::prelude::*;

use phoenix_engine::{Engine, EngineConfig};
use phoenix_storage::types::Value;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-engine-prop-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Build an engine with a single table `t(k INT PK, grp INT, v INT)`
/// containing the given rows (keys deduplicated by construction).
fn engine_with(rows: &[(i64, i64)]) -> (Engine, u64, PathBuf) {
    let dir = temp_dir();
    let mut e = Engine::open(&dir, EngineConfig::default()).unwrap();
    let sid = e.create_session("prop");
    e.execute(sid, "CREATE TABLE t (k INT PRIMARY KEY, grp INT, v INT)")
        .unwrap();
    if !rows.is_empty() {
        let tuples: Vec<String> = rows
            .iter()
            .enumerate()
            .map(|(i, (g, v))| format!("({i}, {}, {})", g.rem_euclid(5), v))
            .collect();
        e.execute(sid, &format!("INSERT INTO t VALUES {}", tuples.join(", ")))
            .unwrap();
    }
    (e, sid, dir)
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((any::<i64>(), -1000i64..1000), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ORDER BY really sorts, and is stable under re-execution.
    #[test]
    fn order_by_sorts(rows in rows_strategy()) {
        let (mut e, sid, dir) = engine_with(&rows);
        let r = e.execute(sid, "SELECT v FROM t ORDER BY v").unwrap();
        let vs: Vec<i64> = r.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&vs, &sorted);
        let r2 = e.execute(sid, "SELECT v FROM t ORDER BY v").unwrap();
        prop_assert_eq!(r.rows(), r2.rows());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// LIMIT/OFFSET slices the ordered result exactly.
    #[test]
    fn limit_offset_windows(rows in rows_strategy(), off in 0u64..50, lim in 0u64..50) {
        let (mut e, sid, dir) = engine_with(&rows);
        let full = e.execute(sid, "SELECT k FROM t ORDER BY k").unwrap().rows().to_vec();
        let windowed = e
            .execute(sid, &format!("SELECT k FROM t ORDER BY k LIMIT {lim} OFFSET {off}"))
            .unwrap()
            .rows()
            .to_vec();
        let lo = (off as usize).min(full.len());
        let hi = (lo + lim as usize).min(full.len());
        prop_assert_eq!(windowed, full[lo..hi].to_vec());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Grouped aggregates are consistent with global aggregates.
    #[test]
    fn group_aggregates_sum_to_global(rows in rows_strategy()) {
        let (mut e, sid, dir) = engine_with(&rows);
        let grouped = e
            .execute(sid, "SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp")
            .unwrap()
            .rows()
            .to_vec();
        let total_n: i64 = grouped.iter().map(|r| r[1].as_i64().unwrap()).sum();
        let total_v: i64 = grouped
            .iter()
            .map(|r| r[2].as_i64().unwrap_or(0))
            .sum();
        let global = e.execute(sid, "SELECT COUNT(*), SUM(v) FROM t").unwrap().rows().to_vec();
        prop_assert_eq!(global[0][0].as_i64().unwrap(), total_n);
        if total_n > 0 {
            prop_assert_eq!(global[0][1].as_i64().unwrap(), total_v);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A keyset cursor drained without concurrent modification returns the
    /// same rows as a direct SELECT.
    #[test]
    fn keyset_cursor_equals_select(rows in rows_strategy(), block in 1usize..7) {
        let (mut e, sid, dir) = engine_with(&rows);
        let direct = e
            .execute(sid, "SELECT k, v FROM t WHERE v >= 0")
            .unwrap()
            .rows()
            .to_vec();
        let select = match phoenix_sql::parse_statement("SELECT k, v FROM t WHERE v >= 0").unwrap() {
            phoenix_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let (cid, _, granted) = e
            .open_cursor(sid, &select, phoenix_engine::cursor::CursorKind::Keyset)
            .unwrap();
        prop_assert_eq!(granted, phoenix_engine::cursor::CursorKind::Keyset);
        let mut fetched = Vec::new();
        loop {
            let f = e.fetch(sid, cid, phoenix_engine::cursor::FetchDir::Next, block).unwrap();
            fetched.extend(f.rows);
            if f.at_end {
                break;
            }
        }
        prop_assert_eq!(fetched, direct);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Committed engine state survives an engine drop + reopen (the
    /// end-to-end durability contract Phoenix relies on).
    #[test]
    fn committed_state_survives_reopen(rows in rows_strategy(), delete_below in -500i64..500) {
        let dir = temp_dir();
        let expected = {
            let mut e = Engine::open(&dir, EngineConfig::default()).unwrap();
            let sid = e.create_session("prop");
            e.execute(sid, "CREATE TABLE t (k INT PRIMARY KEY, grp INT, v INT)").unwrap();
            if !rows.is_empty() {
                let tuples: Vec<String> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, (g, v))| format!("({i}, {}, {})", g.rem_euclid(5), v))
                    .collect();
                e.execute(sid, &format!("INSERT INTO t VALUES {}", tuples.join(", "))).unwrap();
            }
            e.execute(sid, &format!("DELETE FROM t WHERE v < {delete_below}")).unwrap();
            // Uncommitted work that must die with the "crash":
            e.execute(sid, "BEGIN").unwrap();
            e.execute(sid, "DELETE FROM t").unwrap();
            e.execute(sid, "SELECT COUNT(*) FROM t").unwrap(); // dirty read inside txn
            // (no commit — drop = crash)
            let mut check = Engine::open(&temp_dir(), EngineConfig::default()).unwrap();
            let _ = check.create_session("x");
            rows.iter()
                .enumerate()
                .filter(|(_, (_, v))| *v >= delete_below)
                .map(|(i, (g, v))| (i as i64, g.rem_euclid(5), *v))
                .collect::<Vec<_>>()
        };
        let mut e = Engine::open(&dir, EngineConfig::default()).unwrap();
        let sid = e.create_session("prop");
        let r = e.execute(sid, "SELECT k, grp, v FROM t ORDER BY k").unwrap();
        let got: Vec<(i64, i64, i64)> = r
            .rows()
            .iter()
            .map(|row| {
                (
                    row[0].as_i64().unwrap(),
                    row[1].as_i64().unwrap(),
                    row[2].as_i64().unwrap(),
                )
            })
            .collect();
        prop_assert_eq!(got, expected);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Evaluation is total over arbitrary (valid-typed) predicates built
    /// from generated constants: no panics, only values or typed errors.
    #[test]
    fn where_never_panics(a in any::<i64>(), b in any::<i64>(), c in "[ -~]{0,8}") {
        let (mut e, sid, dir) = engine_with(&[(a.rem_euclid(7), b.rem_euclid(100))]);
        let escaped = c.replace('\'', "''");
        let _ = e.execute(
            sid,
            &format!("SELECT * FROM t WHERE v > {a} AND grp < {b} OR '{escaped}' = '{escaped}'"),
        );
        let _ = e.execute(sid, &format!("SELECT * FROM t WHERE v + {a} BETWEEN {b} AND {a}"));
        std::fs::remove_dir_all(dir).unwrap();
    }
}

mod auto_checkpoint {
    use super::*;
    use phoenix_storage::db::Durability;

    /// Auto-checkpoints firing mid-workload must never lose committed work
    /// across a crash, whatever the threshold.
    #[test]
    fn aggressive_auto_checkpoint_preserves_committed_state() {
        for every in [1u64, 3, 10, 50] {
            let dir = temp_dir();
            let config = EngineConfig {
                durability: Durability::Fsync,
                checkpoint_every: Some(every),
                replay_threads: None,
            };
            {
                let mut e = Engine::open(&dir, config.clone()).unwrap();
                let sid = e.create_session("ckpt");
                e.execute(sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
                    .unwrap();
                for i in 0..40 {
                    e.execute(sid, &format!("INSERT INTO t VALUES ({i}, {})", i * 2))
                        .unwrap();
                    if i % 7 == 0 {
                        e.execute(sid, &format!("UPDATE t SET v = v + 1 WHERE k = {i}"))
                            .unwrap();
                    }
                    if i % 11 == 0 && i > 0 {
                        e.execute(sid, &format!("DELETE FROM t WHERE k = {}", i - 1))
                            .unwrap();
                    }
                }
                // Crash (drop without graceful shutdown).
            }
            let mut e = Engine::open(&dir, config).unwrap();
            let sid = e.create_session("ckpt");
            let r = e.execute(sid, "SELECT COUNT(*), SUM(v) FROM t").unwrap();
            // 40 inserts, deletes at k ∈ {10, 21, 32} → 37 rows.
            assert_eq!(r.rows()[0][0], Value::Int(37), "checkpoint_every={every}");
            std::fs::remove_dir_all(dir).unwrap();
        }
    }

    /// The auto-checkpoint must not fire while a transaction is open (it
    /// would capture uncommitted effects); committed work still survives.
    #[test]
    fn auto_checkpoint_defers_around_open_transactions() {
        let dir = temp_dir();
        let config = EngineConfig {
            durability: Durability::Fsync,
            checkpoint_every: Some(2),
            replay_threads: None,
        };
        {
            let mut e = Engine::open(&dir, config.clone()).unwrap();
            let sid = e.create_session("x");
            e.execute(sid, "CREATE TABLE t (v INT)").unwrap();
            e.execute(sid, "BEGIN").unwrap();
            for i in 0..20 {
                e.execute(sid, &format!("INSERT INTO t VALUES ({i})"))
                    .unwrap();
            }
            // Threshold exceeded many times over, but the txn is open the
            // whole time. Crash without commit:
        }
        let mut e = Engine::open(&dir, config).unwrap();
        let sid = e.create_session("x");
        let r = e.execute(sid, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            r.rows()[0][0],
            Value::Int(0),
            "uncommitted work leaked through a checkpoint"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}

mod null_ordering {
    use super::*;

    /// NULLs sort first (ascending) / last (descending), and aggregate
    /// functions skip them — the SQL semantics Phoenix's key tables depend
    /// on.
    #[test]
    fn nulls_order_first_and_are_skipped_by_aggregates() {
        let dir = temp_dir();
        let mut e = Engine::open(&dir, EngineConfig::default()).unwrap();
        let sid = e.create_session("nulls");
        e.execute(sid, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            .unwrap();
        e.execute(
            sid,
            "INSERT INTO t VALUES (1, 5), (2, NULL), (3, 1), (4, NULL), (5, 9)",
        )
        .unwrap();

        let r = e.execute(sid, "SELECT v FROM t ORDER BY v").unwrap();
        let head: Vec<&Value> = r.rows().iter().map(|r| &r[0]).collect();
        assert_eq!(head[0], &Value::Null);
        assert_eq!(head[1], &Value::Null);
        assert_eq!(head[2], &Value::Int(1));

        let r = e.execute(sid, "SELECT v FROM t ORDER BY v DESC").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(9));
        assert_eq!(r.rows()[4][0], Value::Null);

        // Aggregates skip NULLs; COUNT(*) does not.
        let r = e
            .execute(
                sid,
                "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
            )
            .unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(5));
        assert_eq!(r.rows()[0][1], Value::Int(3));
        assert_eq!(r.rows()[0][2], Value::Int(15));
        assert_eq!(r.rows()[0][3], Value::Float(5.0));
        assert_eq!(r.rows()[0][4], Value::Int(1));
        assert_eq!(r.rows()[0][5], Value::Int(9));

        // WHERE drops NULL predicate outcomes.
        let r = e
            .execute(sid, "SELECT COUNT(*) FROM t WHERE v > 0")
            .unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(3));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
