//! Session spill/restore lifecycle: exactness of the round trip, cap
//! enforcement, retention purge, and incarnation fencing.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_engine::cursor::{CursorKind, FetchDir};
use phoenix_engine::engine::{Engine, EngineConfig};
use phoenix_engine::error::ErrorCode;
use phoenix_engine::spill::SPILL_TABLE;
use phoenix_sql::ast::{SelectStmt, Statement};
use phoenix_sql::parser::parse_statement;
use phoenix_storage::types::Value;

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-spill-test-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn engine_with(config: EngineConfig) -> (Engine, PathBuf) {
    let dir = temp_dir();
    (Engine::open(&dir, config).unwrap(), dir)
}

fn engine() -> (Engine, PathBuf) {
    engine_with(EngineConfig::default())
}

fn select(sql: &str) -> SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Select(s) => s,
        other => panic!("{other:?}"),
    }
}

fn seed(e: &Engine, sid: u64) {
    e.execute(sid, "CREATE TABLE orders (okey INT PRIMARY KEY, total INT)")
        .unwrap();
    e.execute(
        sid,
        "INSERT INTO orders VALUES (1,10),(2,20),(3,30),(4,40),(5,50)",
    )
    .unwrap();
}

#[test]
fn spill_restore_preserves_vars_temp_tables_and_cursor_positions() {
    let (e, dir) = engine();
    let sid = e.create_session("app");
    seed(&e, sid);
    e.execute(sid, "SET lock_timeout 5000").unwrap();
    e.execute(sid, "SET app_name 'storm'").unwrap();
    e.execute(sid, "CREATE TABLE #scratch (v INT PRIMARY KEY, note TEXT)")
        .unwrap();
    e.execute(sid, "INSERT INTO #scratch VALUES (1,'a'),(2,'b'),(3,'c')")
        .unwrap();
    e.execute(
        sid,
        "CREATE PROCEDURE #peek AS SELECT COUNT(*) FROM #scratch",
    )
    .unwrap();

    // Three cursors, each advanced past its first block.
    let (fo, _, _) = e
        .open_cursor(
            sid,
            &select("SELECT okey FROM orders ORDER BY okey"),
            CursorKind::ForwardOnly,
        )
        .unwrap();
    assert_eq!(e.fetch(sid, fo, FetchDir::Next, 2).unwrap().rows.len(), 2);
    let (ks, _, kind) = e
        .open_cursor(
            sid,
            &select("SELECT okey, total FROM orders"),
            CursorKind::Keyset,
        )
        .unwrap();
    assert_eq!(kind, CursorKind::Keyset);
    assert_eq!(e.fetch(sid, ks, FetchDir::Next, 2).unwrap().rows.len(), 2);
    let (dy, _, kind) = e
        .open_cursor(sid, &select("SELECT okey FROM orders"), CursorKind::Dynamic)
        .unwrap();
    assert_eq!(kind, CursorKind::Dynamic);
    assert_eq!(e.fetch(sid, dy, FetchDir::Next, 2).unwrap().rows.len(), 2);

    e.spill_session(sid).unwrap();
    assert_eq!(e.session_count(), 0);
    assert_eq!(e.spilled_session_count(), 1);
    assert_eq!(
        e.snapshot().table(SPILL_TABLE).unwrap().rows.len(),
        1,
        "one durable spill row"
    );

    // Any engine call transparently restores. Options survive...
    assert_eq!(
        e.session_option(sid, "lock_timeout").unwrap(),
        Some(Value::Int(5000))
    );
    assert_eq!(e.session_count(), 1);
    assert_eq!(e.spilled_session_count(), 0);
    assert_eq!(
        e.snapshot().table(SPILL_TABLE).unwrap().rows.len(),
        0,
        "restore consumes the spill row"
    );
    assert_eq!(
        e.session_option(sid, "app_name").unwrap(),
        Some(Value::Text("storm".into()))
    );
    // ...temp tables and procs survive...
    let r = e
        .execute(sid, "SELECT note FROM #scratch WHERE v = 2")
        .unwrap();
    assert_eq!(r.rows(), &[vec![Value::Text("b".into())]]);
    let r = e.execute(sid, "EXEC #peek").unwrap();
    assert_eq!(r.rows(), &[vec![Value::Int(3)]]);
    // ...and every cursor resumes exactly where delivery stopped.
    let f = e.fetch(sid, fo, FetchDir::Next, 2).unwrap();
    assert_eq!(f.rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
    let f = e.fetch(sid, ks, FetchDir::Next, 2).unwrap();
    assert_eq!(
        f.rows,
        vec![
            vec![Value::Int(3), Value::Int(30)],
            vec![Value::Int(4), Value::Int(40)]
        ]
    );
    let f = e.fetch(sid, dy, FetchDir::Next, 2).unwrap();
    assert_eq!(f.rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn keyset_membership_and_dynamic_visibility_survive_spill() {
    let (e, dir) = engine();
    let sid = e.create_session("app");
    seed(&e, sid);
    let (ks, _, _) = e
        .open_cursor(sid, &select("SELECT okey FROM orders"), CursorKind::Keyset)
        .unwrap();
    let (dy, _, _) = e
        .open_cursor(sid, &select("SELECT okey FROM orders"), CursorKind::Dynamic)
        .unwrap();
    e.fetch(sid, ks, FetchDir::Next, 1).unwrap();
    e.fetch(sid, dy, FetchDir::Next, 1).unwrap();

    e.spill_session(sid).unwrap();

    // Mutate the table from another session while the first is spilled.
    let other = e.create_session("other");
    e.execute(other, "INSERT INTO orders VALUES (9, 90)")
        .unwrap();
    e.execute(other, "DELETE FROM orders WHERE okey = 2")
        .unwrap();

    // Keyset: membership fixed at open (no 9), deleted 2 skipped.
    let mut keys = Vec::new();
    loop {
        let f = e.fetch(sid, ks, FetchDir::Next, 3).unwrap();
        keys.extend(f.rows.into_iter().map(|r| r[0].as_i64().unwrap()));
        if f.at_end {
            break;
        }
    }
    assert_eq!(keys, vec![3, 4, 5]);
    // Dynamic: re-evaluates, so 2 is gone and 9 is visible.
    let mut keys = Vec::new();
    loop {
        let f = e.fetch(sid, dy, FetchDir::Next, 3).unwrap();
        keys.extend(f.rows.into_iter().map(|r| r[0].as_i64().unwrap()));
        if f.at_end {
            break;
        }
    }
    assert_eq!(keys, vec![3, 4, 5, 9]);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn spill_refuses_open_transaction() {
    let (e, dir) = engine();
    let sid = e.create_session("app");
    seed(&e, sid);
    e.execute(sid, "BEGIN").unwrap();
    let err = e.spill_session(sid).unwrap_err();
    assert_eq!(err.code, ErrorCode::Busy);
    e.execute(sid, "ROLLBACK").unwrap();
    e.spill_session(sid).unwrap();
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn max_sessions_evicts_lru_idle_or_returns_retryable_busy() {
    let (e, dir) = engine_with(EngineConfig {
        max_sessions: Some(2),
        ..EngineConfig::default()
    });
    let s1 = e.try_create_session("a").unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let s2 = e.try_create_session("b").unwrap();
    e.execute(s2, "SELECT 1").unwrap(); // s1 is now the LRU session

    // At the cap: the third login spills the LRU victim (s1).
    let s3 = e.try_create_session("c").unwrap();
    assert_eq!(e.session_count(), 2);
    assert_eq!(e.spilled_session_count(), 1);

    // Pin both resident sessions in transactions: nothing is spillable, and
    // restoring s1 would exceed the cap... so a fourth login must get Busy.
    e.execute(s2, "BEGIN").unwrap();
    e.execute(s3, "BEGIN").unwrap();
    let err = e.try_create_session("d").unwrap_err();
    assert_eq!(err.code, ErrorCode::Busy);

    // s1 still works: touching it transparently restores.
    e.execute(s2, "ROLLBACK").unwrap();
    e.execute(s1, "SELECT 1").unwrap();
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn purge_honors_retention_window() {
    let (e, dir) = engine();
    let sid = e.create_session("app");
    e.execute(sid, "SET x 1").unwrap();
    e.spill_session(sid).unwrap();

    // A generous window keeps the row.
    assert_eq!(e.purge_spilled(Duration::from_secs(3600)), 0);
    assert_eq!(e.spilled_session_count(), 1);

    // A zero-length window discards it, and the session is dead for good.
    assert_eq!(e.purge_spilled(Duration::ZERO), 1);
    assert_eq!(e.spilled_session_count(), 0);
    assert_eq!(
        e.execute(sid, "SELECT 1").unwrap_err().code,
        ErrorCode::NoSession
    );
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn stale_spill_rows_are_fenced_by_incarnation_and_purgeable() {
    let dir = temp_dir();
    let sid;
    {
        let e = Engine::open(&dir, EngineConfig::default()).unwrap();
        sid = e.create_session("app");
        e.execute(sid, "SET x 1").unwrap();
        e.spill_session(sid).unwrap();
        // crash: drop without checkpoint
    }
    let e = Engine::open(&dir, EngineConfig::default()).unwrap();
    // The committed spill row replayed...
    assert_eq!(e.snapshot().table(SPILL_TABLE).unwrap().rows.len(), 1);
    // ...but the new incarnation will never restore it.
    assert_eq!(e.spilled_session_count(), 0);
    assert_eq!(
        e.execute(sid, "SELECT 1").unwrap_err().code,
        ErrorCode::NoSession
    );
    // Retention cleanup reaps the stranded row.
    assert_eq!(e.purge_spilled(Duration::ZERO), 1);
    assert_eq!(e.snapshot().table(SPILL_TABLE).unwrap().rows.len(), 0);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn closing_a_spilled_session_discards_its_row() {
    let (e, dir) = engine();
    let sid = e.create_session("app");
    e.execute(sid, "CREATE TABLE #t (v INT)").unwrap();
    e.spill_session(sid).unwrap();
    e.close_session(sid).unwrap();
    assert_eq!(e.spilled_session_count(), 0);
    assert_eq!(e.snapshot().table(SPILL_TABLE).unwrap().rows.len(), 0);
    assert_eq!(
        e.execute(sid, "SELECT 1").unwrap_err().code,
        ErrorCode::NoSession
    );
    std::fs::remove_dir_all(dir).unwrap();
}

/// Regression (spill/execute race): a request thread clones the session's
/// catalog entry *before* locking its state, so the lifecycle manager can
/// spill the session in that window. Executing against the orphaned entry
/// would silently discard the statement's session-state effects when the
/// session is later restored from the spill row. The tombstone re-check
/// makes the request retry and restore instead — so a SET acknowledged to
/// the client is always observable afterwards, no matter how aggressively a
/// concurrent spiller runs.
#[test]
fn concurrent_spill_never_discards_acknowledged_effects() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let (e, dir) = engine();
    let e = Arc::new(e);
    let sid = e.create_session("app");
    let stop = Arc::new(AtomicBool::new(false));
    let spiller = {
        let e = Arc::clone(&e);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Busy (statement in flight) and NoSession (already spilled)
                // are expected outcomes of the race; keep hammering.
                let _ = e.spill_session(sid);
                std::thread::yield_now();
            }
        })
    };
    for i in 0..200i64 {
        e.execute(sid, &format!("SET x {i}")).unwrap();
        assert_eq!(
            e.session_option(sid, "x").unwrap(),
            Some(Value::Int(i)),
            "SET acknowledged at i={i} was lost to a concurrent spill"
        );
    }
    stop.store(true, Ordering::Relaxed);
    spiller.join().unwrap();
    std::fs::remove_dir_all(dir).unwrap();
}

/// Regression (cap race): the `max_sessions` check and the catalog insert
/// happen under one write-lock critical section, so a burst of concurrent
/// logins can never push the resident-session count past the cap.
#[test]
fn concurrent_logins_never_exceed_cap() {
    use std::sync::Arc;
    const CAP: usize = 4;
    const LOGINS: usize = 16;
    let (e, dir) = engine_with(EngineConfig {
        max_sessions: Some(CAP),
        ..EngineConfig::default()
    });
    let e = Arc::new(e);
    let barrier = Arc::new(std::sync::Barrier::new(LOGINS));
    let peak = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..LOGINS)
        .map(|_| {
            let e = Arc::clone(&e);
            let barrier = Arc::clone(&barrier);
            let peak = Arc::clone(&peak);
            std::thread::spawn(move || {
                barrier.wait();
                // Busy is a legitimate outcome under contention; resident
                // sessions above the cap are not.
                let _ = e.try_create_session("storm");
                peak.fetch_max(e.session_count() as u64, Ordering::Relaxed);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let peak = peak.load(Ordering::Relaxed);
    assert!(
        peak <= CAP as u64,
        "resident sessions peaked at {peak} > cap {CAP}"
    );
    assert!(e.session_count() <= CAP);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn spill_idle_sessions_skips_active_ones() {
    let (e, dir) = engine();
    let idle = e.create_session("idle");
    e.execute(idle, "SET x 1").unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let fresh = e.create_session("fresh");
    e.execute(fresh, "SELECT 1").unwrap();

    let n = e.spill_idle_sessions(Duration::from_millis(20));
    assert_eq!(n, 1, "only the idle session spills");
    assert_eq!(e.spilled_session_count(), 1);
    assert_eq!(e.session_count(), 1);
    // And it comes back on touch.
    assert_eq!(e.session_option(idle, "x").unwrap(), Some(Value::Int(1)));
    std::fs::remove_dir_all(dir).unwrap();
}
