//! Explorer-driven regression tests.
//!
//! phoenix-chaos state is process-global, so every test here serializes on
//! one mutex for its whole body (not just the armed window — un-armed
//! traffic from a parallel test would otherwise interleave with an armed
//! session's visit counters).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use phoenix_chaos as chaos;
use phoenix_chaos_explore::{
    enumerate_cases, explore, explorer_config, run_case, run_clean, seed_workload, CrashCase,
    ExploreOptions,
};
use phoenix_core::PhoenixConnection;
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Points whose every visit happens on the server's single execute/commit
/// path. Their `(point, nth)` sequence is a pure function of the workload
/// even while the pipelined phase overlaps the client and server threads;
/// the wire-level points are hit by both sides of the in-process harness,
/// so only their *counts* are workload-pure once requests are in flight
/// concurrently with replies.
const DURABLE_POINTS: &[&str] = &[
    "wal.append",
    "wal.fsync",
    "wal.rotate",
    // Partition 1's stream under the explorer's two-way partitioned store
    // (partition 0 keeps the unsuffixed names). Routing is by table name —
    // with the `phoenix.*` bookkeeping namespace pinned to partition 0 —
    // so these are as workload-pure as the unsuffixed points.
    "wal.append.p1",
    "wal.fsync.p1",
    "wal.rotate.p1",
    "checkpoint.write",
    "checkpoint.truncate",
    "store.publish",
    "server.pipeline_dequeue",
    "server.reply_send",
];

fn durable_subtrace(trace: &[chaos::Visit]) -> Vec<(&'static str, u64)> {
    trace
        .iter()
        .filter(|v| DURABLE_POINTS.contains(&v.point))
        .map(|v| (v.point, v.nth))
        .collect()
}

fn visit_counts(trace: &[chaos::Visit]) -> std::collections::BTreeMap<&'static str, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for v in trace {
        *counts.entry(v.point).or_insert(0u64) += 1;
    }
    counts
}

#[test]
fn clean_trace_is_deterministic_and_enumerates_100_plus_points() {
    let _s = serial();
    let (out_a, trace_a) = run_clean();
    let (out_b, trace_b) = run_clean();
    assert_eq!(
        durable_subtrace(&trace_a),
        durable_subtrace(&trace_b),
        "the durable-point sub-trace must be a pure function of the workload"
    );
    assert_eq!(
        visit_counts(&trace_a),
        visit_counts(&trace_b),
        "per-point visit counts must be a pure function of the workload"
    );
    assert_eq!(out_a, out_b, "clean output must be deterministic");
    assert!(
        trace_a.len() >= 100,
        "acceptance floor: >= 100 distinct crash points, got {}",
        trace_a.len()
    );
    // The trace must cover every layer's fault points.
    for point in [
        "wal.append",
        "wal.fsync",
        "wal.rotate",
        "wal.append.p1",
        "wal.fsync.p1",
        "wal.rotate.p1",
        "checkpoint.write",
        "checkpoint.truncate",
        "store.publish",
        "wire.read_frame",
        "wire.write_frame",
        "server.pipeline_dequeue",
        "server.reply_send",
        "sessiond.spill",
    ] {
        assert!(
            trace_a.iter().any(|v| v.point == point),
            "canonical workload never visits {point}"
        );
    }
    // The index phase must be planner-visible in the baseline: its EXPLAIN
    // reply pins the access path, so any crash case that recovers with a
    // lost or mis-built index diverges from this reply.
    let replies = out_a.replies.join("\n");
    assert!(
        replies.contains("index-eq") && replies.contains("ix_acct_bal"),
        "index phase must record an index-served EXPLAIN in the baseline"
    );
    assert!(
        enumerate_cases(&trace_a, true).len() > trace_a.len(),
        "torn-write variants must add cases"
    );
}

#[test]
fn bounded_sweep_upholds_every_invariant() {
    let _s = serial();
    // A budgeted slice by default; the whole schedule space behind the
    // opt-in env var (CI runs it nightly-style, see ci.yml).
    let full = std::env::var("PHOENIX_CHAOS_FULL").is_ok();
    let opts = ExploreOptions {
        budget: if full { 0 } else { 18 },
        seed: 0xC0FFEE,
        torn_writes: true,
        verbose: false,
    };
    let report = explore(&opts);
    assert!(report.enumerated >= 100, "enumerated {}", report.enumerated);
    assert!(report.executed > 0);
    assert_eq!(
        report.executed, report.crashed,
        "every selected case simulates process death and must crash/restart"
    );
    assert!(
        report.violations.is_empty(),
        "invariant violations (seed + point id reproduce each):\n{}",
        report
            .violations
            .iter()
            .map(|v| format!(
                "  {} seed={} :: {}",
                v.case_id,
                v.seed,
                v.details.join("; ")
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Satellite: the exactly-once window. Crash *between* the WAL commit and
/// the reply send — the statement is durably committed but its reply is
/// lost. Phoenix must answer from the persisted reply buffer (status
/// table), never re-execute.
#[test]
fn exactly_once_window_replays_reply_without_reexecution() {
    let _s = serial();
    let dir = std::env::temp_dir().join(format!("phoenix-exactly-once-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let harness = Arc::new(Mutex::new(
        ServerHarness::start(&dir, EngineConfig::default()).unwrap(),
    ));
    let mut pc = {
        let h = harness.lock().unwrap();
        PhoenixConnection::connect(
            &Environment::new(),
            &h.addr(),
            "app",
            "test",
            explorer_config(),
        )
        .unwrap()
    };
    seed_workload(&mut pc).unwrap();

    // A wrapped DML is four requests: BEGIN, the statement, the status-row
    // insert, COMMIT. Reply #4 is the COMMIT's — crashing at its
    // `server.reply_send` visit means the transaction (statement + status
    // row) is durable but the client never hears back: the exactly-once
    // window of paper §3.
    let guard = chaos::arm(chaos::Schedule::new().crash_at("server.reply_send", 4));
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor =
        phoenix_chaos_explore::spawn_supervisor(Arc::clone(&harness), Arc::clone(&stop));

    let r = pc
        .execute("UPDATE acct SET bal = bal + 1 WHERE id = 1")
        .expect("statement must succeed through recovery");
    assert_eq!(r.affected(), 1);

    stop.store(true, Ordering::Relaxed);
    assert!(supervisor.join().unwrap(), "the crash must actually fire");
    let fired = guard.fired();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].point, "server.reply_send");
    drop(guard);

    let stats = pc.stats().clone();
    assert!(
        stats.replied_from_status >= 1,
        "reply must come from the persisted reply buffer, stats: {stats:?}"
    );
    assert_eq!(
        stats.resubmissions, 0,
        "a committed statement must never be re-executed"
    );
    assert!(stats.recoveries >= 1);

    // Row counts prove no duplicate DML: bal went 100 -> 101 exactly once,
    // and the table still has its 8 seeded rows.
    let check = pc
        .execute("SELECT bal FROM acct WHERE id = 1")
        .unwrap()
        .rows()
        .to_vec();
    assert_eq!(check, vec![vec![Value::Int(101)]]);
    let count = pc.execute("SELECT id FROM acct ORDER BY id").unwrap();
    assert_eq!(count.rows().len(), 8);

    pc.close();
    harness.lock().unwrap().shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite companion: the server dies mid-send, leaving the client a
/// half-written response frame. The driver must classify it as a clean
/// connection loss (recovery), never a decode panic — here proven end to
/// end through PhoenixConnection.
#[test]
fn torn_reply_frame_recovers_cleanly() {
    let _s = serial();
    let case = CrashCase {
        point: "server.reply_send",
        nth: 4,
        spec: chaos::FaultSpec::TornWrite { n_bytes: 6 },
    };
    let outcome = run_case(&case);
    assert!(outcome.fired);
    assert!(outcome.crashed);
    let out = outcome
        .output
        .expect("workload must survive a torn reply frame");
    // Cross-check against a clean baseline: full equivalence.
    let (baseline, _) = run_clean();
    assert_eq!(
        phoenix_chaos_explore::verify(&baseline, &out),
        Vec::<String>::new()
    );
    assert!(outcome.stats.recoveries >= 1);
    outcome.index_check.expect("index audit after recovery");
}

/// Satellite: crash mid-WAL inside index-maintained DML. Chaos is armed
/// only after CREATE INDEX, so the scheduled `wal.append` visit lands
/// inside the wrapped INSERT's transaction — index entries in flight when
/// the server dies. Recovery must land the row exactly once, rebuild the
/// index REDO-only, and keep serving the equality probe through it.
#[test]
fn crash_mid_wal_during_indexed_dml_stays_consistent() {
    let _s = serial();
    let dir = std::env::temp_dir().join(format!("phoenix-index-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let harness = Arc::new(Mutex::new(
        ServerHarness::start(&dir, EngineConfig::default()).unwrap(),
    ));
    let mut pc = {
        let h = harness.lock().unwrap();
        PhoenixConnection::connect(
            &Environment::new(),
            &h.addr(),
            "app",
            "test",
            explorer_config(),
        )
        .unwrap()
    };
    seed_workload(&mut pc).unwrap();
    pc.execute("CREATE INDEX ix_bal ON acct(bal)").unwrap();

    let guard = chaos::arm(chaos::Schedule::new().crash_at("wal.append", 2));
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor =
        phoenix_chaos_explore::spawn_supervisor(Arc::clone(&harness), Arc::clone(&stop));

    let r = pc
        .execute("INSERT INTO acct VALUES (42, 4200, 'ix')")
        .expect("statement must succeed through recovery");
    assert_eq!(r.affected(), 1);

    stop.store(true, Ordering::Relaxed);
    assert!(supervisor.join().unwrap(), "the crash must actually fire");
    drop(guard);

    // Exactly once, visible through the rebuilt index, and the full audit
    // finds every index entry backed by exactly its table rows.
    let rows = pc
        .execute("SELECT id FROM acct WHERE bal = 4200")
        .unwrap()
        .rows()
        .to_vec();
    assert_eq!(rows, vec![vec![Value::Int(42)]]);
    let plan = pc
        .execute("EXPLAIN SELECT id FROM acct WHERE bal = 4200")
        .unwrap();
    assert_eq!(plan.rows()[0][3], Value::Text("index-eq".into()));
    {
        let h = harness.lock().unwrap();
        h.with_engine(|e| e.verify_indexes())
            .expect("live engine")
            .expect("index audit after recovery");
    }

    pc.close();
    harness.lock().unwrap().shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
