#![warn(missing_docs)]

//! # phoenix-chaos-explore
//!
//! The crash-schedule explorer: systematic validation of the paper's
//! "survives a crash at *any* instant" guarantee.
//!
//! The pipeline:
//!
//! 1. **Clean run** ([`run_clean`]) — execute the [canonical
//!    workload](canonical_workload) against a fresh server with
//!    `phoenix-chaos` armed in trace mode, recording every fault-point
//!    visit. With a single client the durable-point visit sequence (WAL,
//!    snapshot publish, dequeue/reply) and every per-point visit count are
//!    pure functions of the workload, so the trace doubles as the
//!    enumeration of every instant the server could die. (During the
//!    pipelined phase the client's frame writes overlap the server's frame
//!    reads, so only the wire-level points' *interleaving* varies run to
//!    run — their counts and the durable sub-trace do not.)
//! 2. **Crash sweep** ([`explore`]) — for each enumerated visit, re-run the
//!    workload with a one-shot schedule that kills the server exactly there
//!    (plus torn-write variants at the write-shaped points), let Phoenix
//!    recover, and compare the workload's observable output against the
//!    clean run.
//!
//! The invariants checked after every crash are the paper's:
//!
//! * **No committed write lost** — the final table image equals the clean
//!   run's.
//! * **No DML applied twice** — increment-style UPDATEs and row counts
//!   would diverge if a statement re-executed after its commit.
//! * **Replayed replies identical** — every statement's rendered reply
//!   matches the clean run's byte-for-byte, whether it was executed,
//!   replayed from the status table, or resubmitted.
//! * **Cursors resume at the saved position** — the row sequence delivered
//!   through the keyset cursor matches the clean run's.
//! * **Secondary indexes stay consistent** — after recovery every index in
//!   the catalog is audited entry-by-entry against its table's rows
//!   ([`phoenix_engine::Engine::verify_indexes`]), so a crash inside index
//!   backfill, maintenance, or drop can neither lose the index nor leave
//!   stale entries behind.
//!
//! Any violation is reported with the `(seed, point, nth)` triple that
//! reproduces it — exactly for the durable points, and up to the pipelined
//! window's frame interleaving for the wire-level points.

pub mod failover;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use phoenix_chaos as chaos;
use phoenix_chaos::{FaultSpec, Visit};
use phoenix_core::{PhoenixConfig, PhoenixConnection, PhoenixCursorKind, PhoenixStats};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;

/// Everything the canonical workload observes: one rendered reply per
/// statement, the row sequence delivered through the cursor, and the final
/// table image. Two runs are equivalent iff their outputs are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadOutput {
    /// Rendered reply of each workload statement, in order.
    pub replies: Vec<String>,
    /// Rows fetched through the keyset cursor, in delivery order.
    pub cursor_rows: Vec<String>,
    /// `SELECT * FROM acct ORDER BY id` followed by `SELECT * FROM customer
    /// ORDER BY id` at the end of the workload (both partitions' tables, so
    /// a half-applied cross-partition commit is observable).
    pub final_table: Vec<String>,
}

/// The DML/txn statements of the canonical workload (the cursor phase and
/// the final table scan are driven separately by [`canonical_workload`]).
///
/// Every mutation is chosen so that *double* application changes the
/// observable state: increments would overshoot, re-inserts would raise
/// duplicate-key errors, a re-deleted row changes affected counts.
pub const WORKLOAD_DML: &[&str] = &[
    "INSERT INTO acct VALUES (9, 900, 'ins')",
    "UPDATE acct SET bal = bal + 5 WHERE id = 1",
    "DELETE FROM acct WHERE id = 2",
    "BEGIN",
    "UPDATE acct SET bal = bal + 7 WHERE id = 3",
    "INSERT INTO acct VALUES (10, 1000, 'txn')",
    "COMMIT",
    "SELECT id, bal FROM acct WHERE bal >= 500 ORDER BY id",
];

/// The pipelined phase: independent DML submitted through
/// `PhoenixConnection::execute_pipelined`, so a whole window of tagged
/// `ExecBatch` wrappers is in flight at once. Crashing anywhere in this
/// phase (the `server.pipeline_dequeue` and `server.reply_send` visits it
/// generates) exercises the paper's exactly-once guarantee for the entire
/// in-flight window: committed tags must replay their logged outcome,
/// uncommitted ones must resubmit. As with [`WORKLOAD_DML`], every mutation
/// diverges observably if applied twice.
pub const WORKLOAD_PIPELINED: &[&str] = &[
    "INSERT INTO acct VALUES (11, 1100, 'p1')",
    "UPDATE acct SET bal = bal + 11 WHERE id = 4",
    "UPDATE acct SET bal = bal + 13 WHERE id = 5",
    "INSERT INTO acct VALUES (12, 1200, 'p2')",
    "DELETE FROM acct WHERE id = 6",
    "UPDATE acct SET bal = bal + 17 WHERE id = 7",
];

/// The cross-partition phase. Under [`explorer_engine_config`]'s two-way
/// partitioned store, `acct` (storage key `dbo.acct`) and `customer`
/// (`dbo.customer`) hash to *different* partitions, so each transaction
/// here commits via a `CommitMulti` record appended to both WAL streams.
/// Crashing between the two participant appends (the per-partition
/// `wal.append.p1` visits) leaves a partial cross-partition commit on disk;
/// recovery must roll the whole transaction back and the resubmitted
/// statements must land exactly once. Every mutation diverges observably
/// if applied twice or half-applied (duplicate keys, unbalanced transfer
/// totals).
pub const WORKLOAD_CROSS: &[&str] = &[
    "BEGIN",
    "UPDATE acct SET bal = bal - 40 WHERE id = 1",
    "INSERT INTO customer VALUES (1, 40, 'x1')",
    "COMMIT",
    "BEGIN",
    "INSERT INTO customer VALUES (2, 7, 'x2')",
    "UPDATE acct SET bal = bal + 7 WHERE id = 3",
    "COMMIT",
];

/// The checkpoint-heavy phase. With [`explorer_engine_config`]'s small
/// `checkpoint_every`, these statements push the log-record counter over
/// the threshold repeatedly, so the clean trace enumerates `wal.rotate`,
/// `checkpoint.write`, and `checkpoint.truncate` visits — crashing *after*
/// the new manifest commits but *before* the rotated log is discarded is
/// exactly the double-apply window the snapshot mark closes. Every
/// mutation diverges observably if applied twice (duplicate keys,
/// overshooting increments, changed affected counts).
pub const WORKLOAD_CHECKPOINT: &[&str] = &[
    "INSERT INTO acct VALUES (20, 2000, 'ck1')",
    "UPDATE acct SET bal = bal + 19 WHERE id = 20",
    "INSERT INTO acct VALUES (21, 2100, 'ck2')",
    "UPDATE acct SET bal = bal + 23 WHERE id = 1",
    "INSERT INTO acct VALUES (22, 2200, 'ck3')",
    "DELETE FROM acct WHERE id = 21",
    "INSERT INTO acct VALUES (23, 2300, 'ck4')",
    "UPDATE acct SET bal = bal + 29 WHERE id = 22",
];

/// The secondary-index phase. CREATE INDEX is journaled in the WAL like
/// any catalog change, DML afterwards maintains the index inline, and the
/// DROP/re-CREATE pair exercises both directions of the catalog records —
/// so the
/// sweep crashes inside index backfill, maintenance, and drop windows.
/// Recovery rebuilds indexes REDO-only from the WAL; [`run_case`] then
/// audits every table's indexes against its rows (`Engine::verify_indexes`)
/// on top of the usual output comparison. The EXPLAIN reply pins the access
/// path observably: a recovered server that lost the index (or its
/// contents) would answer with a different plan or different rows.
pub const WORKLOAD_INDEX: &[&str] = &[
    "CREATE INDEX ix_acct_bal ON acct(bal)",
    "INSERT INTO acct VALUES (30, 3000, 'ix1')",
    "UPDATE acct SET bal = bal + 31 WHERE id = 30",
    "DELETE FROM acct WHERE id = 9",
    "EXPLAIN SELECT id FROM acct WHERE bal = 3031",
    "SELECT id FROM acct WHERE bal = 3031",
    "DROP INDEX ix_acct_bal",
    "CREATE INDEX ix_acct_bal ON acct(bal)",
];

/// The session-churn phase, run by a *second* client. It builds up session
/// state (a var, a temp table, real DML), goes idle, and is spilled to the
/// durable `phoenix.sessiond_spill` table by [`ChurnHooks::spill`] — which
/// also spills the main client's idle session. Both sessions must then
/// restore transparently on their next statement. Crashing anywhere in the
/// phase — including exactly at the `sessiond.spill` fault point — must
/// leave every reply unchanged: a lost session is rebuilt by the client's
/// context replay, a restored one is byte-identical by construction. The
/// customer INSERT diverges observably (duplicate key) if applied twice.
pub const WORKLOAD_CHURN: &[&str] = &[
    "SET app_name 'churn'",
    "CREATE TABLE #churn (v INT PRIMARY KEY)",
    "INSERT INTO #churn VALUES (1), (2), (3)",
    "INSERT INTO customer VALUES (3, 9, 'churn')",
];

/// What the churn phase needs from the embedding harness.
pub struct ChurnHooks<'a> {
    /// Open a fresh Phoenix client against the same server, retrying until
    /// it succeeds (a scheduled crash can land mid-login; the retried
    /// connect produces no recorded replies, so retrying keeps the
    /// workload's observable output crash-independent).
    pub connect: &'a dyn Fn() -> PhoenixConnection,
    /// Force the sessiond lifecycle pass: spill every idle session to the
    /// durable table. Failures are swallowed — under an injected crash
    /// there is nothing left to spill, and the clients rebuild instead of
    /// restore.
    pub spill: &'a dyn Fn(),
}

/// Create and populate the workload's table. Run *before* arming chaos so
/// schedules align with [`run_clean`]'s trace.
pub fn seed_workload(pc: &mut PhoenixConnection) -> phoenix_core::Result<()> {
    pc.execute("CREATE TABLE acct (id INT PRIMARY KEY, bal INT, memo TEXT)")?;
    pc.execute("CREATE TABLE customer (id INT PRIMARY KEY, owed INT, memo TEXT)")?;
    pc.execute(
        "INSERT INTO acct VALUES (1, 100, 'a'), (2, 200, 'b'), (3, 300, 'c'), (4, 400, 'd'), \
         (5, 500, 'e'), (6, 600, 'f'), (7, 700, 'g'), (8, 800, 'h')",
    )?;
    Ok(())
}

/// Run the canonical workload: wrapped DML, an application transaction, a
/// materialized SELECT, a pipelined DML window, a session-churn phase with
/// a forced sessiond spill, a keyset-cursor scan, and a final full-table
/// read.
pub fn canonical_workload(
    pc: &mut PhoenixConnection,
    hooks: &ChurnHooks<'_>,
) -> phoenix_core::Result<WorkloadOutput> {
    let mut replies = Vec::new();
    for sql in WORKLOAD_DML {
        let r = pc.execute(sql)?;
        replies.push(format!("{r:?}"));
    }

    let pipelined: Vec<String> = WORKLOAD_PIPELINED.iter().map(|s| s.to_string()).collect();
    for r in pc.execute_pipelined(&pipelined)? {
        replies.push(format!("{r:?}"));
    }

    for sql in WORKLOAD_CROSS {
        let r = pc.execute(sql)?;
        replies.push(format!("{r:?}"));
    }

    for sql in WORKLOAD_CHECKPOINT {
        let r = pc.execute(sql)?;
        replies.push(format!("{r:?}"));
    }

    for sql in WORKLOAD_INDEX {
        let r = pc.execute(sql)?;
        replies.push(format!("{r:?}"));
    }

    // Session churn (see [`WORKLOAD_CHURN`]): second client, spill of every
    // idle session — the main client's included — then transparent restore
    // on the next statement of each, and an ephemeral third session.
    {
        let mut churn = (hooks.connect)();
        for sql in WORKLOAD_CHURN {
            let r = churn.execute(sql)?;
            replies.push(format!("churn {r:?}"));
        }
        (hooks.spill)();
        let r = churn.execute("SELECT COUNT(*) FROM #churn")?;
        replies.push(format!("churn {r:?}"));
        let r = churn.execute("SELECT owed FROM customer WHERE id = 3")?;
        replies.push(format!("churn {r:?}"));
        churn.close();

        let mut ephemeral = (hooks.connect)();
        let r = ephemeral.execute("SELECT memo FROM customer WHERE id = 3")?;
        replies.push(format!("ephemeral {r:?}"));
        ephemeral.close();
    }

    let mut cursor_rows = Vec::new();
    {
        let mut st = pc.statement();
        st.set_cursor_type(PhoenixCursorKind::Keyset);
        st.set_fetch_block(3);
        st.execute("SELECT id, bal FROM acct ORDER BY id")?;
        while let Some(row) = st.fetch()? {
            cursor_rows.push(format!("{row:?}"));
        }
        st.close();
    }

    // Both partitions' user tables: a half-applied cross-partition commit
    // (acct debited, customer never credited or vice versa) shows up here.
    let mut final_table: Vec<String> = pc
        .execute("SELECT * FROM acct ORDER BY id")?
        .rows()
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    final_table.extend(
        pc.execute("SELECT * FROM customer ORDER BY id")?
            .rows()
            .iter()
            .map(|r| format!("customer {r:?}")),
    );

    Ok(WorkloadOutput {
        replies,
        cursor_rows,
        final_table,
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "phoenix-chaos-explore-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The recovery tuning every explorer run uses: fast failure detection so a
/// full sweep stays fast, generous overall deadline so a slow restart never
/// masquerades as a violation.
pub fn explorer_config() -> PhoenixConfig {
    let mut c = PhoenixConfig::default();
    c.recovery.read_timeout = Some(Duration::from_millis(800));
    c.recovery.ping_interval = Duration::from_millis(10);
    c.recovery.max_wait = Duration::from_secs(10);
    c
}

/// The engine tuning every explorer run uses: a checkpoint interval small
/// enough that the canonical workload triggers several auto-checkpoints,
/// so the clean trace enumerates crash candidates at `wal.rotate`,
/// `checkpoint.write`, and `checkpoint.truncate`. The counter only
/// advances through the single client's statements, so checkpoint timing —
/// and therefore the visit trace — stays deterministic across runs.
pub fn explorer_engine_config() -> EngineConfig {
    EngineConfig {
        checkpoint_every: Some(24),
        // Two partitions so the sweep exercises the per-partition WAL
        // fault points and the partial cross-partition-commit windows.
        partitions: Some(2),
        ..EngineConfig::default()
    }
}

fn connect(h: &ServerHarness) -> PhoenixConnection {
    PhoenixConnection::connect(
        &Environment::new(),
        &h.addr(),
        "chaos",
        "test",
        explorer_config(),
    )
    .expect("connect to fresh harness")
}

/// Connect for the churn phase, retrying through a crash/restart window (a
/// scheduled fault can fire mid-login, before the client has any recovery
/// state to lean on).
fn connect_with_retry(addr: &str, user: &str) -> PhoenixConnection {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        match PhoenixConnection::connect(&Environment::new(), addr, user, "test", explorer_config())
        {
            Ok(pc) => return pc,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "churn connect never succeeded: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Run the workload with no faults, tracing every fault-point visit.
/// Returns the baseline output and the visit trace (the crash-point
/// enumeration). The durable-point sub-trace and all per-point visit
/// counts are deterministic; the global interleaving of wire-level visits
/// is not once the pipelined phase has requests and replies in flight
/// concurrently.
pub fn run_clean() -> (WorkloadOutput, Vec<Visit>) {
    let dir = fresh_dir("clean");
    let mut h = ServerHarness::start(&dir, explorer_engine_config()).unwrap();
    let mut pc = connect(&h);
    seed_workload(&mut pc).expect("seed");
    // Arm only now: visits during startup/connect/seed are not crash
    // candidates (recovery of an un-seeded session is covered elsewhere),
    // and skipping them keeps visit numbers aligned across runs.
    let guard = chaos::arm_traced(chaos::Schedule::new());
    let out = {
        let addr = h.addr();
        let connect_hook = move || connect_with_retry(&addr, "churn");
        let spill_hook = || {
            let _ = h.with_engine(|e| e.spill_idle_sessions(Duration::ZERO));
        };
        let hooks = ChurnHooks {
            connect: &connect_hook,
            spill: &spill_hook,
        };
        canonical_workload(&mut pc, &hooks).expect("clean run must succeed")
    };
    let trace = guard.trace();
    drop(guard);
    pc.close();
    h.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (out, trace)
}

/// Spawn the crash supervisor: polls [`chaos::crash_requested`] and, when a
/// fatal fault fires, severs/crashes the harness, acknowledges the crash
/// (lifting the halt for the next incarnation), and restarts the server on
/// the same port. Returns `true` from its join handle iff a crash was
/// handled. Set `stop` after the workload finishes, then join.
pub fn spawn_supervisor(
    harness: Arc<Mutex<ServerHarness>>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<bool> {
    std::thread::spawn(move || loop {
        if chaos::crash_requested() {
            {
                let mut h = harness.lock().unwrap();
                h.crash().expect("supervisor crash");
                // The dead incarnation is fully drained; the halt may lift
                // so the next incarnation can write and reply.
                chaos::acknowledge_crash();
                std::thread::sleep(Duration::from_millis(20));
                h.restart().expect("supervisor restart");
            }
            return true;
        }
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    })
}

/// One crash case: inject `spec` at the `nth` visit to `point`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashCase {
    /// Fault-point name (from the clean trace).
    pub point: &'static str,
    /// 1-based per-point visit number to fire at.
    pub nth: u64,
    /// What to inject there.
    pub spec: FaultSpec,
}

impl CrashCase {
    /// Stable human-readable id, used in violation reports.
    pub fn id(&self) -> String {
        format!("{}@{} [{}]", self.point, self.nth, self.spec.as_str())
    }
}

/// Outcome of one crashed run.
#[derive(Debug)]
pub struct CaseOutcome {
    /// The workload's observable output, or the error that ended it.
    pub output: Result<WorkloadOutput, String>,
    /// Did the injected fault actually fire?
    pub fired: bool,
    /// Did the supervisor handle a crash (sever + restart)?
    pub crashed: bool,
    /// Post-workload audit of every secondary index against its table's
    /// rows (`Engine::verify_indexes` on the surviving incarnation) — a
    /// recovery that rebuilt an index wrong fails here even if no workload
    /// statement happened to read through the damage.
    pub index_check: Result<(), String>,
    /// Phoenix client counters at the end of the run.
    pub stats: PhoenixStats,
}

/// Run the canonical workload with `case` injected, supervising the crash
/// and letting Phoenix recover. Fully deterministic for a given case.
pub fn run_case(case: &CrashCase) -> CaseOutcome {
    let dir = fresh_dir("case");
    let harness = Arc::new(Mutex::new(
        ServerHarness::start(&dir, explorer_engine_config()).unwrap(),
    ));
    let mut pc = {
        let h = harness.lock().unwrap();
        connect(&h)
    };
    seed_workload(&mut pc).expect("seed");

    let guard = chaos::arm(chaos::Schedule::new().rule(
        chaos::Target::Point {
            point: case.point,
            nth: case.nth,
        },
        case.spec,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor = spawn_supervisor(Arc::clone(&harness), Arc::clone(&stop));

    let output = {
        let addr = { harness.lock().unwrap().addr() };
        let connect_hook = move || connect_with_retry(&addr, "churn");
        let spill_harness = Arc::clone(&harness);
        let spill_hook = move || {
            let h = spill_harness.lock().unwrap();
            let _ = h.with_engine(|e| e.spill_idle_sessions(Duration::ZERO));
        };
        let hooks = ChurnHooks {
            connect: &connect_hook,
            spill: &spill_hook,
        };
        canonical_workload(&mut pc, &hooks).map_err(|e| e.to_string())
    };

    stop.store(true, Ordering::Relaxed);
    let crashed = supervisor.join().expect("supervisor join");
    let fired = !guard.fired().is_empty();
    drop(guard);

    let index_check = {
        let h = harness.lock().unwrap();
        h.with_engine(|e| e.verify_indexes())
            .unwrap_or_else(|| Err("no live engine for index audit".to_string()))
    };

    let stats = pc.stats().clone();
    pc.close();
    harness.lock().unwrap().shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    CaseOutcome {
        output,
        fired,
        crashed,
        index_check,
        stats,
    }
}

/// Compare a crashed run's output against the clean baseline; returns one
/// line per divergence (empty = all invariants hold).
pub fn verify(baseline: &WorkloadOutput, got: &WorkloadOutput) -> Vec<String> {
    let mut diffs = Vec::new();
    let mut cmp = |what: &str, base: &[String], got: &[String]| {
        if base.len() != got.len() {
            diffs.push(format!(
                "{what}: {} entries, expected {}",
                got.len(),
                base.len()
            ));
        }
        for (i, (b, g)) in base.iter().zip(got.iter()).enumerate() {
            if b != g {
                diffs.push(format!("{what}[{i}]: got {g}, expected {b}"));
            }
        }
    };
    cmp("reply", &baseline.replies, &got.replies);
    cmp("cursor", &baseline.cursor_rows, &got.cursor_rows);
    cmp("final_table", &baseline.final_table, &got.final_table);
    diffs
}

/// Options for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum crash cases to execute; `0` = all of them. When the budget
    /// is smaller than the case list, a deterministic seed-offset stride
    /// picks an even sample.
    pub budget: usize,
    /// Seed for the budgeted sample selection (and printed with every
    /// violation for reproduction).
    pub seed: u64,
    /// Also generate torn-write variants at the write-shaped points
    /// (`wal.append` and its per-partition `wal.append.p<k>` siblings,
    /// `server.reply_send`, `wire.write_frame`).
    pub torn_writes: bool,
    /// Print per-case progress to stderr.
    pub verbose: bool,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            budget: 0,
            seed: 1,
            torn_writes: true,
            verbose: false,
        }
    }
}

/// One invariant violation, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `point@nth [spec]` of the case that failed.
    pub case_id: String,
    /// The sweep seed (reproduces the sample selection).
    pub seed: u64,
    /// The divergences (or the run-level error).
    pub details: Vec<String>,
}

/// Sweep results.
#[derive(Debug)]
pub struct Report {
    /// Crash candidates enumerated from the clean trace (before budgeting).
    pub enumerated: usize,
    /// Cases actually executed.
    pub executed: usize,
    /// Cases in which the supervisor handled a real crash/restart.
    pub crashed: usize,
    /// Cases answered (at least partially) from the status table.
    pub replayed: usize,
    /// Invariant violations (empty = the guarantee held everywhere).
    pub violations: Vec<Violation>,
}

/// Enumerate the crash candidates for a given clean-run `trace`.
pub fn enumerate_cases(trace: &[Visit], torn_writes: bool) -> Vec<CrashCase> {
    let mut cases: Vec<CrashCase> = trace
        .iter()
        .map(|v| CrashCase {
            point: v.point,
            nth: v.nth,
            spec: FaultSpec::CrashNow,
        })
        .collect();
    if torn_writes {
        for v in trace {
            // `wal.append` matched by prefix so the per-partition streams'
            // appends (`wal.append.p1`, …) get torn variants too — they are
            // exactly the partial cross-partition-commit windows.
            let write_shaped = v.point.starts_with("wal.append")
                || v.point == "server.reply_send"
                || v.point == "wire.write_frame";
            if !write_shaped {
                continue;
            }
            cases.push(CrashCase {
                point: v.point,
                nth: v.nth,
                // Vary the torn length deterministically with the visit so
                // the sweep covers header-only and mid-payload tears.
                spec: FaultSpec::TornWrite {
                    n_bytes: 1 + (v.nth as usize % 7),
                },
            });
        }
    }
    cases
}

/// Pick the budgeted subset of `cases`: all of them when `budget == 0` or
/// covers the list, otherwise an even stride with a seed-derived offset.
pub fn select_cases(cases: Vec<CrashCase>, budget: usize, seed: u64) -> Vec<CrashCase> {
    if budget == 0 || cases.len() <= budget {
        return cases;
    }
    let stride = cases.len() / budget;
    let offset = (seed as usize) % stride.max(1);
    cases
        .into_iter()
        .skip(offset)
        .step_by(stride.max(1))
        .take(budget)
        .collect()
}

/// Run the full pipeline: clean run, enumeration, budgeted crash sweep,
/// verification. See the crate docs for the invariants.
pub fn explore(opts: &ExploreOptions) -> Report {
    let (baseline, trace) = run_clean();
    let cases = enumerate_cases(&trace, opts.torn_writes);
    let enumerated = cases.len();
    let selected = select_cases(cases, opts.budget, opts.seed);

    let mut report = Report {
        enumerated,
        executed: 0,
        crashed: 0,
        replayed: 0,
        violations: Vec::new(),
    };
    for (i, case) in selected.iter().enumerate() {
        let outcome = run_case(case);
        report.executed += 1;
        if outcome.crashed {
            report.crashed += 1;
        }
        if outcome.stats.replied_from_status > 0 {
            report.replayed += 1;
        }
        let mut details = match &outcome.output {
            Ok(out) => verify(&baseline, out),
            Err(e) => vec![format!("workload failed: {e}")],
        };
        if let Err(e) = &outcome.index_check {
            details.push(format!("index audit: {e}"));
        }
        if !outcome.fired {
            details.push("scheduled fault never fired".to_string());
        }
        if opts.verbose {
            eprintln!(
                "[{}/{}] {} crashed={} recoveries={} replayed={} {}",
                i + 1,
                selected.len(),
                case.id(),
                outcome.crashed,
                outcome.stats.recoveries,
                outcome.stats.replied_from_status,
                if details.is_empty() {
                    "ok"
                } else {
                    "VIOLATION"
                },
            );
        }
        if !details.is_empty() {
            report.violations.push(Violation {
                case_id: case.id(),
                seed: opts.seed,
                details,
            });
        }
    }
    report
}
