//! The failover sweep: primary *loss* (not restart) at every enumerated
//! workload instant, masked by WAL-shipping replication and standby
//! promotion instead of local recovery.
//!
//! Reuses the canonical explorer pipeline: the clean (no-fault,
//! single-server) run is still the baseline, because failover must be
//! *fully* masked — a workload that rides a kill-primary/promote phase has
//! to produce byte-identical replies, cursor rows, and final tables.
//!
//! Each case runs the canonical workload against a semi-sync primary with
//! a live standby. The injected fault kills the primary exactly once at the
//! scheduled visit; the failover supervisor then crashes the harness,
//! acknowledges the chaos halt, and **promotes the standby** — the primary
//! never comes back. The Phoenix session's server list carries both
//! addresses, so recovery rotates onto the promoted standby and the
//! workload continues there.
//!
//! On top of the kill-anywhere cases, the sweep injects replication-layer
//! faults (`repl.ship`, `repl.apply`, `repl.promote` — transient I/O
//! errors, torn standby batches, failed promotions) combined with a fixed
//! mid-workload kill, so re-attach/re-ship and promote-retry paths face a
//! real failover too.
//!
//! Semi-sync is the only mode swept: under async commit, the tail between
//! the primary's fsync and the standby's receive is *legitimately* lost on
//! server loss, so "no acknowledged write lost" only holds semi-sync.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use phoenix_chaos as chaos;
use phoenix_chaos::{FaultSpec, Visit};
use phoenix_core::PhoenixConnection;
use phoenix_driver::Environment;
use phoenix_engine::{CommitMode, EngineConfig};
use phoenix_repl::{Shipper, Standby, StandbyConfig};
use phoenix_server::ServerHarness;

use crate::{
    canonical_workload, enumerate_cases, explorer_config, explorer_engine_config, run_clean,
    seed_workload, select_cases, CaseOutcome, ChurnHooks, CrashCase, ExploreOptions, Report,
    Violation,
};

/// Engine tuning for failover cases: the canonical explorer config plus
/// semi-sync commit (see the module docs for why async is out of scope).
/// Used for the primary *and* for the standby's promoted engine — the
/// partition count must match or the shipped per-partition frames would
/// land in the wrong streams.
pub fn failover_engine_config() -> EngineConfig {
    EngineConfig {
        commit_mode: CommitMode::SemiSync,
        ..explorer_engine_config()
    }
}

/// One failover case: the kill (a [`CrashCase`] against the primary) plus
/// an optional replication-layer fault injected earlier in the same run.
#[derive(Debug, Clone)]
pub struct FailoverCase {
    /// Where the primary dies for good.
    pub kill: CrashCase,
    /// Optional `(point, nth, spec)` replication fault riding along.
    pub repl: Option<(&'static str, u64, FaultSpec)>,
}

impl FailoverCase {
    /// Stable human-readable id, used in violation reports.
    pub fn id(&self) -> String {
        match &self.repl {
            None => format!("failover:{}", self.kill.id()),
            Some((point, nth, spec)) => format!(
                "failover:{} + {}@{} [{}]",
                self.kill.id(),
                point,
                nth,
                spec.as_str()
            ),
        }
    }
}

/// Connect a Phoenix session over the `[primary, standby]` server list,
/// retrying through crash/promotion windows (a scheduled kill can land
/// mid-login; an unpromoted standby answers `Fenced`, which the retry
/// rides out).
fn connect_multi_retry(addrs: &[String], user: &str) -> PhoenixConnection {
    let refs: Vec<&str> = addrs.iter().map(|a| a.as_str()).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        match PhoenixConnection::connect_multi(
            &Environment::new(),
            &refs,
            user,
            "test",
            explorer_config(),
        ) {
            Ok(pc) => return pc,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "failover connect never succeeded: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Spawn the failover supervisor: when the scheduled kill halts the
/// primary, crash the harness (sever + drop, no restart), acknowledge the
/// chaos halt, and promote the standby — retrying promotion, since a
/// `repl.promote` fault may be scheduled to fail the first attempt.
/// Returns `true` from its join handle iff a failover was performed.
fn spawn_failover_supervisor(
    harness: Arc<Mutex<ServerHarness>>,
    standby: Arc<Standby>,
    promoted: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<bool> {
    std::thread::spawn(move || loop {
        if chaos::crash_requested() {
            {
                let mut h = harness.lock().unwrap();
                h.crash().expect("supervisor crash of primary");
                chaos::acknowledge_crash();
            }
            // The primary is gone for good: promote the standby. A
            // scheduled repl.promote fault can fail an attempt; keep
            // trying — an operator would.
            loop {
                match standby.promote(0) {
                    Ok(_) => break,
                    Err(e) => {
                        if e.to_string().contains("already promoted") {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            promoted.store(true, Ordering::SeqCst);
            return true;
        }
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    })
}

/// Run the canonical workload under one failover case. The primary dies at
/// the scheduled visit and never returns; the standby takes over.
pub fn run_failover_case(case: &FailoverCase) -> CaseOutcome {
    let pdir = crate::fresh_dir("failover-p");
    let sdir = crate::fresh_dir("failover-s");
    let harness = Arc::new(Mutex::new(
        ServerHarness::start(&pdir, failover_engine_config()).unwrap(),
    ));
    let standby = Arc::new(
        Standby::start(
            &sdir,
            StandbyConfig {
                engine_config: failover_engine_config(),
                port: 0,
                auto_promote_after: None,
            },
        )
        .unwrap(),
    );
    let addrs = {
        let h = harness.lock().unwrap();
        vec![h.addr(), standby.addr()]
    };
    let shipper = {
        let h = harness.lock().unwrap();
        Shipper::start(h.shared_engine().unwrap(), standby.addr())
    };

    let mut pc = connect_multi_retry(&addrs, "chaos");
    seed_workload(&mut pc).expect("seed");
    // Let the standby absorb the seed before arming, so visits during
    // catch-up are not crash candidates (mirrors run_clean's arming point).
    {
        let target = harness
            .lock()
            .unwrap()
            .with_engine(|e| e.last_gsn())
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while standby.applied_gsn() < target {
            assert!(
                std::time::Instant::now() < deadline,
                "standby never caught up with the seed"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let mut schedule = chaos::Schedule::new().rule(
        chaos::Target::Point {
            point: case.kill.point,
            nth: case.kill.nth,
        },
        case.kill.spec,
    );
    if let Some((point, nth, spec)) = case.repl {
        schedule = schedule.rule(chaos::Target::Point { point, nth }, spec);
    }
    let guard = chaos::arm(schedule);
    let stop = Arc::new(AtomicBool::new(false));
    let promoted = Arc::new(AtomicBool::new(false));
    let supervisor = spawn_failover_supervisor(
        Arc::clone(&harness),
        Arc::clone(&standby),
        Arc::clone(&promoted),
        Arc::clone(&stop),
    );

    let output = {
        let churn_addrs = addrs.clone();
        let connect_hook = move || connect_multi_retry(&churn_addrs, "churn");
        let spill_harness = Arc::clone(&harness);
        let spill_standby = Arc::clone(&standby);
        let spill_promoted = Arc::clone(&promoted);
        let spill_hook = move || {
            // Spill on whichever incarnation currently serves sessions.
            if spill_promoted.load(Ordering::SeqCst) {
                let _ = spill_standby.with_engine(|e| e.spill_idle_sessions(Duration::ZERO));
            } else {
                let h = spill_harness.lock().unwrap();
                let _ = h.with_engine(|e| e.spill_idle_sessions(Duration::ZERO));
            }
        };
        let hooks = ChurnHooks {
            connect: &connect_hook,
            spill: &spill_hook,
        };
        canonical_workload(&mut pc, &hooks).map_err(|e| e.to_string())
    };

    stop.store(true, Ordering::Relaxed);
    let crashed = supervisor.join().expect("supervisor join");
    let fired = !guard.fired().is_empty();
    drop(guard);

    // Audit secondary indexes on whichever incarnation ended up serving —
    // a promoted standby must have replayed the index DDL and maintenance
    // into a consistent catalog just like a restarted primary.
    let index_check = if promoted.load(Ordering::SeqCst) {
        standby
            .with_engine(|e| e.verify_indexes())
            .unwrap_or_else(|| Err("no live engine for index audit".to_string()))
    } else {
        let h = harness.lock().unwrap();
        h.with_engine(|e| e.verify_indexes())
            .unwrap_or_else(|| Err("no live engine for index audit".to_string()))
    };

    let stats = pc.stats().clone();
    pc.close();
    drop(shipper);
    harness.lock().unwrap().shutdown();
    if let Some(standby) = Arc::into_inner(standby) {
        standby.stop();
    }
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);

    CaseOutcome {
        output,
        fired,
        crashed,
        index_check,
        stats,
    }
}

/// Enumerate the failover cases for a clean-run `trace`: every canonical
/// crash candidate becomes a kill-the-primary case, plus replication-layer
/// fault variants anchored to a fixed mid-trace kill.
pub fn enumerate_failover_cases(trace: &[Visit], torn_writes: bool) -> Vec<FailoverCase> {
    let mut cases: Vec<FailoverCase> = enumerate_cases(trace, torn_writes)
        .into_iter()
        .map(|kill| FailoverCase { kill, repl: None })
        .collect();

    // Anchor kill for the repl-fault variants: a mid-trace WAL append, so
    // replication traffic exists both before and after the injected fault.
    let appends: Vec<&Visit> = trace
        .iter()
        .filter(|v| v.point.starts_with("wal.append"))
        .collect();
    if let Some(anchor) = appends.get(appends.len() / 2) {
        let kill = CrashCase {
            point: anchor.point,
            nth: anchor.nth,
            spec: FaultSpec::CrashNow,
        };
        let repl_faults: &[(&'static str, u64, FaultSpec)] = &[
            // Shipper stream dies mid-ship: reconnect + re-attach + re-ship.
            ("repl.ship", 1, FaultSpec::IoError),
            ("repl.ship", 3, FaultSpec::IoError),
            // Standby refuses / tears a batch: nothing acked, duplicate
            // GSNs skipped on the re-ship.
            ("repl.apply", 1, FaultSpec::IoError),
            ("repl.apply", 2, FaultSpec::TornWrite { n_bytes: 1 }),
            ("repl.apply", 4, FaultSpec::IoError),
            // First promotion attempt fails; the supervisor retries.
            ("repl.promote", 1, FaultSpec::IoError),
        ];
        for &(point, nth, spec) in repl_faults {
            cases.push(FailoverCase {
                kill: kill.clone(),
                repl: Some((point, nth, spec)),
            });
        }
    }
    cases
}

/// Run the failover sweep: clean single-server baseline, failover-case
/// enumeration, budgeted kill-and-promote sweep, verification against the
/// baseline. Zero violations means server *loss* is as invisible to the
/// application as the server *crashes* the canonical sweep covers.
pub fn explore_failover(opts: &ExploreOptions) -> Report {
    let (baseline, trace) = run_clean();
    let all = enumerate_failover_cases(&trace, opts.torn_writes);
    let enumerated = all.len();
    // Reuse the canonical budget selection over the kill cases by index:
    // wrap each case in its position, select, then map back.
    let selected: Vec<FailoverCase> = {
        let kills: Vec<CrashCase> = all
            .iter()
            .enumerate()
            .map(|(i, c)| CrashCase {
                point: c.kill.point,
                nth: i as u64, // stand-in key for selection only
                spec: c.kill.spec,
            })
            .collect();
        select_cases(kills, opts.budget, opts.seed)
            .into_iter()
            .map(|k| all[k.nth as usize].clone())
            .collect()
    };

    let mut report = Report {
        enumerated,
        executed: 0,
        crashed: 0,
        replayed: 0,
        violations: Vec::new(),
    };
    for (i, case) in selected.iter().enumerate() {
        let outcome = run_failover_case(case);
        report.executed += 1;
        if outcome.crashed {
            report.crashed += 1;
        }
        if outcome.stats.replied_from_status > 0 {
            report.replayed += 1;
        }
        let mut details = match &outcome.output {
            Ok(out) => crate::verify(&baseline, out),
            Err(e) => vec![format!("workload failed: {e}")],
        };
        if !outcome.fired {
            details.push("scheduled fault never fired".to_string());
        }
        if !outcome.crashed {
            details.push("the primary was never killed — no failover happened".to_string());
        }
        if opts.verbose {
            eprintln!(
                "[{}/{}] {} crashed={} recoveries={} replayed={} {}",
                i + 1,
                selected.len(),
                case.id(),
                outcome.crashed,
                outcome.stats.recoveries,
                outcome.stats.replied_from_status,
                if details.is_empty() {
                    "ok"
                } else {
                    "VIOLATION"
                },
            );
        }
        if !details.is_empty() {
            report.violations.push(Violation {
                case_id: case.id(),
                seed: opts.seed,
                details,
            });
        }
    }
    report
}
