//! `phoenix-chaos-explore` — run the crash-schedule sweep from the command
//! line.
//!
//! ```text
//! phoenix-chaos-explore [--failover] [--budget N] [--seed N] [--no-torn] [--quiet]
//! ```
//!
//! * `--budget N` — execute at most N crash cases (0 = the full sweep;
//!   default 0). CI uses a small fixed budget; the full sweep runs behind
//!   an opt-in env var (see `.github/workflows/ci.yml`).
//! * `--seed N` — seed for the budgeted sample selection (default 1).
//!   Printed with every violation; re-running with the same seed and budget
//!   reproduces the identical sweep.
//! * `--no-torn` — crash-only sweep, skip torn-write variants.
//! * `--quiet` — suppress per-case progress.
//! * `--failover` — sweep server *loss* instead of crash/restart: each case
//!   kills a semi-sync primary at the scheduled visit and promotes its
//!   WAL-shipping standby; the workload must ride the failover unchanged.
//!
//! Exit status: 0 when every invariant held at every crash point, 1
//! otherwise.

use phoenix_chaos_explore::{explore, ExploreOptions};

fn main() {
    let mut opts = ExploreOptions {
        verbose: true,
        ..ExploreOptions::default()
    };
    let mut failover = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--failover" => failover = true,
            "--budget" => {
                let v = args.next().unwrap_or_default();
                opts.budget = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad --budget '{v}'")));
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                opts.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad --seed '{v}'")));
            }
            "--no-torn" => opts.torn_writes = false,
            "--quiet" => opts.verbose = false,
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    eprintln!(
        "phoenix-chaos-explore: sweeping {} schedules (budget={}, seed={}, torn={})",
        if failover {
            "kill-primary/promote"
        } else {
            "crash"
        },
        opts.budget,
        opts.seed,
        opts.torn_writes
    );
    let report = if failover {
        phoenix_chaos_explore::failover::explore_failover(&opts)
    } else {
        explore(&opts)
    };
    println!(
        "enumerated {} crash candidates; executed {}, real crash/restart in {}, \
         status-table replay in {}, violations: {}",
        report.enumerated,
        report.executed,
        report.crashed,
        report.replayed,
        report.violations.len()
    );
    if report.violations.is_empty() {
        println!("all invariants held at every injected crash point");
        return;
    }
    for v in &report.violations {
        println!(
            "VIOLATION at {} (reproduce with --seed {}):",
            v.case_id, v.seed
        );
        for d in &v.details {
            println!("    {d}");
        }
    }
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: phoenix-chaos-explore [--failover] [--budget N] [--seed N] [--no-torn] [--quiet]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
