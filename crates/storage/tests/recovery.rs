//! Recovery regressions for the checkpoint/replay interlock.
//!
//! The headline case: a checkpoint that commits its new manifest and then
//! dies *before* discarding the rotated log (the `checkpoint.truncate`
//! fault point) leaves both the snapshot image and the log records that
//! built it on disk. Before the snapshot carried a committed-txn
//! high-water mark, recovery replayed those records on top of the image —
//! increments overshot and re-inserted keys raised duplicate-key errors.
//! With the mark, records of transactions the image already materializes
//! (`txn ≤ mark`) are skipped and everything applies exactly once.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_chaos as chaos;
use phoenix_storage::db::{Durability, Durable, RecoveryOptions};
use phoenix_storage::types::{Column, DataType, Row, Schema, TableDef, Value};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-recovery-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn def(name: &str) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("v", DataType::Text),
        ]),
    )
    .with_primary_key(vec![0])
}

fn row(id: i64, v: &str) -> Row {
    vec![Value::Int(id), Value::Text(v.into())]
}

fn ids(db: &Durable, table: &str) -> Vec<i64> {
    let snap = db.snapshot();
    let mut ids: Vec<i64> = snap
        .table(table)
        .unwrap_or_else(|_| panic!("table {table} missing"))
        .rows
        .values()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            _ => panic!("non-int id"),
        })
        .collect();
    ids.sort_unstable();
    ids
}

fn commit_rows(db: &Durable, table: &str, rows: &[(i64, &str)]) {
    let t = db.begin().unwrap();
    for (id, v) in rows {
        db.insert(t, table, row(*id, v)).unwrap();
    }
    db.commit(t).unwrap();
}

/// Headline regression: crash after the new manifest is durable but before
/// the rotated log is discarded. Recovery sees *both* the checkpoint image
/// and the log that produced it; the mark must keep it from applying the
/// log a second time. Pre-fix this failed with a duplicate-key recovery
/// error (the snapshot lacked a mark and replay was unfiltered).
#[test]
fn checkpoint_crash_before_truncate_does_not_double_apply() {
    let dir = temp_dir("truncate-window");

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("dbo.t")).unwrap();
        db.commit(t).unwrap();
        commit_rows(&db, "dbo.t", &[(1, "a"), (2, "b"), (3, "c")]);

        let guard = chaos::arm(chaos::Schedule::new().crash_at("checkpoint.truncate", 1));
        let err = db.checkpoint().unwrap_err();
        assert!(err.to_string().contains("phoenix-chaos"));
        assert_eq!(guard.fired().len(), 1);
        drop(guard);
        // Process death: the rotated log (phoenix.wal.old) is still on disk
        // next to the freshly committed manifest.
        assert!(dir.join("phoenix.wal.old").exists());
    }

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(
            ids(&db, "dbo.t"),
            vec![1, 2, 3],
            "rows applied exactly once"
        );
        let rep = db.recovery_report();
        assert!(
            rep.records_skipped > 0,
            "the mark must have filtered the rotated log: {rep:?}"
        );
        assert_eq!(rep.records_applied, 0, "image already held everything");

        // The database stays fully usable: new commits land and survive.
        commit_rows(&db, "dbo.t", &[(4, "d")]);
    }

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(ids(&db, "dbo.t"), vec![1, 2, 3, 4]);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash at `checkpoint.write`: the log is already rotated aside but no new
/// manifest exists. Recovery must replay the rotated log (plus the fresh
/// live log) against the *previous* image.
#[test]
fn checkpoint_crash_at_write_keeps_old_image() {
    let dir = temp_dir("write-crash");

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("dbo.t")).unwrap();
        db.commit(t).unwrap();
        commit_rows(&db, "dbo.t", &[(1, "a"), (2, "b")]);

        let guard = chaos::arm(chaos::Schedule::new().crash_at("checkpoint.write", 1));
        db.checkpoint().unwrap_err();
        assert_eq!(guard.fired().len(), 1);
        drop(guard);
    }

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(ids(&db, "dbo.t"), vec![1, 2], "replayed from rotated log");
        assert!(db.recovery_report().records_applied > 0);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: `Durable::open` tolerates a torn tail on the *live* log while
/// a rotated log sits next to it — the same tail-validation `Wal::open`
/// applies governs both files on the read path.
#[test]
fn torn_live_tail_with_rotated_log_recovers() {
    let dir = temp_dir("torn-with-old");

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("dbo.t")).unwrap();
        db.commit(t).unwrap();
        commit_rows(&db, "dbo.t", &[(1, "a"), (2, "b")]);

        // Leave a rotated log behind: checkpoint dies after its manifest.
        let guard = chaos::arm(chaos::Schedule::new().crash_at("checkpoint.truncate", 1));
        db.checkpoint().unwrap_err();
        drop(guard);
    }

    {
        // New incarnation: commit into the live log, then tear its tail.
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        commit_rows(&db, "dbo.t", &[(3, "c")]);
        let t = db.begin().unwrap();
        let guard = chaos::arm(chaos::Schedule::new().torn_at("wal.append", 1, 7));
        db.insert(t, "dbo.t", row(4, "torn")).unwrap_err();
        assert_eq!(guard.fired().len(), 1);
        drop(guard);
    }

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(
            ids(&db, "dbo.t"),
            vec![1, 2, 3],
            "committed rows exactly once, torn record invisible"
        );
        commit_rows(&db, "dbo.t", &[(5, "e")]);
    }

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(ids(&db, "dbo.t"), vec![1, 2, 3, 5]);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Partitioned replay must be bit-identical to the sequential path — same
/// tables, same rows, same row ids — including across catalog barriers
/// (a table created mid-log).
#[test]
fn parallel_replay_matches_sequential() {
    let dir = temp_dir("parallel");

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        for name in ["dbo.a", "dbo.b", "dbo.c"] {
            db.create_table(t, def(name)).unwrap();
        }
        db.commit(t).unwrap();
        for i in 0..40i64 {
            let t = db.begin().unwrap();
            db.insert(t, "dbo.a", row(i, "a")).unwrap();
            db.insert(t, "dbo.b", row(i * 2, "b")).unwrap();
            if i % 3 == 0 {
                db.insert(t, "dbo.c", row(i, "c")).unwrap();
            }
            db.commit(t).unwrap();
        }
        // Catalog barrier mid-log, then more DML on both sides of it.
        let t = db.begin().unwrap();
        db.create_table(t, def("dbo.late")).unwrap();
        db.insert(t, "dbo.late", row(1, "l")).unwrap();
        db.insert(t, "dbo.a", row(1000, "post")).unwrap();
        db.commit(t).unwrap();
        // Crash: drop without checkpoint.
    }

    let dump = |db: &Durable| {
        let snap = db.snapshot();
        ["dbo.a", "dbo.b", "dbo.c", "dbo.late"]
            .iter()
            .map(|name| {
                let t = snap.table(name).unwrap();
                let mut rows: Vec<_> = t.rows.iter().map(|(id, r)| (*id, r.clone())).collect();
                rows.sort_by_key(|(id, _)| *id);
                (t.next_row_id, rows)
            })
            .collect::<Vec<_>>()
    };

    let seq = {
        let db = Durable::open_opts(
            &dir,
            Durability::Fsync,
            &RecoveryOptions {
                replay_threads: Some(1),
                ..RecoveryOptions::default()
            },
        )
        .unwrap();
        assert_eq!(db.recovery_report().replay_threads, 1);
        dump(&db)
    };
    let par = {
        let db = Durable::open_opts(
            &dir,
            Durability::Fsync,
            &RecoveryOptions {
                replay_threads: Some(4),
                ..RecoveryOptions::default()
            },
        )
        .unwrap();
        let rep = db.recovery_report();
        assert_eq!(rep.replay_threads, 4);
        assert_eq!(rep.tables_replayed, 4);
        dump(&db)
    };
    assert_eq!(seq, par, "partitioned replay must match sequential replay");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Incremental checkpoints: a second checkpoint after touching one of four
/// tables serializes exactly that table and reuses the other segments.
#[test]
fn incremental_checkpoint_rewrites_only_touched_tables() {
    let dir = temp_dir("incremental");
    let db = Durable::open(&dir, Durability::Fsync).unwrap();

    let t = db.begin().unwrap();
    for name in ["dbo.a", "dbo.b", "dbo.c", "dbo.d"] {
        db.create_table(t, def(name)).unwrap();
    }
    db.commit(t).unwrap();
    for name in ["dbo.a", "dbo.b", "dbo.c", "dbo.d"] {
        commit_rows(&db, name, &[(1, "x"), (2, "y")]);
    }

    db.checkpoint().unwrap();
    let full = db.checkpoint_stats();
    assert_eq!(
        full.segments_written, 4,
        "first checkpoint writes everything"
    );
    assert_eq!(full.segments_reused, 0);

    commit_rows(&db, "dbo.c", &[(3, "z")]);
    db.checkpoint().unwrap();
    let incr = db.checkpoint_stats();
    assert_eq!(incr.segments_written, 1, "only the touched table: {incr:?}");
    assert_eq!(incr.segments_reused, 3);

    // The incremental image recovers to the same state.
    drop(db);
    let db = Durable::open(&dir, Durability::Fsync).unwrap();
    assert_eq!(ids(&db, "dbo.a"), vec![1, 2]);
    assert_eq!(ids(&db, "dbo.c"), vec![1, 2, 3]);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A checkpoint that fails after rotating the log leaves `phoenix.wal.old`
/// behind *in-process*. Later commits write to the fresh live log, and the
/// next successful checkpoint must merge the leftover rotated log instead
/// of clobbering it.
#[test]
fn failed_checkpoint_then_retry_merges_rotated_log() {
    let dir = temp_dir("retry-merge");
    let db = Durable::open(&dir, Durability::Fsync).unwrap();

    let t = db.begin().unwrap();
    db.create_table(t, def("dbo.t")).unwrap();
    db.commit(t).unwrap();
    commit_rows(&db, "dbo.t", &[(1, "a"), (2, "b")]);

    // First checkpoint dies after rotation, before writing anything.
    let guard = chaos::arm(chaos::Schedule::new().crash_at("checkpoint.write", 1));
    db.checkpoint().unwrap_err();
    drop(guard);
    assert!(dir.join("phoenix.wal.old").exists());

    // Life goes on: more commits land in the fresh live log.
    commit_rows(&db, "dbo.t", &[(3, "c")]);

    // Retry succeeds: it must fold the leftover rotated log back in.
    db.checkpoint().unwrap();
    assert!(!dir.join("phoenix.wal.old").exists());
    commit_rows(&db, "dbo.t", &[(4, "d")]);

    drop(db);
    let db = Durable::open(&dir, Durability::Fsync).unwrap();
    assert_eq!(ids(&db, "dbo.t"), vec![1, 2, 3, 4]);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same workload driven through a 1-partition layout and a 4-partition
/// layout must recover to bit-identical final snapshots: the GSN merge of
/// the N streams reconstructs exactly the single-stream append order.
#[test]
fn gsn_merge_recovery_matches_single_stream() {
    // Tables chosen to spread over several partitions at n=4.
    let tables = ["dbo.a", "dbo.b", "dbo.c", "dbo.late"];

    type Dump = Vec<(String, u64, Vec<(u64, Row)>)>;
    let run = |partitions: usize| -> Dump {
        let dir = temp_dir(&format!("gsn-merge-{partitions}"));
        let opts = RecoveryOptions {
            partitions: Some(partitions),
            ..RecoveryOptions::default()
        };
        {
            let db = Durable::open_opts(&dir, Durability::Fsync, &opts).unwrap();
            let t = db.begin().unwrap();
            for name in &tables[..3] {
                db.create_table(t, def(name)).unwrap();
            }
            db.commit(t).unwrap();
            for i in 0..30i64 {
                // Cross-partition transactions, aborts, updates, deletes.
                let t = db.begin().unwrap();
                db.insert(t, "dbo.a", row(i, "a")).unwrap();
                db.insert(t, "dbo.b", row(i * 2, "b")).unwrap();
                if i % 3 == 0 {
                    db.insert(t, "dbo.c", row(i, "c")).unwrap();
                }
                if i % 7 == 0 {
                    // Row 1 always exists (inserted at i = 0, never deleted);
                    // aborted ghosts burn row ids, so computed ids are unsafe.
                    db.update(t, "dbo.a", 1, row(0, "updated")).unwrap();
                }
                db.commit(t).unwrap();
                if i % 5 == 0 {
                    let a = db.begin().unwrap();
                    db.insert(a, "dbo.a", row(1000 + i, "ghost")).unwrap();
                    db.insert(a, "dbo.b", row(1000 + i, "ghost")).unwrap();
                    db.abort(a).unwrap();
                }
            }
            let t = db.begin().unwrap();
            db.create_table(t, def("dbo.late")).unwrap();
            db.insert(t, "dbo.late", row(1, "l")).unwrap();
            db.delete(t, "dbo.b", 1).unwrap();
            db.commit(t).unwrap();
            // Crash: drop without checkpoint.
        }
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts).unwrap();
        let snap = db.snapshot();
        let dump = tables
            .iter()
            .map(|name| {
                let t = snap.table(name).unwrap();
                let mut rows: Vec<_> = t.rows.iter().map(|(id, r)| (*id, r.clone())).collect();
                rows.sort_by_key(|(id, _)| *id);
                (name.to_string(), t.next_row_id, rows)
            })
            .collect();
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
        dump
    };

    assert_eq!(
        run(1),
        run(4),
        "merged-stream recovery must be bit-identical to single-stream"
    );
}

/// Cross-partition commit atomicity across a *real* crash window: tear the
/// WAL append of the second participant's CommitMulti record, so partition
/// 0 holds a durable commit record and partition 1 holds none. Recovery
/// must roll the whole transaction back.
#[test]
fn torn_cross_partition_commit_rolls_back_everywhere() {
    let dir = temp_dir("torn-multi-commit");
    let opts = RecoveryOptions {
        partitions: Some(2),
        ..RecoveryOptions::default()
    };
    // At n=2, "acct" → partition 0 and "dbo.acct" → partition 1.
    {
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("acct")).unwrap();
        db.create_table(t, def("dbo.acct")).unwrap();
        db.commit(t).unwrap();
        commit_rows(&db, "acct", &[(1, "base")]);

        let t = db.begin().unwrap();
        db.insert(t, "acct", row(2, "debit")).unwrap();
        db.insert(t, "dbo.acct", row(2, "credit")).unwrap();
        // The commit appends CommitMulti to partition 0 first (participants
        // ascend), then dies mid-append on partition 1's stream. Visits
        // count from arming, so partition 1's first armed append *is* the
        // CommitMulti record.
        let guard = chaos::arm(chaos::Schedule::new().torn_at("wal.append.p1", 1, 5));
        db.commit(t).unwrap_err();
        assert_eq!(guard.fired().len(), 1);
        drop(guard);
        // Process crash.
    }
    {
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts).unwrap();
        assert_eq!(
            ids(&db, "acct"),
            vec![1],
            "partial cross-partition commit must roll back"
        );
        assert_eq!(ids(&db, "dbo.acct"), Vec::<i64>::new());
        // And the database keeps working, including cross-partition txns.
        let t = db.begin().unwrap();
        db.insert(t, "acct", row(3, "x")).unwrap();
        db.insert(t, "dbo.acct", row(3, "y")).unwrap();
        db.commit(t).unwrap();
    }
    {
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts).unwrap();
        assert_eq!(ids(&db, "acct"), vec![1, 3]);
        assert_eq!(ids(&db, "dbo.acct"), vec![3]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An aborted transaction with the highest txn id must still advance the
/// checkpoint mark: after checkpoint + crash, recovered transaction ids
/// may not collide with the aborted one, and its effects stay invisible.
#[test]
fn abort_advances_checkpoint_mark() {
    let dir = temp_dir("abort-mark");

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("dbo.t")).unwrap();
        db.commit(t).unwrap();
        commit_rows(&db, "dbo.t", &[(1, "a")]);

        // Aborted txn holds the largest id when the checkpoint runs.
        let t = db.begin().unwrap();
        db.insert(t, "dbo.t", row(99, "rolled back")).unwrap();
        db.abort(t).unwrap();
        db.checkpoint().unwrap();
    }

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(ids(&db, "dbo.t"), vec![1], "aborted insert stays invisible");
        commit_rows(&db, "dbo.t", &[(2, "b")]);
    }

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(ids(&db, "dbo.t"), vec![1, 2]);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
