// The offline build environment has no `proptest` crate available, so these
// property tests are compiled only when the `slow-proptests` feature is
// enabled (which requires supplying a real proptest dependency).
#![cfg(feature = "slow-proptests")]

//! Property tests of the durability substrate:
//!
//! 1. The binary codec round-trips every value/row/schema.
//! 2. **Crash-recovery equivalence**: for any interleaving of committed and
//!    uncommitted transactions over the durable layer, reopening after a
//!    simulated crash (drop without checkpoint, plus optional torn tail)
//!    reconstructs exactly the committed state — the invariant everything
//!    above (the engine, Phoenix, the paper's whole design) stands on.

use proptest::prelude::*;

use phoenix_storage::codec;
use phoenix_storage::db::{Durability, Durable};
use phoenix_storage::types::{Column, DataType, Row, Schema, TableDef, Value};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-storage-prop-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("no NaN (PartialEq)", |f| !f.is_nan())
            .prop_map(Value::Float),
        "[ -~]{0,20}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Date),
    ]
}

fn row() -> impl Strategy<Value = Row> {
    prop::collection::vec(value(), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_codec_roundtrip(v in value()) {
        let mut buf = bytes::BytesMut::new();
        codec::put_value(&mut buf, &v);
        let mut b = buf.freeze();
        prop_assert_eq!(codec::get_value(&mut b).unwrap(), v);
        prop_assert_eq!(bytes::Buf::remaining(&b), 0);
    }

    #[test]
    fn row_codec_roundtrip(r in row()) {
        let mut buf = bytes::BytesMut::new();
        codec::put_row(&mut buf, &r);
        let mut b = buf.freeze();
        prop_assert_eq!(codec::get_row(&mut b).unwrap(), r);
    }

    #[test]
    fn codec_rejects_arbitrary_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Must never panic; may legitimately decode if the bytes happen to
        // be valid.
        let mut b = bytes::Bytes::from(bytes);
        let _ = codec::get_value(&mut b);
    }
}

/// Abstract op in a transaction script.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    /// Delete the `k % live`-th live row.
    Delete(usize),
    /// Update the `k % live`-th live row to a new value.
    Update(usize, i64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::Insert),
        any::<usize>().prop_map(Op::Delete),
        (any::<usize>(), any::<i64>()).prop_map(|(k, v)| Op::Update(k, v)),
    ]
}

#[derive(Debug, Clone)]
struct TxnScript {
    ops: Vec<Op>,
    commit: bool,
}

fn txn_script() -> impl Strategy<Value = TxnScript> {
    (prop::collection::vec(op(), 0..8), any::<bool>())
        .prop_map(|(ops, commit)| TxnScript { ops, commit })
}

fn table_def() -> TableDef {
    TableDef::new("dbo.t", Schema::new(vec![Column::new("v", DataType::Int)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply a random sequence of transactions (some committed, some
    /// aborted, the final one possibly left in flight), "crash" by dropping
    /// the handle, reopen, and compare against a pure in-memory model that
    /// saw only the committed transactions.
    #[test]
    fn recovery_reconstructs_exactly_committed_state(
        scripts in prop::collection::vec(txn_script(), 1..8),
        leave_last_open in any::<bool>(),
        checkpoint_after in prop::option::of(0usize..8),
    ) {
        let dir = temp_dir();
        let mut model: Vec<(u64, i64)> = Vec::new(); // (row_id, value)
        {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t0 = db.begin().unwrap();
            db.create_table(t0, table_def()).unwrap();
            db.commit(t0).unwrap();

            for (si, script) in scripts.iter().enumerate() {
                let txn = db.begin().unwrap();
                let mut scratch = model.clone();
                let mut ok = true;
                for op in &script.ops {
                    match op {
                        Op::Insert(v) => {
                            let rid = db.insert(txn, "dbo.t", vec![Value::Int(*v)]).unwrap();
                            scratch.push((rid, *v));
                        }
                        Op::Delete(k) => {
                            if scratch.is_empty() { continue; }
                            let idx = k % scratch.len();
                            let (rid, _) = scratch.remove(idx);
                            db.delete(txn, "dbo.t", rid).unwrap();
                        }
                        Op::Update(k, v) => {
                            if scratch.is_empty() { continue; }
                            let idx = k % scratch.len();
                            let rid = scratch[idx].0;
                            db.update(txn, "dbo.t", rid, vec![Value::Int(*v)]).unwrap();
                            scratch[idx].1 = *v;
                        }
                    }
                }
                let last = si == scripts.len() - 1;
                if last && leave_last_open {
                    // Crash with this transaction in flight: its effects
                    // must not survive.
                    ok = false;
                } else if script.commit {
                    db.commit(txn).unwrap();
                } else {
                    db.abort(txn).unwrap();
                    ok = false;
                }
                if ok && script.commit {
                    model = scratch;
                }
                if Some(si) == checkpoint_after && !(last && leave_last_open) {
                    db.checkpoint().unwrap();
                }
            }
            // Crash: drop without checkpoint.
        }

        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let snap = db.snapshot();
        let table = snap.table("dbo.t").unwrap();
        let mut recovered: Vec<(u64, i64)> = table
            .rows
            .iter()
            .map(|(rid, row)| (*rid, row[0].as_i64().unwrap()))
            .collect();
        recovered.sort_unstable();
        let mut expect = model.clone();
        expect.sort_unstable();
        prop_assert_eq!(recovered, expect);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A torn tail (truncated log) never breaks recovery and loses at most
    /// the torn suffix — committed transactions whose commit record survived
    /// the truncation are intact.
    #[test]
    fn torn_tail_is_survivable(values in prop::collection::vec(any::<i64>(), 1..20), cut in 1usize..64) {
        let dir = temp_dir();
        {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t0 = db.begin().unwrap();
            db.create_table(t0, table_def()).unwrap();
            db.commit(t0).unwrap();
            for v in &values {
                let t = db.begin().unwrap();
                db.insert(t, "dbo.t", vec![Value::Int(*v)]).unwrap();
                db.commit(t).unwrap();
            }
        }
        // Tear the tail.
        let wal = dir.join("phoenix.wal");
        let len = std::fs::metadata(&wal).unwrap().len();
        let new_len = len.saturating_sub(cut as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(new_len).unwrap();
        drop(f);

        // Recovery must succeed, and every surviving row must be a prefix-
        // respecting subset of the inserted values (commits are sequential,
        // so losses come only from the tail).
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let snap = db.snapshot();
        let table = snap.table("dbo.t").unwrap();
        let recovered: Vec<i64> = table.rows.values().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert!(recovered.len() <= values.len());
        prop_assert_eq!(&recovered[..], &values[..recovered.len()]);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// **Snapshot immutability**: a snapshot taken at an arbitrary point
    /// keeps showing exactly the image at capture time, no matter what
    /// random mutations (committed, aborted, or left open) run afterwards.
    #[test]
    fn snapshot_observes_pre_mutation_image(
        seed_values in prop::collection::vec(any::<i64>(), 0..12),
        scripts in prop::collection::vec(txn_script(), 1..6),
    ) {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t0 = db.begin().unwrap();
        db.create_table(t0, table_def()).unwrap();
        let mut model: Vec<(u64, i64)> = Vec::new();
        for v in &seed_values {
            let rid = db.insert(t0, "dbo.t", vec![Value::Int(*v)]).unwrap();
            model.push((rid, *v));
        }
        db.commit(t0).unwrap();

        // Capture the image, then mutate at will.
        let snap = db.snapshot();
        for script in &scripts {
            let txn = db.begin().unwrap();
            let mut scratch = model.clone();
            for op in &script.ops {
                match op {
                    Op::Insert(v) => {
                        let rid = db.insert(txn, "dbo.t", vec![Value::Int(*v)]).unwrap();
                        scratch.push((rid, *v));
                    }
                    Op::Delete(k) => {
                        if scratch.is_empty() { continue; }
                        let (rid, _) = scratch.remove(k % scratch.len());
                        db.delete(txn, "dbo.t", rid).unwrap();
                    }
                    Op::Update(k, v) => {
                        if scratch.is_empty() { continue; }
                        let idx = k % scratch.len();
                        db.update(txn, "dbo.t", scratch[idx].0, vec![Value::Int(*v)]).unwrap();
                        scratch[idx].1 = *v;
                    }
                }
            }
            if script.commit {
                db.commit(txn).unwrap();
                model = scratch;
            } else {
                db.abort(txn).unwrap();
            }
        }

        // The old snapshot still shows exactly the pre-mutation rows.
        let table = snap.table("dbo.t").unwrap();
        let mut seen: Vec<(u64, i64)> = table
            .rows
            .iter()
            .map(|(rid, row)| (*rid, row[0].as_i64().unwrap()))
            .collect();
        seen.sort_unstable();
        let mut expect: Vec<(u64, i64)> = seed_values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64 + 1, *v))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);

        // And a fresh snapshot agrees with the model.
        let fresh = db.snapshot();
        let table = fresh.table("dbo.t").unwrap();
        let mut now: Vec<(u64, i64)> = table
            .rows
            .iter()
            .map(|(rid, row)| (*rid, row[0].as_i64().unwrap()))
            .collect();
        now.sort_unstable();
        model.sort_unstable();
        prop_assert_eq!(now, model);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `Eq`, `Ord` and `Hash` on [`Value`] must be mutually consistent —
    /// the contract BTreeMap (primary-key indexes) and HashMap (hash joins)
    /// require. Floats use IEEE total ordering throughout.
    #[test]
    fn value_eq_ord_hash_consistent(a in value(), b in value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        // Ord consistent with Eq.
        prop_assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
        // Hash consistent with Eq.
        if a == b {
            prop_assert_eq!(hash(&a), hash(&b));
        }
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Reflexivity.
        prop_assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    /// Transitivity of the total order (sampled).
    #[test]
    fn value_ord_transitive(a in value(), b in value(), c in value()) {
        let mut vs = [a, b, c];
        vs.sort();
        prop_assert!(vs[0] <= vs[1] && vs[1] <= vs[2] && vs[0] <= vs[2]);
    }
}
