//! Satellite regression: a crash *mid-append* (torn WAL frame) followed by
//! recovery and new appends must never lose the new work.
//!
//! Before `Wal::open` learned to truncate the torn tail, the sequence
//! "crash mid-append → recover → commit new txn → crash again" silently lost
//! the new commit: the post-recovery frames sat after the garbage bytes,
//! where the tail-scan discipline discards them.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_chaos as chaos;
use phoenix_storage::db::{Durability, Durable};
use phoenix_storage::types::{Column, DataType, Row, Schema, TableDef, Value};
use phoenix_storage::wal::Wal;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "phoenix-crash-mid-append-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn def() -> TableDef {
    TableDef::new(
        "dbo.t",
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("v", DataType::Text),
        ]),
    )
    .with_primary_key(vec![0])
}

fn row(id: i64, v: &str) -> Row {
    vec![Value::Int(id), Value::Text(v.into())]
}

fn ids(db: &Durable) -> Vec<i64> {
    let snap = db.snapshot();
    let mut ids: Vec<i64> = snap
        .table("dbo.t")
        .unwrap()
        .rows
        .values()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            _ => panic!("non-int id"),
        })
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn crash_mid_append_then_append_keeps_both_sides() {
    let dir = temp_dir("torn");

    // A committed transaction the crash must not touch.
    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "before")).unwrap();
        db.commit(t).unwrap();
    }

    // Die mid-append: the next WAL append persists 11 bytes of its frame
    // and fails, leaving a torn tail on disk.
    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        // Arm after `begin` — the torn frame is the *insert's* log record.
        let t = db.begin().unwrap();
        let guard = chaos::arm(chaos::Schedule::new().torn_at("wal.append", 1, 11));
        let err = db.insert(t, "dbo.t", row(2, "torn")).unwrap_err();
        assert!(err.to_string().contains("phoenix-chaos"));
        assert!(chaos::crash_requested());
        assert_eq!(guard.fired().len(), 1);
        drop(guard);
        // Process death: drop the handle without abort/checkpoint.
    }

    // Recover; the uncommitted torn record must be invisible, and — the
    // actual regression — a *new* commit after recovery must be readable.
    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(ids(&db), vec![1], "torn uncommitted insert is gone");
        let t = db.begin().unwrap();
        db.insert(t, "dbo.t", row(3, "after")).unwrap();
        db.commit(t).unwrap();
    }

    // Crash again (drop without checkpoint) and recover: both the original
    // commit and the post-recovery commit survive.
    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(ids(&db), vec![1, 3], "append after torn tail survived");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_frame_bytes_are_really_on_disk_and_trimmed() {
    let dir = temp_dir("trim");
    let wal_path;

    {
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.commit(t).unwrap();
        wal_path = dir.join("phoenix.wal");

        let t = db.begin().unwrap();
        let clean_len = std::fs::metadata(&wal_path).unwrap().len();
        let _guard = chaos::arm(chaos::Schedule::new().torn_at("wal.append", 1, 5));
        db.insert(t, "dbo.t", row(9, "x")).unwrap_err();
        // The torn prefix reached the file: exactly 5 bytes past the clean end.
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            clean_len + 5,
            "torn write left a partial frame on disk"
        );
    }

    // Reopening the raw WAL trims the partial frame before the first append.
    let frames_before = Wal::read_all(&wal_path).unwrap();
    let mut wal = Wal::open(&wal_path).unwrap();
    wal.append(b"fresh").unwrap();
    wal.sync().unwrap();
    drop(wal);
    let frames_after = Wal::read_all(&wal_path).unwrap();
    assert_eq!(frames_after.len(), frames_before.len() + 1);
    assert_eq!(frames_after.last().unwrap(), b"fresh");

    std::fs::remove_dir_all(&dir).unwrap();
}
