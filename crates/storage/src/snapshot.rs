//! Checkpointing: full-state snapshots written atomically.
//!
//! A snapshot serializes the entire durable [`Store`] plus the transaction-id
//! high-water mark. It is written to a temporary file, fsynced, and renamed
//! over the live snapshot — the classic atomic-replace pattern — after which
//! the WAL can be truncated. Recovery loads the snapshot (if any) and replays
//! the remaining log on top.

use bytes::{Buf, BufMut, BytesMut};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use crate::codec::{self, DecodeError};
use crate::crc::crc32;
use crate::store::{Store, TableData};
use crate::types::TxnId;

/// Magic header identifying a phoenix snapshot file (and its format version).
const MAGIC: &[u8; 8] = b"PHXSNAP1";

/// Serialize the store + txn high-water mark to bytes.
fn encode(store: &Store, last_txn: TxnId) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u64_le(last_txn);

    let names = store.table_names();
    buf.put_u32_le(names.len() as u32);
    for name in &names {
        let t = store.table(name).expect("table listed but missing");
        codec::put_table_def(&mut buf, &t.def);
        buf.put_u64_le(t.next_row_id);
        buf.put_u64_le(t.rows.len() as u64);
        for (row_id, row) in &t.rows {
            buf.put_u64_le(*row_id);
            codec::put_row(&mut buf, row);
        }
    }

    let procs = store.proc_names();
    buf.put_u32_le(procs.len() as u32);
    for name in &procs {
        let sql = store.proc(name).expect("proc listed but missing");
        codec::put_str(&mut buf, name);
        codec::put_str(&mut buf, sql);
    }

    let body = buf.freeze();
    // Trailing CRC over everything, so a torn snapshot write is detectable
    // (the atomic rename makes this nearly impossible, but cheap belt and
    // braces for the file that everything else depends on).
    let mut out = body.to_vec();
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

fn decode(bytes: &[u8]) -> Result<(Store, TxnId), DecodeError> {
    if bytes.len() < MAGIC.len() + 8 + 4 {
        return Err(DecodeError("snapshot too short".into()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(DecodeError("snapshot checksum mismatch".into()));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError("bad snapshot magic".into()));
    }
    let last_txn = buf.get_u64_le();

    let mut store = Store::new();
    let ntables = buf.get_u32_le();
    for _ in 0..ntables {
        let def = codec::get_table_def(&mut buf)?;
        if buf.remaining() < 16 {
            return Err(DecodeError("truncated table header".into()));
        }
        let next_row_id = buf.get_u64_le();
        let nrows = buf.get_u64_le();
        let mut data = TableData::new(def);
        for _ in 0..nrows {
            if buf.remaining() < 8 {
                return Err(DecodeError("truncated row id".into()));
            }
            let row_id = buf.get_u64_le();
            let row = codec::get_row(&mut buf)?;
            data.insert_with_id(row_id, row)
                .map_err(|e| DecodeError(format!("snapshot row rejected: {e}")))?;
        }
        data.next_row_id = next_row_id;
        store.install_table(data);
    }

    if buf.remaining() < 4 {
        return Err(DecodeError("truncated proc count".into()));
    }
    let nprocs = buf.get_u32_le();
    for _ in 0..nprocs {
        let name = codec::get_str(&mut buf)?;
        let sql = codec::get_str(&mut buf)?;
        store
            .create_proc(&name, &sql)
            .map_err(|e| DecodeError(format!("snapshot proc rejected: {e}")))?;
    }
    Ok((store, last_txn))
}

/// Write a snapshot atomically: temp file + fsync + rename + dir fsync.
pub fn write(path: impl AsRef<Path>, store: &Store, last_txn: TxnId) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    let bytes = encode(store, last_txn);
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
    }
    Ok(())
}

/// Load the snapshot at `path`. Returns `Ok(None)` when no snapshot exists.
pub fn load(path: impl AsRef<Path>) -> io::Result<Option<(Store, TxnId)>> {
    let mut bytes = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    decode(&bytes)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, TableDef, Value};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("phoenix-snap-test-{}-{n}.snap", std::process::id()))
    }

    fn sample_store() -> Store {
        let mut s = Store::new();
        s.create_table(
            TableDef::new(
                "dbo.t",
                Schema::new(vec![
                    Column::new("id", DataType::Int).not_null(),
                    Column::new("v", DataType::Text),
                ]),
            )
            .with_primary_key(vec![0]),
        )
        .unwrap();
        let t = s.table_mut("dbo.t").unwrap();
        t.insert(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        s.create_proc("phoenix.p", "SELECT * FROM dbo.t").unwrap();
        s
    }

    #[test]
    fn snapshot_roundtrip() {
        let path = temp_path();
        let store = sample_store();
        write(&path, &store, 42).unwrap();
        let (loaded, last_txn) = load(&path).unwrap().unwrap();
        assert_eq!(last_txn, 42);
        assert_eq!(loaded.table_names(), store.table_names());
        let t = loaded.table("dbo.t").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row_id_by_key(&[Value::Int(2)]), Some(2));
        assert_eq!(t.next_row_id, 3);
        assert_eq!(loaded.proc("phoenix.p"), Some("SELECT * FROM dbo.t"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none() {
        assert!(load(temp_path()).unwrap().is_none());
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let path = temp_path();
        write(&path, &sample_store(), 1).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overwrite_replaces_previous_snapshot() {
        let path = temp_path();
        write(&path, &sample_store(), 1).unwrap();
        let mut bigger = sample_store();
        bigger
            .table_mut("dbo.t")
            .unwrap()
            .insert(vec![Value::Int(3), Value::Null])
            .unwrap();
        write(&path, &bigger, 2).unwrap();
        let (loaded, last_txn) = load(&path).unwrap().unwrap();
        assert_eq!(last_txn, 2);
        assert_eq!(loaded.table("dbo.t").unwrap().len(), 3);
        fs::remove_file(&path).unwrap();
    }
}
