//! Checkpointing: incremental, multi-segment snapshots.
//!
//! A checkpoint no longer serializes the whole store into one file. It
//! writes one *segment* file per table (only for tables whose data changed
//! since the previous checkpoint — the copy-on-write `Arc` pointers make
//! "changed" an O(1) identity test) and then a small *manifest* naming the
//! segment each table lives in, the committed-transaction high-water mark,
//! and the stored-procedure catalog. Every file is written with the classic
//! temp-file + fsync + rename discipline; the manifest rename is the commit
//! point of the whole checkpoint.
//!
//! The **mark** is the recovery contract's linchpin: every transaction with
//! id ≤ mark that finished did so before the snapshot image was captured,
//! so its effects are already materialized in the segments. Recovery must
//! skip log records with `txn ≤ mark` — replaying them would apply the
//! mutation twice (see `Durable::open`).
//!
//! On-disk layout inside the data directory:
//!
//! ```text
//! phoenix.snapshot            manifest (see MANIFEST_MAGIC)
//! phoenix.<gen>.<idx>.seg     one table's data (see SEGMENT_MAGIC)
//! ```
//!
//! Segment files are content-immutable once renamed into place: a later
//! checkpoint that touches the table writes a *new* segment under its own
//! generation number and the old one becomes garbage, collected only after
//! the new manifest is durable.

use bytes::{Buf, BufMut, BytesMut};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use crate::codec::{self, DecodeError};
use crate::crc::crc32;
use crate::store::{Store, TableData};
use crate::types::TxnId;

/// Magic header identifying a phoenix snapshot manifest (format version 2 —
/// the multi-segment layout; version 1 was the monolithic `PHXSNAP1`).
const MANIFEST_MAGIC: &[u8; 8] = b"PHXMANI2";

/// Magic header identifying one table segment.
const SEGMENT_MAGIC: &[u8; 8] = b"PHXSEGM1";

/// The checkpoint manifest: which segment file holds each table, plus the
/// recovery metadata that used to ride in the monolithic snapshot header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Committed/finished-transaction high-water mark at the instant the
    /// snapshot image was captured. Recovery skips log records with
    /// `txn ≤ mark`: their effects are already in the segments.
    pub mark: TxnId,
    /// Checkpoint generation, monotonically increasing. Segment files embed
    /// the generation that wrote them, so names never collide.
    pub gen: u64,
    /// `(canonical table name, segment file name)` pairs, sorted by name.
    pub tables: Vec<(String, String)>,
    /// `(name, sql)` of every stored procedure (tiny; kept inline).
    pub procs: Vec<(String, String)>,
}

/// Name of the segment file for table index `idx` written by checkpoint
/// generation `gen`.
pub fn segment_file_name(gen: u64, idx: usize) -> String {
    format!("phoenix.{gen:06}.{idx}.seg")
}

fn write_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

fn read_file(path: &Path) -> io::Result<Option<Vec<u8>>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
            Ok(Some(bytes))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

fn seal(mut body: Vec<u8>) -> Vec<u8> {
    // Trailing CRC over everything, so a torn write is detectable (the
    // atomic rename makes this nearly impossible, but cheap belt and braces
    // for files everything else depends on).
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

fn unseal<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u8], DecodeError> {
    if bytes.len() < 12 {
        return Err(DecodeError(format!("{what} too short")));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(DecodeError(format!("{what} checksum mismatch")));
    }
    Ok(body)
}

fn decode_err(e: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Write one table's data as a segment file (temp + fsync + rename).
pub fn write_segment(path: &Path, table: &TableData) -> io::Result<()> {
    let mut buf = BytesMut::new();
    buf.put_slice(SEGMENT_MAGIC);
    codec::put_table_def(&mut buf, &table.def);
    buf.put_u64_le(table.next_row_id);
    buf.put_u64_le(table.rows.len() as u64);
    for (row_id, row) in &table.rows {
        buf.put_u64_le(*row_id);
        codec::put_row(&mut buf, row);
    }
    write_atomically(path, &seal(buf.to_vec()))
}

/// Load one table segment.
pub fn load_segment(path: &Path) -> io::Result<TableData> {
    let bytes = read_file(path)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("missing snapshot segment {}", path.display()),
        )
    })?;
    let mut buf = unseal(&bytes, "segment").map_err(decode_err)?;
    let mut magic = [0u8; 8];
    if buf.remaining() < 8 {
        return Err(decode_err(DecodeError("segment too short".into())));
    }
    buf.copy_to_slice(&mut magic);
    if &magic != SEGMENT_MAGIC {
        return Err(decode_err(DecodeError("bad segment magic".into())));
    }
    let mut inner = || -> Result<TableData, DecodeError> {
        let def = codec::get_table_def(&mut buf)?;
        if buf.remaining() < 16 {
            return Err(DecodeError("truncated segment header".into()));
        }
        let next_row_id = buf.get_u64_le();
        let nrows = buf.get_u64_le();
        let mut data = TableData::new(def);
        for _ in 0..nrows {
            if buf.remaining() < 8 {
                return Err(DecodeError("truncated row id".into()));
            }
            let row_id = buf.get_u64_le();
            let row = codec::get_row(&mut buf)?;
            data.insert_with_id(row_id, row)
                .map_err(|e| DecodeError(format!("segment row rejected: {e}")))?;
        }
        data.next_row_id = next_row_id;
        Ok(data)
    };
    inner().map_err(decode_err)
}

/// Write the manifest atomically, then fsync the directory so the rename —
/// the checkpoint's commit point — survives power loss.
pub fn write_manifest(path: &Path, m: &Manifest) -> io::Result<()> {
    let mut buf = BytesMut::new();
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u64_le(m.mark);
    buf.put_u64_le(m.gen);
    buf.put_u32_le(m.tables.len() as u32);
    for (name, file) in &m.tables {
        codec::put_str(&mut buf, name);
        codec::put_str(&mut buf, file);
    }
    buf.put_u32_le(m.procs.len() as u32);
    for (name, sql) in &m.procs {
        codec::put_str(&mut buf, name);
        codec::put_str(&mut buf, sql);
    }
    write_atomically(path, &seal(buf.to_vec()))?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself — and, transitively, the earlier
        // segment renames in the same directory.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
    }
    Ok(())
}

/// Load the manifest at `path`. Returns `Ok(None)` when none exists.
pub fn load_manifest(path: &Path) -> io::Result<Option<Manifest>> {
    let Some(bytes) = read_file(path)? else {
        return Ok(None);
    };
    let mut buf = unseal(&bytes, "manifest").map_err(decode_err)?;
    let mut magic = [0u8; 8];
    if buf.remaining() < 8 {
        return Err(decode_err(DecodeError("manifest too short".into())));
    }
    buf.copy_to_slice(&mut magic);
    if &magic != MANIFEST_MAGIC {
        return Err(decode_err(DecodeError("bad manifest magic".into())));
    }
    let mut inner = || -> Result<Manifest, DecodeError> {
        if buf.remaining() < 20 {
            return Err(DecodeError("truncated manifest header".into()));
        }
        let mark = buf.get_u64_le();
        let gen = buf.get_u64_le();
        let ntables = buf.get_u32_le();
        let mut tables = Vec::with_capacity(ntables as usize);
        for _ in 0..ntables {
            let name = codec::get_str(&mut buf)?;
            let file = codec::get_str(&mut buf)?;
            tables.push((name, file));
        }
        if buf.remaining() < 4 {
            return Err(DecodeError("truncated proc count".into()));
        }
        let nprocs = buf.get_u32_le();
        let mut procs = Vec::with_capacity(nprocs as usize);
        for _ in 0..nprocs {
            let name = codec::get_str(&mut buf)?;
            let sql = codec::get_str(&mut buf)?;
            procs.push((name, sql));
        }
        Ok(Manifest {
            mark,
            gen,
            tables,
            procs,
        })
    };
    inner().map(Some).map_err(decode_err)
}

/// A fully loaded snapshot: the materialized store plus the metadata the
/// durability layer needs to filter replay and to diff the next checkpoint.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The store rebuilt from the manifest's segments.
    pub store: Store,
    /// Replay high-water mark (skip log records with `txn ≤ mark`).
    pub mark: TxnId,
    /// Generation of the manifest (the next checkpoint uses `gen + 1`).
    pub gen: u64,
    /// Normalized table key → segment file holding its image.
    pub segments: HashMap<String, String>,
}

/// Load the snapshot anchored at manifest `path`, with segments resolved
/// relative to `dir`. Returns `Ok(None)` when no manifest exists.
pub fn load(dir: &Path, path: &Path) -> io::Result<Option<LoadedSnapshot>> {
    let Some(manifest) = load_manifest(path)? else {
        return Ok(None);
    };
    let mut store = Store::new();
    let mut segments = HashMap::with_capacity(manifest.tables.len());
    for (name, file) in &manifest.tables {
        let data = load_segment(&dir.join(file))?;
        segments.insert(crate::store::normalize_name(name), file.clone());
        store.install_table(data);
    }
    for (name, sql) in &manifest.procs {
        store
            .create_proc(name, sql)
            .map_err(|e| decode_err(DecodeError(format!("manifest proc rejected: {e}"))))?;
    }
    Ok(Some(LoadedSnapshot {
        store,
        mark: manifest.mark,
        gen: manifest.gen,
        segments,
    }))
}

/// Delete segment files (and stale temp files) in `dir` that no live
/// manifest references. Called after the new manifest is durable; `keep`
/// is the set of segment file names the manifest points at.
pub fn remove_orphan_segments(
    dir: &Path,
    keep: &std::collections::HashSet<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let dead = name.starts_with("phoenix.")
            && (name.ends_with(".seg") && !keep.contains(name) || name.ends_with(".tmp"));
        if dead {
            match fs::remove_file(entry.path()) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, TableDef, Value};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("phoenix-snap-test-{}-{n}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_store() -> Store {
        let mut s = Store::new();
        s.create_table(
            TableDef::new(
                "dbo.t",
                Schema::new(vec![
                    Column::new("id", DataType::Int).not_null(),
                    Column::new("v", DataType::Text),
                ]),
            )
            .with_primary_key(vec![0]),
        )
        .unwrap();
        let t = s.table_mut("dbo.t").unwrap();
        t.insert(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        s.create_proc("phoenix.p", "SELECT * FROM dbo.t").unwrap();
        s
    }

    /// Write a full snapshot of `store` the way a (non-incremental)
    /// checkpoint would: every table gets a fresh segment under `gen`.
    fn write_full(dir: &Path, store: &Store, mark: TxnId, gen: u64) {
        let mut tables = Vec::new();
        for (idx, name) in store.table_names().iter().enumerate() {
            let file = segment_file_name(gen, idx);
            write_segment(&dir.join(&file), store.table(name).unwrap()).unwrap();
            tables.push((name.clone(), file));
        }
        let procs = store
            .proc_names()
            .iter()
            .map(|n| (n.clone(), store.proc(n).unwrap().to_string()))
            .collect();
        write_manifest(
            &dir.join("phoenix.snapshot"),
            &Manifest {
                mark,
                gen,
                tables,
                procs,
            },
        )
        .unwrap();
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = temp_dir();
        let store = sample_store();
        write_full(&dir, &store, 42, 1);
        let loaded = load(&dir, &dir.join("phoenix.snapshot")).unwrap().unwrap();
        assert_eq!(loaded.mark, 42);
        assert_eq!(loaded.gen, 1);
        assert_eq!(loaded.store.table_names(), store.table_names());
        let t = loaded.store.table("dbo.t").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row_id_by_key(&[Value::Int(2)]), Some(2));
        assert_eq!(t.next_row_id, 3);
        assert_eq!(loaded.store.proc("phoenix.p"), Some("SELECT * FROM dbo.t"));
        assert_eq!(loaded.segments.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = temp_dir();
        assert!(load(&dir, &dir.join("phoenix.snapshot")).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let dir = temp_dir();
        write_full(&dir, &sample_store(), 1, 1);
        let path = dir.join("phoenix.snapshot");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load(&dir, &path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_is_an_error() {
        let dir = temp_dir();
        write_full(&dir, &sample_store(), 1, 1);
        let seg = dir.join(segment_file_name(1, 0));
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(load(&dir, &dir.join("phoenix.snapshot")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_an_error() {
        let dir = temp_dir();
        write_full(&dir, &sample_store(), 1, 1);
        fs::remove_file(dir.join(segment_file_name(1, 0))).unwrap();
        assert!(load(&dir, &dir.join("phoenix.snapshot")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_replaces_previous_snapshot() {
        let dir = temp_dir();
        write_full(&dir, &sample_store(), 1, 1);
        let mut bigger = sample_store();
        bigger
            .table_mut("dbo.t")
            .unwrap()
            .insert(vec![Value::Int(3), Value::Null])
            .unwrap();
        write_full(&dir, &bigger, 2, 2);
        let loaded = load(&dir, &dir.join("phoenix.snapshot")).unwrap().unwrap();
        assert_eq!(loaded.mark, 2);
        assert_eq!(loaded.store.table("dbo.t").unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_cleanup_spares_live_segments() {
        let dir = temp_dir();
        write_full(&dir, &sample_store(), 1, 1);
        // A dead segment from an older generation plus a stale temp file.
        fs::write(dir.join(segment_file_name(0, 3)), b"dead").unwrap();
        fs::write(dir.join("phoenix.000002.0.tmp"), b"stale").unwrap();
        let keep: std::collections::HashSet<String> =
            std::iter::once(segment_file_name(1, 0)).collect();
        remove_orphan_segments(&dir, &keep).unwrap();
        assert!(dir.join(segment_file_name(1, 0)).exists());
        assert!(!dir.join(segment_file_name(0, 3)).exists());
        assert!(!dir.join("phoenix.000002.0.tmp").exists());
        // The store still loads.
        assert!(load(&dir, &dir.join("phoenix.snapshot")).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
