//! Storage-side primitives for WAL-shipping replication.
//!
//! The primary tails its own log through a *replication tap* owned by
//! [`crate::db::Durable`]: when a shipper attaches, every WAL append also
//! stages a `(partition, gsn, record)` frame into an in-memory queue, and
//! the group committer advances a per-partition *durable watermark* after
//! each successful fsync. The shipper drains the queue in strict GSN order,
//! never handing out a frame that is not yet on the primary's stable
//! storage (under `Durability::Fsync`) — the tap is, by construction, a tap
//! of the group committer's post-fsync stream.
//!
//! The standby side builds the inverse: [`warm_load`] recovers a standby
//! data directory into a *warm image* — the store with every **decided**
//! prefix record applied, plus the undecided tail — which the `phoenix-repl`
//! applier keeps extending as frames arrive. Promotion turns the warm image
//! into a full [`crate::db::Durable`] via `Durable::open_warm`, replaying
//! only the records the applier had not yet materialized.
//!
//! Everything here is bit-compatible with crash recovery: the shipped
//! frames are exactly the `[gsn u64 LE][record]` payloads of the WAL
//! streams, and the standby appends them to its own per-partition logs, so
//! a standby directory *is* a valid primary directory at every instant.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64};

use parking_lot::{Condvar, Mutex};

use crate::db::{DbError, Durable, MAX_PARTITIONS};
use crate::record::LogRecord;
use crate::snapshot;
use crate::store::Store;
use crate::types::TxnId;
use crate::wal::Wal;

/// One frame handed to the shipper: `(partition, gsn, encoded record)`.
/// The record bytes are the `LogRecord` encoding *without* the GSN prefix;
/// the standby re-prefixes the GSN when appending to its own streams.
pub type ShipFrame = (u8, u64, Vec<u8>);

/// Upper bound on staged-but-unshipped frames. A shipper that falls this
/// far behind the write rate loses the queue (`lost`) and must re-attach
/// with a disk catch-up — bounding primary memory instead of primary
/// throughput.
pub(crate) const TAP_CAP: usize = 1 << 16;

/// Lifecycle of a staged frame. A frame's GSN is allocated and the frame
/// staged *before* the append's outcome is known, so the queue stays
/// gap-free; a failed append leaves a `Dead` tombstone that is popped but
/// never shipped.
pub(crate) enum FrameState {
    /// GSN allocated; append outcome not yet known.
    Staged,
    /// On the partition's live log (shippable once covered by the durable
    /// watermark, or immediately under `Durability::Buffered`).
    Appended,
    /// The append failed; the frame never reached the log.
    Dead,
}

/// One staged frame.
pub(crate) struct TapFrame {
    pub gsn: u64,
    pub partition: u8,
    pub record: Vec<u8>,
    pub state: FrameState,
}

/// The mutable part of the tap, behind one mutex.
pub(crate) struct TapState {
    /// Strictly GSN-ordered, gap-free (modulo `Dead` tombstones).
    pub frames: VecDeque<TapFrame>,
    /// The queue overflowed [`TAP_CAP`] and was discarded; the attached
    /// shipper must detach and re-attach with a disk catch-up.
    pub lost: bool,
}

/// The replication tap. One per [`Durable`]; dormant (a single relaxed
/// atomic load per append) until a shipper attaches.
pub(crate) struct ReplTap {
    /// A shipper is attached and appends must stage frames.
    pub enabled: AtomicBool,
    pub state: Mutex<TapState>,
    /// Signalled when new frames may have become shippable.
    pub cv: Condvar,
    /// Per-partition durable GSN watermark: every frame of partition `k`
    /// with `gsn ≤ durable[k]` is fsynced. Advanced by the group-commit
    /// leader after each successful sync.
    pub durable: [AtomicU64; MAX_PARTITIONS],
    /// Highest GSN a standby has acknowledged as received and persisted.
    /// Semi-sync commits wait on this.
    pub acked: Mutex<u64>,
    /// Signalled when `acked` advances (and on detach, so semi-sync waiters
    /// re-check their exit conditions).
    pub acked_cv: Condvar,
}

impl ReplTap {
    pub(crate) fn new() -> ReplTap {
        ReplTap {
            enabled: AtomicBool::new(false),
            state: Mutex::new(TapState {
                frames: VecDeque::new(),
                lost: false,
            }),
            cv: Condvar::new(),
            durable: std::array::from_fn(|_| AtomicU64::new(0)),
            acked: Mutex::new(0),
            acked_cv: Condvar::new(),
        }
    }
}

/// The image a warm standby hands to `Durable::open_warm` at promotion:
/// the store with everything below the watermark already applied.
pub struct WarmImage {
    /// The warm store: snapshot + every decided record with
    /// `gsn < applied_below_gsn` applied.
    pub store: Store,
    /// All log records with `gsn` below this are materialized in `store`
    /// (applied if committed past the mark, correctly skipped otherwise).
    pub applied_below_gsn: u64,
    /// The snapshot high-water mark the store was seeded from: records with
    /// `txn ≤ mark` are already inside the snapshot image.
    pub mark: TxnId,
}

/// What [`warm_load`] recovered from a standby data directory: the warm
/// store plus the *undecided tail* the applier keeps extending as shipped
/// frames arrive.
pub struct WarmLoad {
    /// Snapshot + decided prefix, applied.
    pub store: Store,
    /// Snapshot high-water mark.
    pub mark: TxnId,
    /// Every record with `gsn` below this is materialized in `store`.
    pub applied_below_gsn: u64,
    /// Records at or past the watermark, in GSN order:
    /// `(gsn, stream, record)`. The first one's transaction fate was
    /// undecided at load time; later arrivals decide it.
    pub pending: Vec<(u64, u32, LogRecord)>,
    /// Transactions known committed anywhere in the scanned log.
    pub committed: HashSet<TxnId>,
    /// Transactions known aborted anywhere in the scanned log.
    pub aborted: HashSet<TxnId>,
    /// Highest GSN present on disk (0 = none): what the standby reports to
    /// the primary at `ReplHello` time.
    pub max_gsn: u64,
}

/// Recover a standby data directory into a warm image: load the snapshot,
/// merge all partition streams by GSN, apply the longest prefix whose
/// transaction fates are all decided, and return the undecided tail.
///
/// Unlike full recovery this never discards undecided records — a standby's
/// log legitimately ends mid-transaction (the primary's next frames decide
/// it), where a crashed primary's log ends in transactions that must roll
/// back.
pub fn warm_load(dir: &Path) -> Result<WarmLoad, DbError> {
    let (mut store, mark) = match snapshot::load(dir, &Durable::snapshot_path(dir))? {
        Some(s) => (s.store, s.mark),
        None => (Store::new(), 0),
    };

    let mut streams: Vec<(u32, Vec<Vec<u8>>)> = Vec::new();
    for k in 0..MAX_PARTITIONS {
        let mut frames = Wal::read_all(Durable::wal_old_path(dir, k))?;
        frames.extend(Wal::read_all(Durable::wal_path(dir, k))?);
        if !frames.is_empty() {
            streams.push((k as u32, frames));
        }
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut records = crate::db::decode_streams(&streams, threads)?;

    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut multi: HashMap<TxnId, (Vec<u32>, HashSet<u32>)> = HashMap::new();
    let mut max_gsn = 0u64;
    for (gsn, stream, rec) in &records {
        max_gsn = max_gsn.max(*gsn);
        match rec {
            LogRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            LogRecord::CommitMulti { txn, participants } => {
                let entry = multi
                    .entry(*txn)
                    .or_insert_with(|| (participants.clone(), HashSet::new()));
                entry.1.insert(*stream);
            }
            _ => {}
        }
    }
    for (txn, (participants, logged)) in &multi {
        if participants.iter().all(|p| logged.contains(p)) {
            committed.insert(*txn);
        }
    }

    // The watermark: the first record whose transaction fate is not yet
    // decided. Everything before it applies (or is skipped) exactly as full
    // recovery would; everything from it on waits for more frames.
    let decided = |txn: TxnId| txn <= mark || committed.contains(&txn) || aborted.contains(&txn);
    let cut = records
        .iter()
        .position(|(_, _, rec)| !decided(rec.txn()))
        .unwrap_or(records.len());
    let applied_below_gsn = records.get(cut).map(|r| r.0).unwrap_or(max_gsn + 1);
    let pending = records.split_off(cut);
    let prefix: Vec<LogRecord> = records.into_iter().map(|(_, _, rec)| rec).collect();
    crate::db::replay_records(&mut store, prefix, &committed, mark, threads)?;

    Ok(WarmLoad {
        store,
        mark,
        applied_below_gsn,
        pending,
        committed,
        aborted,
        max_gsn,
    })
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::time::Duration;

    use super::*;
    use crate::db::{Durability, RecoveryOptions};
    use crate::types::{Column, DataType, Row, Schema, TableDef, Value};

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "phoenix-repl-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn def(name: &str) -> TableDef {
        TableDef::new(
            name,
            Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("v", DataType::Text),
            ]),
        )
        .with_primary_key(vec![0])
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::Text(v.into())]
    }

    fn opts(partitions: usize) -> RecoveryOptions {
        RecoveryOptions {
            partitions: Some(partitions),
            ..RecoveryOptions::default()
        }
    }

    /// Drain everything currently shippable.
    fn drain(db: &Durable) -> Vec<ShipFrame> {
        let mut out = Vec::new();
        loop {
            let batch = db
                .repl_poll(64, Duration::from_millis(0))
                .expect("tap not lost");
            if batch.is_empty() {
                return out;
            }
            out.extend(batch);
        }
    }

    #[test]
    fn tap_ships_exactly_the_post_fsync_stream_in_gsn_order() {
        let dir = temp_dir();
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("a")).unwrap();
        db.create_table(t, def("dbo.b")).unwrap();
        db.commit(t).unwrap();

        // Attach at the current high-water: backlog covers the history.
        let backlog = db.repl_attach(0).unwrap();
        assert!(!backlog.is_empty());
        let last = backlog.last().unwrap().1;
        assert_eq!(last, db.last_gsn());

        // Live frames: a cross-partition transaction; every frame becomes
        // shippable once its commit fsync lands.
        let t = db.begin().unwrap();
        db.insert(t, "a", row(1, "x")).unwrap();
        db.insert(t, "dbo.b", row(2, "y")).unwrap();
        db.commit(t).unwrap();
        let live = drain(&db);
        // Every frame appended since attach shipped exactly once: 2 inserts
        // plus the commit record's per-stream copies.
        assert_eq!(live.len() as u64, db.last_gsn() - last);
        let gsns: Vec<u64> = live.iter().map(|f| f.1).collect();
        let mut sorted = gsns.clone();
        sorted.sort_unstable();
        assert_eq!(gsns, sorted, "tap must drain in GSN order");
        assert_eq!(*gsns.last().unwrap(), db.last_gsn());

        // The shipped bytes are the WAL payloads verbatim: decode them.
        for (_, _, rec) in &live {
            LogRecord::decode(rec).unwrap();
        }
        db.repl_detach();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn attach_behind_the_ship_floor_is_refused_after_checkpoint() {
        let dir = temp_dir();
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(1)).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("a")).unwrap();
        db.insert(t, "a", row(1, "x")).unwrap();
        db.commit(t).unwrap();
        db.checkpoint().unwrap();
        // The checkpoint folded gsn 1..=3 into the snapshot: a fresh
        // standby (last_gsn 0) can no longer catch up from the logs.
        assert!(db.repl_attach(0).is_err());
        // One that already holds the pre-checkpoint history can.
        let at = db.last_gsn();
        assert!(db.repl_attach(at).unwrap().is_empty());
        db.repl_detach();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fenced_handle_refuses_every_append() {
        let dir = temp_dir();
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(1)).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def("a")).unwrap();
        db.commit(t).unwrap();
        db.fence();
        assert!(db.is_fenced());
        let t = db.begin().unwrap();
        assert!(db.insert(t, "a", row(1, "x")).is_err());
        assert!(db.commit(t).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_load_plus_tail_replay_matches_cold_recovery() {
        let dir = temp_dir();
        {
            let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def("a")).unwrap();
            db.commit(t).unwrap();
            for i in 0..10i64 {
                let t = db.begin().unwrap();
                db.insert(t, "a", row(i, "v")).unwrap();
                db.commit(t).unwrap();
            }
            // Leave an undecided tail: mutations without a commit record.
            let t = db.begin().unwrap();
            db.insert(t, "a", row(100, "uncommitted")).unwrap();
            // Crash (drop without commit/abort).
        }
        let w = warm_load(&dir).unwrap();
        // The undecided insert stalls the watermark right at its GSN.
        assert_eq!(w.pending.len(), 1);
        assert_eq!(w.applied_below_gsn, w.pending[0].0);
        // Promote the warm image; the tail replays under full knowledge.
        let db = Durable::open_warm(
            &dir,
            Durability::Fsync,
            &opts(2),
            WarmImage {
                store: w.store,
                applied_below_gsn: w.applied_below_gsn,
                mark: w.mark,
            },
        )
        .unwrap();
        let snap = db.snapshot();
        let table = snap.table("a").unwrap();
        assert_eq!(table.len(), 10, "uncommitted tail row must not apply");
        drop(snap);
        drop(db);
        // Cold recovery of the same directory agrees.
        let cold = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
        assert_eq!(cold.snapshot().table("a").unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
