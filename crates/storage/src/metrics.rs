//! Storage-layer metric handles, registered once and cached in a static.
//!
//! Everything here follows the phoenix-obs pattern: the global registry is
//! consulted exactly once (first use), after which the hot paths — WAL
//! append, fsync, snapshot publish — touch only the atomics inside the
//! cached `Arc`s.

use std::sync::{Arc, OnceLock};

use phoenix_obs::{registry, Counter, Histogram};

/// Cached handles for every storage metric.
pub struct StorageMetrics {
    /// WAL records appended (`phoenix_wal_appends_total`).
    pub wal_appends: Arc<Counter>,
    /// Latency of one WAL append — frame build + `write_all`
    /// (`phoenix_wal_append_us`).
    pub wal_append_us: Arc<Histogram>,
    /// `sync_data` calls issued by the WAL (`phoenix_wal_fsyncs_total`).
    pub wal_fsyncs: Arc<Counter>,
    /// Latency of one WAL fsync (`phoenix_wal_fsync_us`).
    pub wal_fsync_us: Arc<Histogram>,
    /// Commit records covered by group-commit flushes
    /// (`phoenix_group_commit_records_total`). Together with
    /// [`StorageMetrics::group_commit_syncs`] this yields the *exact* mean
    /// batch size, which the `rw_mix` bench reports.
    pub group_commit_records: Arc<Counter>,
    /// Group-commit leader flushes (`phoenix_group_commit_syncs_total`).
    pub group_commit_syncs: Arc<Counter>,
    /// Distribution of commit records per leader flush
    /// (`phoenix_group_commit_batch`).
    pub group_commit_batch: Arc<Histogram>,
    /// Checkpoints taken (`phoenix_checkpoints_total`).
    pub checkpoints: Arc<Counter>,
    /// Checkpoint duration — snapshot write + log truncate
    /// (`phoenix_checkpoint_us`).
    pub checkpoint_us: Arc<Histogram>,
    /// Checkpoint *pause* — how long the writer lock was held for the
    /// capture + log-rotation phase, the only part of a checkpoint that
    /// blocks mutations (`phoenix_checkpoint_pause_us`).
    pub checkpoint_pause_us: Arc<Histogram>,
    /// Recovery replay duration — WAL decode + commit scan + partitioned
    /// apply, per `Durable::open` (`phoenix_recovery_replay_us`).
    pub recovery_replay_us: Arc<Histogram>,
    /// Copy-on-write store snapshots published for readers
    /// (`phoenix_snapshot_publishes_total`).
    pub snapshot_publishes: Arc<Counter>,
    /// Whole-store captures *avoided* by per-partition epoch publishing:
    /// each mutation re-captures only its own shard, so with N partitions
    /// every publish saves N−1 captures the pre-partitioned design paid
    /// (`phoenix_snapshot_publishes_coalesced`).
    pub snapshot_publishes_coalesced: Arc<Counter>,
}

/// The storage metric set, registered on first use.
pub fn storage_metrics() -> &'static StorageMetrics {
    static M: OnceLock<StorageMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        StorageMetrics {
            wal_appends: r.counter("phoenix_wal_appends_total", "WAL records appended"),
            wal_append_us: r.histogram(
                "phoenix_wal_append_us",
                "WAL append latency (frame build + write) in microseconds",
            ),
            wal_fsyncs: r.counter("phoenix_wal_fsyncs_total", "WAL sync_data calls issued"),
            wal_fsync_us: r.histogram("phoenix_wal_fsync_us", "WAL fsync latency in microseconds"),
            group_commit_records: r.counter(
                "phoenix_group_commit_records_total",
                "commit records made durable by group-commit flushes",
            ),
            group_commit_syncs: r.counter(
                "phoenix_group_commit_syncs_total",
                "group-commit leader flushes",
            ),
            group_commit_batch: r.histogram(
                "phoenix_group_commit_batch",
                "commit records covered per group-commit flush",
            ),
            checkpoints: r.counter("phoenix_checkpoints_total", "checkpoints taken"),
            checkpoint_us: r.histogram(
                "phoenix_checkpoint_us",
                "checkpoint duration (snapshot write + log truncate) in microseconds",
            ),
            checkpoint_pause_us: r.histogram(
                "phoenix_checkpoint_pause_us",
                "writer-lock hold time of the checkpoint capture phase in microseconds",
            ),
            recovery_replay_us: r.histogram(
                "phoenix_recovery_replay_us",
                "WAL replay duration during recovery in microseconds",
            ),
            snapshot_publishes: r.counter(
                "phoenix_snapshot_publishes_total",
                "copy-on-write store snapshots published",
            ),
            snapshot_publishes_coalesced: r.counter(
                "phoenix_snapshot_publishes_coalesced",
                "whole-store captures avoided by per-partition epoch publishing",
            ),
        }
    })
}

/// Per-partition group-commit batch histogram
/// (`phoenix_group_commit_batch{partition="p<k>"}`), registered on first use
/// per partition and cached by the caller.
pub fn partition_batch_histogram(partition: usize) -> Arc<Histogram> {
    let label = format!("p{partition}");
    registry().histogram_with(
        "phoenix_group_commit_batch",
        "commit records covered per group-commit flush",
        &[("partition", &label)],
    )
}
