//! CRC-32 (IEEE 802.3 polynomial, reflected) used to frame WAL records.
//!
//! A torn write at the log tail — the normal outcome of crashing mid-append —
//! must be detected and treated as end-of-log. Length framing alone cannot
//! distinguish a half-written record from a corrupt one; the checksum can.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"phoenix wal record");
        let mut data = b"phoenix wal record".to_vec();
        for i in 0..data.len() {
            data[i] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 1;
        }
    }
}
