//! The value model shared by every layer of the stack.
//!
//! The engine, the WAL, snapshots and the wire protocol all speak in terms of
//! these types, so a row read off the network is byte-for-byte the row that
//! was logged and the row the executor evaluates predicates over.

use std::cmp::Ordering;
use std::fmt;

/// A transaction identifier. Assigned by the durability layer, monotonically
/// increasing within one server incarnation and across restarts (the snapshot
/// records the high-water mark).
pub type TxnId = u64;

/// A stable row identifier within one table.
///
/// Row ids are assigned at insert time, never reused, and are recorded in the
/// log so that crash recovery reproduces them exactly. Server-side keyset
/// cursors and the engine's update/delete paths address rows by id.
pub type RowId = u64;

/// A row is a flat vector of values, positionally matching its table schema.
pub type Row = Vec<Value>;

/// The SQL data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INT`, `BIGINT`).
    Int,
    /// 64-bit IEEE float (`FLOAT`, `DOUBLE`, `DECIMAL` is mapped here).
    Float,
    /// UTF-8 string (`TEXT`, `VARCHAR(n)` — length is advisory only).
    Text,
    /// Boolean (`BOOL`).
    Bool,
    /// Calendar date stored as days since 1970-01-01 (`DATE`).
    Date,
}

impl DataType {
    /// The SQL spelling used when the type is rendered back to SQL
    /// (e.g. by Phoenix's `CREATE TABLE` rewrite of result-set metadata).
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        }
    }

    /// Parse a SQL type name (case-insensitive, common synonyms accepted).
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        Some(match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "NVARCHAR" => DataType::Text,
            "BOOL" | "BOOLEAN" | "BIT" => DataType::Bool,
            "DATE" | "DATETIME" | "TIMESTAMP" => DataType::Date,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single SQL value.
///
/// `Value` implements a *total* order (`Ord`): `NULL` sorts first, then
/// booleans, integers/floats (compared numerically against each other),
/// dates, and text. The executor's ORDER BY, the keyset cursor's key order
/// and the B-tree-style primary-key lookups all rely on this order.
///
/// Floats use IEEE-754 *total ordering* throughout (`f64::total_cmp`), and
/// `PartialEq`/`Hash` are defined to agree with it bit-for-bit: `-0.0` and
/// `+0.0` are distinct values, and a NaN equals an identical NaN. This keeps
/// `Eq`, `Ord` and `Hash` mutually consistent — the contract `BTreeMap`
/// (primary-key indexes) and `HashMap` (hash joins, grouping) both require —
/// at the cost of a small, documented deviation from IEEE `==` semantics.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// The dynamic type of this value, or `None` for `NULL`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Is this `NULL`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats truncate); `None` for non-numerics.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Borrowed text, if this is a `Text` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Coerce this value to `ty` where a lossless or conventional conversion
    /// exists (int↔float, int→date). Used when inserting literals into typed
    /// columns. Returns `None` when no sensible coercion exists.
    pub fn coerce_to(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Some(Value::Int(*f as i64)),
            (Value::Int(i), DataType::Date) => Some(Value::Date(*i as i32)),
            (Value::Date(d), DataType::Int) => Some(Value::Int(*d as i64)),
            (Value::Text(s), DataType::Date) => parse_date(s).map(Value::Date),
            _ => None,
        }
    }

    /// Rank used by the total order: groups values by type family.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Date(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            // Bit-level (total-order) float equality; see the type docs.
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Date(a), Date(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Date(d) => d.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Date(d) => write!(f, "{}", format_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Parse an ISO `YYYY-MM-DD` date into days since the Unix epoch.
///
/// Implements the civil-calendar conversion directly (no chrono dependency);
/// valid for the full proleptic Gregorian calendar.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// Howard Hinnant's `days_from_civil` algorithm.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146097 + doe - 719468) as i32
}

/// Inverse of [`days_from_civil`]: days-since-epoch → `(year, month, day)`.
pub fn civil_from_days(z: i32) -> (i64, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Format days-since-epoch as ISO `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// One column of a table or result-set schema.
///
/// This is exactly the metadata Phoenix extracts with its `WHERE 0=1` probe:
/// name, type and nullability are all it needs to synthesize the persistent
/// result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// May the column hold `NULL`?
    pub nullable: bool,
}

impl Column {
    /// A nullable column of the given type.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// Builder: mark the column `NOT NULL`.
    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }
}

/// An ordered list of columns: the shape of a table or a result set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns, in position order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// A schema over the given columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Zero columns?
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column with the given (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The column at position `i` (panics out of range).
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column names in position order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }
}

/// A secondary index over one column of a table.
///
/// Indexes are part of the table definition (and therefore of the snapshot
/// and every WAL `CreateTable` record that carries the def); the index *data*
/// — the ordered map from column value to row ids — lives in `TableData` and
/// is rebuilt deterministically from the rows, which is what makes REDO-only
/// recovery from the existing DML log sufficient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within the table's store.
    pub name: String,
    /// Index (into `schema.columns`) of the indexed column.
    pub column: usize,
}

/// The full definition of a base table: name, schema, primary key and
/// secondary indexes.
///
/// `name` is the fully qualified name (`namespace.table`); the default
/// namespace is `dbo`, Phoenix's private objects live under `phoenix`, and
/// session temp objects are spelled `#name` (never durable, never in a
/// `TableDef` that reaches the log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Fully qualified canonical name (`namespace.table`).
    pub name: String,
    /// The table's columns.
    pub schema: Schema,
    /// Indices (into `schema.columns`) of the primary-key columns; empty when
    /// the table has no declared key. Keyset and dynamic server cursors
    /// require a non-empty key, as with real ODBC drivers.
    pub primary_key: Vec<usize>,
    /// Secondary indexes, in creation order.
    pub indexes: Vec<IndexDef>,
}

impl TableDef {
    /// A keyless table definition.
    pub fn new(name: impl Into<String>, schema: Schema) -> TableDef {
        TableDef {
            name: name.into(),
            schema,
            primary_key: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Builder: declare the primary key by column indices.
    pub fn with_primary_key(mut self, key: Vec<usize>) -> TableDef {
        self.primary_key = key;
        self
    }

    /// Extract the primary-key values of `row`, in key order.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Does the table declare a primary key?
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }

    /// Position of the named secondary index, if it exists.
    pub fn index_pos(&self, name: &str) -> Option<usize> {
        self.indexes
            .iter()
            .position(|ix| ix.name.eq_ignore_ascii_case(name))
    }

    /// Position of a secondary index over `column`, if one exists.
    pub fn index_on(&self, column: usize) -> Option<usize> {
        self.indexes.iter().position(|ix| ix.column == column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_total_order_groups_types() {
        let mut vs = [
            Value::Text("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
            Value::Date(10),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        // Numerics compare against each other: 2.5 < 3.
        assert_eq!(vs[2], Value::Float(2.5));
        assert_eq!(vs[3], Value::Int(3));
        assert_eq!(vs[4], Value::Date(10));
        assert_eq!(vs[5], Value::Text("a".into()));
    }

    #[test]
    fn int_float_cross_comparison() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Float(1.5).cmp(&Value::Int(2)), Ordering::Less);
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (1999, 12, 31), (2026, 7, 5)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(format_date(0), "1970-01-01");
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("1970-13-01"), None);
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float),
            Some(Value::Float(3.0))
        );
        assert_eq!(Value::Float(3.5).coerce_to(DataType::Int), None);
        assert_eq!(Value::Null.coerce_to(DataType::Text), Some(Value::Null));
        assert_eq!(
            Value::Text("1970-01-03".into()).coerce_to(DataType::Date),
            Some(Value::Date(2))
        );
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = Schema::new(vec![
            Column::new("Id", DataType::Int),
            Column::new("Name", DataType::Text),
        ]);
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn table_def_key_extraction() {
        let def = TableDef::new(
            "dbo.t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
            ]),
        )
        .with_primary_key(vec![1]);
        assert_eq!(
            def.key_of(&vec![Value::Int(1), Value::Text("k".into())]),
            vec![Value::Text("k".into())]
        );
    }

    #[test]
    fn data_type_names_roundtrip() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Date,
        ] {
            assert_eq!(DataType::from_sql_name(t.sql_name()), Some(t));
        }
        assert_eq!(DataType::from_sql_name("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::from_sql_name("blob"), None);
    }
}
