//! The in-memory materialized image of the durable state.
//!
//! A [`Store`] holds tables (rows addressed by stable [`RowId`]), optional
//! primary-key indexes, and stored-procedure text. It is deliberately free of
//! transaction logic: [`crate::db::Durable`] layers logging/undo on top, and
//! crash recovery rebuilds a `Store` by applying committed log records to a
//! snapshot image. The engine also uses a bare `Store` for *volatile* state
//! (session temp tables), which is exactly the state that must die in a
//! crash.
//!
//! Tables are held behind per-table [`Arc`]s, making the store
//! *copy-on-write*: cloning a `Store` is cheap (it shares every table), and
//! [`Store::table_mut`] clones a table's data only when some clone of the
//! store still references it. [`StoreSnapshot`] packages that property as an
//! immutable published image readers execute against with no lock held.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::record::LogRecord;
use crate::types::{IndexDef, Row, RowId, TableDef, Value};

/// Error type for store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// CREATE of a table that already exists.
    TableExists(String),
    /// Reference to a table that does not exist.
    NoSuchTable(String),
    /// CREATE of a procedure that already exists.
    ProcExists(String),
    /// Reference to a procedure that does not exist.
    NoSuchProc(String),
    /// Primary-key uniqueness violation.
    DuplicateKey(String),
    /// Row width does not match the table schema.
    ArityMismatch {
        /// The table.
        table: String,
        /// Schema width.
        expected: usize,
        /// Supplied width.
        got: usize,
    },
    /// Row id not present in the table.
    NoSuchRow {
        /// The table.
        table: String,
        /// The missing row id.
        row_id: RowId,
    },
    /// CREATE INDEX with a name already used on the same table.
    IndexExists(String),
    /// Reference to an index that does not exist.
    NoSuchIndex(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableExists(n) => write!(f, "table '{n}' already exists"),
            StoreError::NoSuchTable(n) => write!(f, "no such table '{n}'"),
            StoreError::ProcExists(n) => write!(f, "procedure '{n}' already exists"),
            StoreError::NoSuchProc(n) => write!(f, "no such procedure '{n}'"),
            StoreError::DuplicateKey(n) => write!(f, "duplicate primary key in '{n}'"),
            StoreError::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "row arity {got} does not match table '{table}' ({expected} columns)"
                )
            }
            StoreError::NoSuchRow { table, row_id } => {
                write!(f, "no row {row_id} in table '{table}'")
            }
            StoreError::IndexExists(n) => write!(f, "index '{n}' already exists"),
            StoreError::NoSuchIndex(n) => write!(f, "no such index '{n}'"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One table's data: definition, rows by id, (when a primary key is
/// declared) a key → row-id index kept in key order so keyset cursors can
/// walk it, and one ordered secondary index per entry in `def.indexes`.
///
/// Secondary indexes are *derived* state: every mutation path funnels
/// through [`TableData::insert_with_id`], [`TableData::delete`] or
/// [`TableData::update`], which keep `sec` in lock-step with `rows`. That
/// single chokepoint is what makes REDO-only index recovery work — replaying
/// committed DML rebuilds the maps with no index-page log records at all.
#[derive(Debug, Clone)]
pub struct TableData {
    /// The table definition.
    pub def: TableDef,
    /// Rows by stable id; iteration order is insertion order.
    pub rows: BTreeMap<RowId, Row>,
    /// Primary-key index; empty map when no key is declared.
    pub pk_index: BTreeMap<Vec<Value>, RowId>,
    /// Secondary indexes, parallel to `def.indexes`: indexed-column value →
    /// ids of the rows holding it. Non-unique, so the payload is a set.
    pub sec: Vec<BTreeMap<Value, BTreeSet<RowId>>>,
    /// Next row id to assign (never reused).
    pub next_row_id: RowId,
}

impl TableData {
    /// An empty table with the given definition.
    pub fn new(def: TableDef) -> TableData {
        let sec = vec![BTreeMap::new(); def.indexes.len()];
        TableData {
            def,
            rows: BTreeMap::new(),
            pk_index: BTreeMap::new(),
            sec,
            next_row_id: 1,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Zero rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Look up a row id by primary-key value.
    pub fn row_id_by_key(&self, key: &[Value]) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    fn check_arity(&self, row: &Row) -> Result<(), StoreError> {
        let expected = self.def.schema.len();
        if row.len() != expected {
            return Err(StoreError::ArityMismatch {
                table: self.def.name.clone(),
                expected,
                got: row.len(),
            });
        }
        Ok(())
    }

    /// Add `row_id` to every secondary index under the row's column values.
    fn index_row(&mut self, row_id: RowId, row: &Row) {
        for (k, ix) in self.def.indexes.iter().enumerate() {
            self.sec[k]
                .entry(row[ix.column].clone())
                .or_default()
                .insert(row_id);
        }
    }

    /// Remove `row_id` from every secondary index, pruning empty buckets.
    fn unindex_row(&mut self, row_id: RowId, row: &Row) {
        for (k, ix) in self.def.indexes.iter().enumerate() {
            if let Some(ids) = self.sec[k].get_mut(&row[ix.column]) {
                ids.remove(&row_id);
                if ids.is_empty() {
                    self.sec[k].remove(&row[ix.column]);
                }
            }
        }
    }

    /// Insert with a specific row id (used by recovery and undo).
    pub fn insert_with_id(&mut self, row_id: RowId, row: Row) -> Result<(), StoreError> {
        self.check_arity(&row)?;
        if self.def.has_primary_key() {
            let key = self.def.key_of(&row);
            if self.pk_index.contains_key(&key) {
                return Err(StoreError::DuplicateKey(self.def.name.clone()));
            }
            self.pk_index.insert(key, row_id);
        }
        self.index_row(row_id, &row);
        self.rows.insert(row_id, row);
        if row_id >= self.next_row_id {
            self.next_row_id = row_id + 1;
        }
        Ok(())
    }

    /// Insert a fresh row, assigning the next row id.
    pub fn insert(&mut self, row: Row) -> Result<RowId, StoreError> {
        let id = self.next_row_id;
        self.insert_with_id(id, row)?;
        Ok(id)
    }

    /// Remove a row by id, returning it.
    pub fn delete(&mut self, row_id: RowId) -> Result<Row, StoreError> {
        let row = self
            .rows
            .remove(&row_id)
            .ok_or_else(|| StoreError::NoSuchRow {
                table: self.def.name.clone(),
                row_id,
            })?;
        if self.def.has_primary_key() {
            self.pk_index.remove(&self.def.key_of(&row));
        }
        self.unindex_row(row_id, &row);
        Ok(row)
    }

    /// Apply one committed DML log record addressed to this table — the
    /// per-table half of recovery's partitioned replay. Catalog records
    /// (create/drop) never reach here; transaction markers are no-ops.
    pub(crate) fn apply_dml(&mut self, rec: &LogRecord) -> Result<(), StoreError> {
        match rec {
            LogRecord::Insert { row_id, row, .. } => self.insert_with_id(*row_id, row.clone()),
            LogRecord::InsertMany {
                first_row_id, rows, ..
            } => {
                for (k, row) in rows.iter().enumerate() {
                    self.insert_with_id(first_row_id + k as RowId, row.clone())?;
                }
                Ok(())
            }
            LogRecord::Delete { row_id, .. } => self.delete(*row_id).map(|_| ()),
            LogRecord::Update { row_id, row, .. } => self.update(*row_id, row.clone()).map(|_| ()),
            _ => Ok(()),
        }
    }

    /// Replace a row in place, returning the previous image.
    pub fn update(&mut self, row_id: RowId, new_row: Row) -> Result<Row, StoreError> {
        self.check_arity(&new_row)?;
        let old = self
            .rows
            .get(&row_id)
            .cloned()
            .ok_or_else(|| StoreError::NoSuchRow {
                table: self.def.name.clone(),
                row_id,
            })?;
        if self.def.has_primary_key() {
            let old_key = self.def.key_of(&old);
            let new_key = self.def.key_of(&new_row);
            if old_key != new_key {
                if self.pk_index.contains_key(&new_key) {
                    return Err(StoreError::DuplicateKey(self.def.name.clone()));
                }
                self.pk_index.remove(&old_key);
                self.pk_index.insert(new_key, row_id);
            }
        }
        self.unindex_row(row_id, &old);
        self.index_row(row_id, &new_row);
        self.rows.insert(row_id, new_row);
        Ok(old)
    }

    /// Create a secondary index over one column, backfilling it from the
    /// current rows. Errors if the name is already taken on this table.
    pub fn create_index(&mut self, name: &str, column: usize) -> Result<(), StoreError> {
        if self.def.index_pos(name).is_some() {
            return Err(StoreError::IndexExists(name.to_string()));
        }
        let mut map: BTreeMap<Value, BTreeSet<RowId>> = BTreeMap::new();
        for (&row_id, row) in &self.rows {
            map.entry(row[column].clone()).or_default().insert(row_id);
        }
        self.def.indexes.push(IndexDef {
            name: name.to_string(),
            column,
        });
        self.sec.push(map);
        Ok(())
    }

    /// Drop a secondary index by name, returning its definition (so undo
    /// can recreate it).
    pub fn drop_index(&mut self, name: &str) -> Result<IndexDef, StoreError> {
        let pos = self
            .def
            .index_pos(name)
            .ok_or_else(|| StoreError::NoSuchIndex(name.to_string()))?;
        self.sec.remove(pos);
        Ok(self.def.indexes.remove(pos))
    }

    /// The secondary-index map for `def.indexes[pos]`.
    pub fn sec_index(&self, pos: usize) -> &BTreeMap<Value, BTreeSet<RowId>> {
        &self.sec[pos]
    }

    /// Cross-check every secondary index against the row image: each row
    /// must appear under exactly its column value, and every indexed id
    /// must reference a live row. Used by chaos sweeps after recovery.
    pub fn verify_indexes(&self) -> Result<(), String> {
        for (k, ix) in self.def.indexes.iter().enumerate() {
            let mut expect: BTreeMap<Value, BTreeSet<RowId>> = BTreeMap::new();
            for (&row_id, row) in &self.rows {
                expect
                    .entry(row[ix.column].clone())
                    .or_default()
                    .insert(row_id);
            }
            if self.sec[k] != expect {
                return Err(format!(
                    "index '{}' on '{}' diverges from table rows",
                    ix.name, self.def.name
                ));
            }
        }
        Ok(())
    }
}

/// A collection of tables and stored procedures. Lookup is case-insensitive
/// on the fully qualified name (names are normalized to lowercase keys).
///
/// Each table sits behind its own [`Arc`], so `Clone` is shallow — clones
/// share all row data until one of them mutates a table, at which point
/// only the touched table is copied ([`Arc::make_mut`]).
#[derive(Debug, Clone, Default)]
pub struct Store {
    tables: HashMap<String, Arc<TableData>>,
    procs: HashMap<String, String>,
}

/// Normalize a table/procedure name for lookup.
pub fn normalize_name(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// Map a table/procedure name to its partition index under an `n`-way
/// partitioned store. FNV-1a over the *normalized* name: deterministic
/// across processes and hosts, which matters because partition routing is
/// baked into on-disk WAL streams (commit participant sets name partition
/// indexes, and recovery re-routes tables by re-hashing).
pub fn partition_of(name: &str, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    // Phoenix-internal bookkeeping (`phoenix.status`, materialized result
    // sets, keyset tables) embeds a process-unique session tag in the name.
    // Pin the whole namespace to partition 0 so commit routing — and with
    // it the WAL fault-point trace — is a pure function of the workload,
    // never of session-tag entropy.
    if name.len() >= 8 && name.as_bytes()[..8].eq_ignore_ascii_case(b"phoenix.") {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        let b = b.to_ascii_lowercase();
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n as u64) as usize
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Create an empty table; errors if the name is taken.
    pub fn create_table(&mut self, def: TableDef) -> Result<(), StoreError> {
        let key = normalize_name(&def.name);
        if self.tables.contains_key(&key) {
            return Err(StoreError::TableExists(def.name));
        }
        self.tables.insert(key, Arc::new(TableData::new(def)));
        Ok(())
    }

    /// Install a fully populated table (snapshot load).
    pub fn install_table(&mut self, data: TableData) {
        self.tables
            .insert(normalize_name(&data.def.name), Arc::new(data));
    }

    /// Remove a table, returning its data (cloned only if a snapshot still
    /// shares it).
    pub fn drop_table(&mut self, name: &str) -> Result<TableData, StoreError> {
        self.tables
            .remove(&normalize_name(name))
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Look a table up by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<&TableData, StoreError> {
        self.tables
            .get(&normalize_name(name))
            .map(Arc::as_ref)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Mutable table lookup. Copy-on-write: the table's data is cloned here
    /// if (and only if) a snapshot of this store still shares it.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut TableData, StoreError> {
        self.tables
            .get_mut(&normalize_name(name))
            .map(Arc::make_mut)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// The shared `Arc` behind a table, by (case-insensitive) name. Pointer
    /// identity is the copy-on-write change detector: two stores whose
    /// `table_arc`s are [`Arc::ptr_eq`] hold bit-identical table data, which
    /// is how incremental checkpoints decide which tables to re-serialize.
    pub fn table_arc(&self, name: &str) -> Option<Arc<TableData>> {
        self.tables.get(&normalize_name(name)).cloned()
    }

    /// Remove a table's `Arc` by *normalized* key, for ownership handoff to
    /// a replay worker (which mutates via `Arc::make_mut` and hands it
    /// back through [`Store::put_table`]).
    pub(crate) fn take_table(&mut self, key: &str) -> Option<Arc<TableData>> {
        self.tables.remove(key)
    }

    /// Reinstall a table `Arc` under its *normalized* key (replay handoff).
    pub(crate) fn put_table(&mut self, key: String, data: Arc<TableData>) {
        self.tables.insert(key, data);
    }

    /// Does a table with this name exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&normalize_name(name))
    }

    /// Iterate over all tables in an unspecified order.
    pub fn tables(&self) -> impl Iterator<Item = &TableData> {
        self.tables.values().map(Arc::as_ref)
    }

    /// Names of all tables, sorted (deterministic for snapshots and tests).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.def.name.clone()).collect();
        names.sort();
        names
    }

    /// Register a stored procedure's SQL text.
    pub fn create_proc(&mut self, name: &str, sql: &str) -> Result<(), StoreError> {
        let key = normalize_name(name);
        if self.procs.contains_key(&key) {
            return Err(StoreError::ProcExists(name.to_string()));
        }
        self.procs.insert(key, sql.to_string());
        Ok(())
    }

    /// Remove a stored procedure, returning its SQL text.
    pub fn drop_proc(&mut self, name: &str) -> Result<String, StoreError> {
        self.procs
            .remove(&normalize_name(name))
            .ok_or_else(|| StoreError::NoSuchProc(name.to_string()))
    }

    /// Look a procedure's SQL text up by name.
    pub fn proc(&self, name: &str) -> Option<&str> {
        self.procs.get(&normalize_name(name)).map(String::as_str)
    }

    /// Does a procedure with this name exist?
    pub fn has_proc(&self, name: &str) -> bool {
        self.procs.contains_key(&normalize_name(name))
    }

    /// Names of all procedures, sorted.
    pub fn proc_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.procs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Iterate `(name, sql)` over all procedures.
    pub fn procs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.procs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Absorb every table and procedure of `other` by shallow `Arc` clone —
    /// the stitch step a partitioned checkpoint uses to build one global
    /// image out of disjoint shards. Keys never collide because each table
    /// lives in exactly one partition.
    pub(crate) fn merge_from(&mut self, other: &Store) {
        for (key, arc) in &other.tables {
            self.tables.insert(key.clone(), Arc::clone(arc));
        }
        for (key, sql) in &other.procs {
            self.procs.insert(key.clone(), sql.clone());
        }
    }

    /// Split this store into `n` disjoint shards by [`partition_of`] on the
    /// normalized name — the inverse of [`Store::merge_from`], used once at
    /// the end of recovery to seed the per-partition working stores.
    pub(crate) fn into_parts(self, n: usize) -> Vec<Store> {
        let mut parts: Vec<Store> = (0..n.max(1)).map(|_| Store::new()).collect();
        for (key, arc) in self.tables {
            let k = partition_of(&key, n);
            parts[k].tables.insert(key, arc);
        }
        for (key, sql) in self.procs {
            let k = partition_of(&key, n);
            parts[k].procs.insert(key, sql);
        }
        parts
    }

    /// Apply one committed log record during recovery.
    ///
    /// Recovery applies records in log order, so every operation is valid
    /// against the state produced by its predecessors; any failure here means
    /// the log and snapshot disagree, which is a corruption bug worth
    /// surfacing loudly.
    pub fn apply(&mut self, rec: &LogRecord) -> Result<(), StoreError> {
        match rec {
            LogRecord::Begin { .. }
            | LogRecord::Commit { .. }
            | LogRecord::CommitMulti { .. }
            | LogRecord::Abort { .. } => Ok(()),
            LogRecord::Insert { table, .. }
            | LogRecord::InsertMany { table, .. }
            | LogRecord::Delete { table, .. }
            | LogRecord::Update { table, .. } => self.table_mut(table)?.apply_dml(rec),
            LogRecord::CreateTable { def, .. } => self.create_table(def.clone()),
            LogRecord::DropTable { name, .. } => self.drop_table(name).map(|_| ()),
            LogRecord::CreateProc { name, sql, .. } => self.create_proc(name, sql),
            LogRecord::DropProc { name, .. } => self.drop_proc(name).map(|_| ()),
            LogRecord::CreateIndex {
                table,
                name,
                column,
                ..
            } => self.table_mut(table)?.create_index(name, *column),
            LogRecord::DropIndex { table, name, .. } => {
                self.table_mut(table)?.drop_index(name).map(|_| ())
            }
        }
    }

    /// Verify every secondary index in every table against its row image.
    pub fn verify_indexes(&self) -> Result<(), String> {
        for t in self.tables() {
            t.verify_indexes()?;
        }
        Ok(())
    }

    /// The table owning an index with this (case-insensitive) name, if any.
    pub fn find_index_owner(&self, index_name: &str) -> Option<&TableData> {
        self.tables()
            .find(|t| t.def.index_pos(index_name).is_some())
    }
}

/// An immutable image of the whole store, stitched from one published epoch
/// per write partition.
///
/// Readers obtain one from the durability layer — O(partitions) `Arc`
/// clones, no matter how large the database is — and then execute whole
/// queries, scans and cursor fetches against it with **no lock held**.
/// Writers never wait for readers and readers never wait for writers; a
/// snapshot simply keeps showing each partition's state as of its epoch.
/// Name lookups route to the owning shard with the same [`partition_of`]
/// hash the write path uses.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    parts: Vec<Arc<Store>>,
}

impl Default for StoreSnapshot {
    fn default() -> StoreSnapshot {
        StoreSnapshot {
            parts: vec![Arc::new(Store::new())],
        }
    }
}

impl StoreSnapshot {
    /// Capture the current state of `store` as a single-partition snapshot.
    /// Shallow: the per-table `Arc`s are cloned, all row data is shared
    /// until a later writer touches it.
    pub fn capture(store: &Store) -> StoreSnapshot {
        StoreSnapshot {
            parts: vec![Arc::new(store.clone())],
        }
    }

    /// Stitch per-partition published epochs into one snapshot. The slot
    /// order must match the write path's [`partition_of`] routing.
    pub(crate) fn from_parts(parts: Vec<Arc<Store>>) -> StoreSnapshot {
        debug_assert!(!parts.is_empty());
        StoreSnapshot { parts }
    }

    /// The shard that owns `name` under this snapshot's partition count.
    fn shard(&self, name: &str) -> &Store {
        &self.parts[partition_of(name, self.parts.len())]
    }

    /// Look a table up by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<&TableData, StoreError> {
        self.shard(name).table(name)
    }

    /// The shared `Arc` behind a table, by (case-insensitive) name.
    pub fn table_arc(&self, name: &str) -> Option<Arc<TableData>> {
        self.shard(name).table_arc(name)
    }

    /// Does a table with this name exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.shard(name).has_table(name)
    }

    /// Names of all tables across every shard, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .parts
            .iter()
            .flat_map(|p| p.tables().map(|t| t.def.name.clone()))
            .collect();
        names.sort();
        names
    }

    /// Look a procedure's SQL text up by name.
    pub fn proc(&self, name: &str) -> Option<&str> {
        self.shard(name).proc(name)
    }

    /// Does a procedure with this name exist?
    pub fn has_proc(&self, name: &str) -> bool {
        self.shard(name).has_proc(name)
    }

    /// Names of all procedures across every shard, sorted.
    pub fn proc_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.parts.iter().flat_map(|p| p.proc_names()).collect();
        names.sort();
        names
    }

    /// The table owning an index with this (case-insensitive) name, if any.
    /// Index names are not partition-routable, so this searches every shard.
    pub fn find_index_owner(&self, index_name: &str) -> Option<&TableData> {
        self.parts
            .iter()
            .find_map(|p| p.find_index_owner(index_name))
    }

    /// Verify every secondary index in every table against its row image.
    pub fn verify_indexes(&self) -> Result<(), String> {
        for p in &self.parts {
            p.verify_indexes()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema};

    fn keyed_def(name: &str) -> TableDef {
        TableDef::new(
            name,
            Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("name", DataType::Text),
            ]),
        )
        .with_primary_key(vec![0])
    }

    #[test]
    fn insert_assigns_monotone_ids() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        let a = t
            .insert(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        let b = t
            .insert(vec![Value::Int(2), Value::Text("b".into())])
            .unwrap();
        assert!(b > a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let e = t.insert(vec![Value::Int(1), Value::Null]).unwrap_err();
        assert!(matches!(e, StoreError::DuplicateKey(_)));
    }

    #[test]
    fn update_maintains_pk_index() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        let id = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.update(id, vec![Value::Int(5), Value::Null]).unwrap();
        assert_eq!(t.row_id_by_key(&[Value::Int(5)]), Some(id));
        assert_eq!(t.row_id_by_key(&[Value::Int(1)]), None);
    }

    #[test]
    fn update_to_existing_key_rejected() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let id2 = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        let e = t.update(id2, vec![Value::Int(1), Value::Null]).unwrap_err();
        assert!(matches!(e, StoreError::DuplicateKey(_)));
    }

    #[test]
    fn delete_clears_index() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        let id = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.delete(id).unwrap();
        assert_eq!(t.row_id_by_key(&[Value::Int(1)]), None);
        assert!(t.is_empty());
    }

    #[test]
    fn arity_checked() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(StoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn store_names_are_case_insensitive() {
        let mut s = Store::new();
        s.create_table(keyed_def("dbo.Customer")).unwrap();
        assert!(s.has_table("DBO.CUSTOMER"));
        assert!(s.table("dbo.customer").is_ok());
        assert!(s.create_table(keyed_def("DBO.customer")).is_err());
        s.drop_table("dbo.CUSTOMER").unwrap();
        assert!(!s.has_table("dbo.customer"));
    }

    #[test]
    fn procs_crud() {
        let mut s = Store::new();
        s.create_proc("phoenix.p1", "SELECT 1").unwrap();
        assert_eq!(s.proc("PHOENIX.P1"), Some("SELECT 1"));
        assert!(s.create_proc("phoenix.p1", "x").is_err());
        s.drop_proc("phoenix.p1").unwrap();
        assert!(s.proc("phoenix.p1").is_none());
    }

    #[test]
    fn apply_replays_records() {
        let mut s = Store::new();
        s.apply(&LogRecord::CreateTable {
            txn: 1,
            def: keyed_def("dbo.t"),
        })
        .unwrap();
        s.apply(&LogRecord::Insert {
            txn: 1,
            table: "dbo.t".into(),
            row_id: 1,
            row: vec![Value::Int(1), Value::Text("a".into())],
        })
        .unwrap();
        s.apply(&LogRecord::Update {
            txn: 1,
            table: "dbo.t".into(),
            row_id: 1,
            row: vec![Value::Int(1), Value::Text("b".into())],
        })
        .unwrap();
        assert_eq!(
            s.table("dbo.t").unwrap().rows[&1],
            vec![Value::Int(1), Value::Text("b".into())]
        );
        s.apply(&LogRecord::Delete {
            txn: 1,
            table: "dbo.t".into(),
            row_id: 1,
        })
        .unwrap();
        assert!(s.table("dbo.t").unwrap().is_empty());
    }

    #[test]
    fn apply_insert_many_assigns_consecutive_ids() {
        let mut s = Store::new();
        s.create_table(keyed_def("dbo.t")).unwrap();
        s.apply(&LogRecord::InsertMany {
            txn: 1,
            table: "dbo.t".into(),
            first_row_id: 5,
            rows: vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Null],
            ],
        })
        .unwrap();
        let t = s.table("dbo.t").unwrap();
        assert_eq!(t.rows[&5], vec![Value::Int(1), Value::Null]);
        assert_eq!(t.rows[&6], vec![Value::Int(2), Value::Null]);
        assert_eq!(t.next_row_id, 7);
    }

    /// The copy-on-write contract: a cloned store keeps showing the old
    /// image while the original mutates, and only the touched table's data
    /// is actually copied.
    #[test]
    fn clone_is_isolated_from_later_mutations() {
        let mut s = Store::new();
        s.create_table(keyed_def("dbo.a")).unwrap();
        s.create_table(keyed_def("dbo.b")).unwrap();
        s.table_mut("dbo.a")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Null])
            .unwrap();

        let snap = StoreSnapshot::capture(&s);
        // Untouched table is shared, not copied.
        assert!(std::ptr::eq(
            s.table("dbo.b").unwrap(),
            snap.table("dbo.b").unwrap()
        ));

        s.table_mut("dbo.a")
            .unwrap()
            .insert(vec![Value::Int(2), Value::Null])
            .unwrap();
        s.drop_table("dbo.b").unwrap();

        assert_eq!(s.table("dbo.a").unwrap().len(), 2);
        assert_eq!(snap.table("dbo.a").unwrap().len(), 1);
        assert!(snap.has_table("dbo.b"));
    }

    /// Partition routing is a pure function of the normalized name — pinned
    /// values guard against accidental hash changes, which would strand
    /// tables in the wrong WAL stream across an upgrade.
    #[test]
    fn partition_routing_is_deterministic_and_case_insensitive() {
        assert_eq!(partition_of("anything", 1), 0);
        for n in [2usize, 4, 8] {
            assert_eq!(partition_of("dbo.Acct", n), partition_of("DBO.ACCT", n));
            assert!(partition_of("dbo.acct", n) < n);
        }
        // FNV-1a pinned values (n = 2).
        assert_eq!(partition_of("dbo.acct", 2), 1);
        assert_eq!(partition_of("acct", 2), 0);
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let mut s = Store::new();
        for name in ["dbo.a", "dbo.b", "dbo.c", "dbo.d"] {
            s.create_table(keyed_def(name)).unwrap();
        }
        s.create_proc("p1", "SELECT 1").unwrap();
        s.create_proc("p2", "SELECT 2").unwrap();
        let parts = s.clone().into_parts(4);
        assert_eq!(parts.len(), 4);
        let mut merged = Store::new();
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged.table_names(), s.table_names());
        assert_eq!(merged.proc_names(), s.proc_names());
        // Every table landed in the shard its name hashes to.
        for (k, p) in parts.iter().enumerate() {
            for t in p.tables() {
                assert_eq!(partition_of(&t.def.name, 4), k);
            }
        }
    }

    #[test]
    fn multi_part_snapshot_routes_lookups() {
        let mut s = Store::new();
        for name in ["dbo.a", "dbo.b", "dbo.c", "dbo.d"] {
            s.create_table(keyed_def(name)).unwrap();
        }
        s.create_proc("phoenix.p", "SELECT 1").unwrap();
        let parts: Vec<Arc<Store>> = s.clone().into_parts(4).into_iter().map(Arc::new).collect();
        let snap = StoreSnapshot::from_parts(parts);
        for name in ["dbo.a", "dbo.b", "dbo.c", "dbo.d"] {
            assert!(snap.has_table(name), "{name} must resolve through routing");
            assert!(snap.table(name).is_ok());
        }
        assert_eq!(snap.proc("PHOENIX.P"), Some("SELECT 1"));
        assert!(!snap.has_table("dbo.nope"));
        assert_eq!(snap.table_names().len(), 4);
    }

    #[test]
    fn secondary_index_tracks_dml() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        t.create_index("c_name", 1).unwrap();
        let a = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let b = t
            .insert(vec![Value::Int(2), Value::Text("x".into())])
            .unwrap();
        let c = t
            .insert(vec![Value::Int(3), Value::Text("y".into())])
            .unwrap();
        let ix = t.sec_index(0);
        assert_eq!(
            ix[&Value::Text("x".into())],
            BTreeSet::from([a, b]),
            "non-unique bucket holds both rows"
        );
        t.update(b, vec![Value::Int(2), Value::Text("y".into())])
            .unwrap();
        assert_eq!(
            t.sec_index(0)[&Value::Text("x".into())],
            BTreeSet::from([a])
        );
        assert_eq!(
            t.sec_index(0)[&Value::Text("y".into())],
            BTreeSet::from([b, c])
        );
        t.delete(a).unwrap();
        assert!(
            !t.sec_index(0).contains_key(&Value::Text("x".into())),
            "empty buckets are pruned"
        );
        t.verify_indexes().unwrap();
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let mut t = TableData::new(keyed_def("dbo.c"));
        t.insert(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        t.create_index("c_name", 1).unwrap();
        assert_eq!(t.sec_index(0).len(), 2);
        assert!(t.sec_index(0).contains_key(&Value::Null));
        t.verify_indexes().unwrap();
        assert!(matches!(
            t.create_index("C_NAME", 0),
            Err(StoreError::IndexExists(_))
        ));
        let dropped = t.drop_index("c_name").unwrap();
        assert_eq!(dropped.column, 1);
        assert!(t.sec.is_empty());
        assert!(matches!(
            t.drop_index("c_name"),
            Err(StoreError::NoSuchIndex(_))
        ));
    }

    #[test]
    fn apply_replays_index_ddl() {
        let mut s = Store::new();
        s.create_table(keyed_def("dbo.t")).unwrap();
        s.apply(&LogRecord::Insert {
            txn: 1,
            table: "dbo.t".into(),
            row_id: 1,
            row: vec![Value::Int(1), Value::Text("a".into())],
        })
        .unwrap();
        s.apply(&LogRecord::CreateIndex {
            txn: 2,
            table: "dbo.t".into(),
            name: "t_name".into(),
            column: 1,
        })
        .unwrap();
        // DML after the barrier maintains the recovered index.
        s.apply(&LogRecord::Insert {
            txn: 3,
            table: "dbo.t".into(),
            row_id: 2,
            row: vec![Value::Int(2), Value::Text("b".into())],
        })
        .unwrap();
        let t = s.table("dbo.t").unwrap();
        assert_eq!(t.sec_index(0).len(), 2);
        s.verify_indexes().unwrap();
        assert!(s.find_index_owner("T_NAME").is_some());
        s.apply(&LogRecord::DropIndex {
            txn: 4,
            table: "dbo.t".into(),
            name: "t_name".into(),
        })
        .unwrap();
        assert!(s.find_index_owner("t_name").is_none());
    }

    #[test]
    fn recovery_reproduces_row_ids() {
        let mut t = TableData::new(keyed_def("dbo.t"));
        t.insert_with_id(7, vec![Value::Int(1), Value::Null])
            .unwrap();
        // next insert must not collide with the recovered id
        let id = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(id, 8);
    }
}
