//! Logical write-ahead log records.
//!
//! The engine logs one record per durable mutation, tagged with the owning
//! transaction. Recovery replays, in log order, only the mutations of
//! transactions that have a `Commit` record — a *redo-winners* scheme that is
//! correct because the durable image is rebuilt exclusively from the snapshot
//! plus the log (the crashed process's in-memory state, which may contain
//! uncommitted work, is discarded wholesale).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{self, DecodeError};
use crate::types::{Row, RowId, TableDef, TxnId};

/// One logical log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// The transaction.
        txn: TxnId,
    },
    /// Transaction commit — the record that makes the transaction's
    /// mutations durable at recovery.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// Explicit rollback. Recovery treats missing-`Commit` and `Abort`
    /// identically; the record exists so the log is self-explanatory.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
    /// Commit of a transaction that touched more than one WAL partition —
    /// the in-process two-phase record. One copy is appended to *every*
    /// participant stream; recovery treats the transaction as committed iff
    /// the copy is present in each stream the participant set names.
    CommitMulti {
        /// The transaction.
        txn: TxnId,
        /// Partition indexes the transaction wrote to (sorted, distinct).
        participants: Vec<u32>,
    },
    /// A row inserted with the given stable id.
    Insert {
        /// Owning transaction.
        txn: TxnId,
        /// Target table (canonical name).
        table: String,
        /// The stable id assigned.
        row_id: RowId,
        /// The inserted row image.
        row: Row,
    },
    /// A batch of rows inserted with consecutive stable ids starting at
    /// `first_row_id` — one log append covers a whole multi-row statement
    /// (the `INSERT … SELECT` materialization hot path) instead of one
    /// append per row.
    InsertMany {
        /// Owning transaction.
        txn: TxnId,
        /// Target table (canonical name).
        table: String,
        /// Stable id of the first row; row `k` gets `first_row_id + k`.
        first_row_id: RowId,
        /// The inserted row images, in id order.
        rows: Vec<Row>,
    },
    /// A row deleted by id.
    Delete {
        /// Owning transaction.
        txn: TxnId,
        /// Target table.
        table: String,
        /// The deleted row's id.
        row_id: RowId,
    },
    /// A row replaced in place.
    Update {
        /// Owning transaction.
        txn: TxnId,
        /// Target table.
        table: String,
        /// The updated row's id.
        row_id: RowId,
        /// The new row image.
        row: Row,
    },
    /// A table created.
    CreateTable {
        /// Owning transaction.
        txn: TxnId,
        /// The new table's definition.
        def: TableDef,
    },
    /// A table dropped.
    DropTable {
        /// Owning transaction.
        txn: TxnId,
        /// The dropped table.
        name: String,
    },
    /// A stored procedure created; the body is kept as SQL text and re-parsed
    /// by the engine on load.
    CreateProc {
        /// Owning transaction.
        txn: TxnId,
        /// Procedure name.
        name: String,
        /// Full `CREATE PROCEDURE` SQL text.
        sql: String,
    },
    /// A stored procedure dropped.
    DropProc {
        /// Owning transaction.
        txn: TxnId,
        /// The dropped procedure.
        name: String,
    },
    /// A secondary index created. No index pages are ever logged — recovery
    /// replays this barrier and subsequent DML rebuilds the map (REDO-only).
    CreateIndex {
        /// Owning transaction.
        txn: TxnId,
        /// The owning table (canonical name).
        table: String,
        /// Index name.
        name: String,
        /// Index of the indexed column in the table schema.
        column: usize,
    },
    /// A secondary index dropped.
    DropIndex {
        /// Owning transaction.
        txn: TxnId,
        /// The owning table (canonical name), resolved when the statement
        /// executed so replay needs no catalog search.
        table: String,
        /// The dropped index.
        name: String,
    },
}

const T_BEGIN: u8 = 1;
const T_COMMIT: u8 = 2;
const T_ABORT: u8 = 3;
const T_INSERT: u8 = 4;
const T_DELETE: u8 = 5;
const T_UPDATE: u8 = 6;
const T_CREATE_TABLE: u8 = 7;
const T_DROP_TABLE: u8 = 8;
const T_CREATE_PROC: u8 = 9;
const T_DROP_PROC: u8 = 10;
const T_INSERT_MANY: u8 = 11;
const T_COMMIT_MULTI: u8 = 12;
const T_CREATE_INDEX: u8 = 13;
const T_DROP_INDEX: u8 = 14;

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::CommitMulti { txn, .. }
            | LogRecord::Abort { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::InsertMany { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::CreateTable { txn, .. }
            | LogRecord::DropTable { txn, .. }
            | LogRecord::CreateProc { txn, .. }
            | LogRecord::DropProc { txn, .. }
            | LogRecord::CreateIndex { txn, .. }
            | LogRecord::DropIndex { txn, .. } => *txn,
        }
    }

    /// Serialize to the WAL payload encoding.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            LogRecord::Begin { txn } => {
                buf.put_u8(T_BEGIN);
                buf.put_u64_le(*txn);
            }
            LogRecord::Commit { txn } => {
                buf.put_u8(T_COMMIT);
                buf.put_u64_le(*txn);
            }
            LogRecord::Abort { txn } => {
                buf.put_u8(T_ABORT);
                buf.put_u64_le(*txn);
            }
            LogRecord::CommitMulti { txn, participants } => {
                buf.put_u8(T_COMMIT_MULTI);
                buf.put_u64_le(*txn);
                buf.put_u32_le(participants.len() as u32);
                for p in participants {
                    buf.put_u32_le(*p);
                }
            }
            LogRecord::Insert {
                txn,
                table,
                row_id,
                row,
            } => {
                buf.put_u8(T_INSERT);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, table);
                buf.put_u64_le(*row_id);
                codec::put_row(&mut buf, row);
            }
            LogRecord::InsertMany {
                txn,
                table,
                first_row_id,
                rows,
            } => {
                buf.put_u8(T_INSERT_MANY);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, table);
                buf.put_u64_le(*first_row_id);
                buf.put_u32_le(rows.len() as u32);
                for row in rows {
                    codec::put_row(&mut buf, row);
                }
            }
            LogRecord::Delete { txn, table, row_id } => {
                buf.put_u8(T_DELETE);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, table);
                buf.put_u64_le(*row_id);
            }
            LogRecord::Update {
                txn,
                table,
                row_id,
                row,
            } => {
                buf.put_u8(T_UPDATE);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, table);
                buf.put_u64_le(*row_id);
                codec::put_row(&mut buf, row);
            }
            LogRecord::CreateTable { txn, def } => {
                buf.put_u8(T_CREATE_TABLE);
                buf.put_u64_le(*txn);
                codec::put_table_def(&mut buf, def);
            }
            LogRecord::DropTable { txn, name } => {
                buf.put_u8(T_DROP_TABLE);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, name);
            }
            LogRecord::CreateProc { txn, name, sql } => {
                buf.put_u8(T_CREATE_PROC);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, name);
                codec::put_str(&mut buf, sql);
            }
            LogRecord::DropProc { txn, name } => {
                buf.put_u8(T_DROP_PROC);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, name);
            }
            LogRecord::CreateIndex {
                txn,
                table,
                name,
                column,
            } => {
                buf.put_u8(T_CREATE_INDEX);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, table);
                codec::put_str(&mut buf, name);
                buf.put_u16_le(*column as u16);
            }
            LogRecord::DropIndex { txn, table, name } => {
                buf.put_u8(T_DROP_INDEX);
                buf.put_u64_le(*txn);
                codec::put_str(&mut buf, table);
                codec::put_str(&mut buf, name);
            }
        }
        buf.freeze()
    }

    /// Decode one record from WAL payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<LogRecord, DecodeError> {
        let mut buf = bytes;
        if buf.remaining() < 9 {
            return Err(DecodeError("log record too short".into()));
        }
        let tag = buf.get_u8();
        let txn = buf.get_u64_le();
        let rec = match tag {
            T_BEGIN => LogRecord::Begin { txn },
            T_COMMIT => LogRecord::Commit { txn },
            T_ABORT => LogRecord::Abort { txn },
            T_COMMIT_MULTI => {
                if buf.remaining() < 4 {
                    return Err(DecodeError("truncated commit-multi".into()));
                }
                let count = buf.get_u32_le() as usize;
                if buf.remaining() < count * 4 {
                    return Err(DecodeError("truncated commit-multi participants".into()));
                }
                let mut participants = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    participants.push(buf.get_u32_le());
                }
                LogRecord::CommitMulti { txn, participants }
            }
            T_INSERT => {
                let table = codec::get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated insert".into()));
                }
                let row_id = buf.get_u64_le();
                let row = codec::get_row(&mut buf)?;
                LogRecord::Insert {
                    txn,
                    table,
                    row_id,
                    row,
                }
            }
            T_INSERT_MANY => {
                let table = codec::get_str(&mut buf)?;
                if buf.remaining() < 12 {
                    return Err(DecodeError("truncated insert-many".into()));
                }
                let first_row_id = buf.get_u64_le();
                let count = buf.get_u32_le() as usize;
                let mut rows = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    rows.push(codec::get_row(&mut buf)?);
                }
                LogRecord::InsertMany {
                    txn,
                    table,
                    first_row_id,
                    rows,
                }
            }
            T_DELETE => {
                let table = codec::get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated delete".into()));
                }
                let row_id = buf.get_u64_le();
                LogRecord::Delete { txn, table, row_id }
            }
            T_UPDATE => {
                let table = codec::get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated update".into()));
                }
                let row_id = buf.get_u64_le();
                let row = codec::get_row(&mut buf)?;
                LogRecord::Update {
                    txn,
                    table,
                    row_id,
                    row,
                }
            }
            T_CREATE_TABLE => LogRecord::CreateTable {
                txn,
                def: codec::get_table_def(&mut buf)?,
            },
            T_DROP_TABLE => LogRecord::DropTable {
                txn,
                name: codec::get_str(&mut buf)?,
            },
            T_CREATE_PROC => {
                let name = codec::get_str(&mut buf)?;
                let sql = codec::get_str(&mut buf)?;
                LogRecord::CreateProc { txn, name, sql }
            }
            T_DROP_PROC => LogRecord::DropProc {
                txn,
                name: codec::get_str(&mut buf)?,
            },
            T_CREATE_INDEX => {
                let table = codec::get_str(&mut buf)?;
                let name = codec::get_str(&mut buf)?;
                if buf.remaining() < 2 {
                    return Err(DecodeError("truncated create-index".into()));
                }
                let column = buf.get_u16_le() as usize;
                LogRecord::CreateIndex {
                    txn,
                    table,
                    name,
                    column,
                }
            }
            T_DROP_INDEX => {
                let table = codec::get_str(&mut buf)?;
                let name = codec::get_str(&mut buf)?;
                LogRecord::DropIndex { txn, table, name }
            }
            other => return Err(DecodeError(format!("unknown log record tag {other}"))),
        };
        if buf.remaining() != 0 {
            return Err(DecodeError("trailing bytes in log record".into()));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};

    fn roundtrip(rec: LogRecord) {
        let bytes = rec.encode();
        assert_eq!(LogRecord::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn all_records_roundtrip() {
        roundtrip(LogRecord::Begin { txn: 1 });
        roundtrip(LogRecord::Commit { txn: u64::MAX });
        roundtrip(LogRecord::Abort { txn: 7 });
        roundtrip(LogRecord::CommitMulti {
            txn: 11,
            participants: vec![0, 3, 7],
        });
        roundtrip(LogRecord::CommitMulti {
            txn: 12,
            participants: Vec::new(),
        });
        roundtrip(LogRecord::Insert {
            txn: 2,
            table: "dbo.orders".into(),
            row_id: 99,
            row: vec![Value::Int(1), Value::Text("x".into()), Value::Null],
        });
        roundtrip(LogRecord::InsertMany {
            txn: 2,
            table: "dbo.orders".into(),
            first_row_id: 100,
            rows: vec![
                vec![Value::Int(1), Value::Text("x".into())],
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(3), Value::Text("z".into())],
            ],
        });
        roundtrip(LogRecord::InsertMany {
            txn: 9,
            table: "dbo.empty".into(),
            first_row_id: 1,
            rows: Vec::new(),
        });
        roundtrip(LogRecord::Delete {
            txn: 3,
            table: "dbo.orders".into(),
            row_id: 12,
        });
        roundtrip(LogRecord::Update {
            txn: 4,
            table: "t".into(),
            row_id: 5,
            row: vec![Value::Float(2.5)],
        });
        roundtrip(LogRecord::CreateTable {
            txn: 5,
            def: TableDef::new(
                "phoenix.rs_1",
                Schema::new(vec![Column::new("k", DataType::Int)]),
            )
            .with_primary_key(vec![0]),
        });
        roundtrip(LogRecord::DropTable {
            txn: 6,
            name: "phoenix.rs_1".into(),
        });
        roundtrip(LogRecord::CreateProc {
            txn: 7,
            name: "phoenix.p_1".into(),
            sql: "INSERT INTO t SELECT * FROM u".into(),
        });
        roundtrip(LogRecord::DropProc {
            txn: 8,
            name: "phoenix.p_1".into(),
        });
        roundtrip(LogRecord::CreateIndex {
            txn: 9,
            table: "dbo.orders".into(),
            name: "orders_cust".into(),
            column: 2,
        });
        roundtrip(LogRecord::DropIndex {
            txn: 10,
            table: "dbo.orders".into(),
            name: "orders_cust".into(),
        });
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = LogRecord::Begin { txn: 1 }.encode().to_vec();
        bytes.push(0);
        assert!(LogRecord::decode(&bytes).is_err());
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(LogRecord::decode(&[1, 2, 3]).is_err());
    }
}
