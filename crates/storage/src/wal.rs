//! Append-only write-ahead log with length + CRC framing.
//!
//! Frame layout on disk:
//!
//! ```text
//! frame := len:u32 LE | crc:u32 LE | payload[len]
//! ```
//!
//! The reader stops at the first frame whose header is truncated, whose
//! payload is shorter than `len`, or whose CRC does not match — all three are
//! the signature of a crash mid-append (a *torn tail*), and everything before
//! the torn frame is still valid. This is the same discipline real engines
//! use for their log tails.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::metrics::storage_metrics;

/// Maximum accepted payload size (64 MiB). A length field larger than this is
/// treated as tail corruption rather than an attempt to allocate wildly, and
/// [`Wal::append`] refuses to write a larger frame — it would look committed
/// in memory but vanish as a "corrupt tail" on the next recovery.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Chaos fault-point names for one log stream. Each WAL partition carries
/// its own set so a crash-schedule can target (say) `wal.append.p1` without
/// touching partition 0 — the per-partition windows `chaos-explore`
/// enumerates for partial cross-partition commits.
#[derive(Debug, Clone, Copy)]
pub struct WalPoints {
    /// Fault point hit inside [`Wal::append`].
    pub append: &'static str,
    /// Fault point hit inside [`Wal::sync`].
    pub fsync: &'static str,
    /// Fault point hit inside [`Wal::truncate`].
    pub truncate: &'static str,
    /// Fault point hit inside [`Wal::rotate_to`].
    pub rotate: &'static str,
}

impl Default for WalPoints {
    /// The legacy (single-stream / partition-0) names.
    fn default() -> WalPoints {
        WalPoints {
            append: "wal.append",
            fsync: "wal.fsync",
            truncate: "wal.truncate",
            rotate: "wal.rotate",
        }
    }
}

/// An open write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Chaos fault-point names this stream fires.
    points: WalPoints,
    /// Bytes appended since the last sync, used by tests and stats.
    unsynced: usize,
    /// Number of `sync_data` calls issued over the log's lifetime — the
    /// probe group-commit tests use to assert that concurrent commits
    /// coalesce into fewer syncs.
    sync_calls: u64,
}

impl Wal {
    /// Open (creating if necessary) the log at `path` for appending, with
    /// the default (partition-0) fault-point names.
    ///
    /// Any torn or corrupt tail left by a crash mid-append is **truncated
    /// away** before the log accepts its first new frame. The reader already
    /// ignores a bad tail, but without the truncation a post-recovery append
    /// would land *after* the garbage bytes, where the tail-scan discipline
    /// would silently discard it — committed work lost on the following
    /// recovery.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Wal> {
        Self::open_with_points(path, WalPoints::default())
    }

    /// [`Wal::open`] with explicit chaos fault-point names (per-partition
    /// streams use suffixed names like `wal.append.p1`).
    pub fn open_with_points(path: impl AsRef<Path>, points: WalPoints) -> io::Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let valid = valid_prefix_len(&mut file)?;
        if valid < file.metadata()?.len() {
            file.set_len(valid)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path,
            points,
            unsynced: 0,
            sync_calls: 0,
        })
    }

    /// Append one framed record. The bytes are written to the OS but not
    /// necessarily forced to stable storage; call [`Wal::sync`] (commit) for
    /// that.
    ///
    /// A payload larger than [`MAX_FRAME`] is refused: the reader treats such
    /// a length as a corrupt tail, so writing it would silently drop the
    /// record (and everything after it) at the next recovery.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                    payload.len()
                ),
            ));
        }
        let m = storage_metrics();
        let _t = phoenix_obs::Timer::new(&m.wal_append_us);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        match phoenix_chaos::durable_fault(self.points.append) {
            phoenix_chaos::FaultAction::Continue => {}
            phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
            phoenix_chaos::FaultAction::Torn(n) => {
                // Persist a strict prefix of the frame — the on-disk image a
                // power cut mid-write(2) leaves behind — then die.
                let n = n.min(frame.len() - 1);
                self.file.write_all(&frame[..n])?;
                let _ = self.file.sync_data();
                return Err(phoenix_chaos::injected_error(self.points.append));
            }
            phoenix_chaos::FaultAction::Crash | phoenix_chaos::FaultAction::IoError => {
                return Err(phoenix_chaos::injected_error(self.points.append));
            }
        }
        self.file.write_all(&frame)?;
        self.unsynced += frame.len();
        m.wal_appends.inc();
        Ok(())
    }

    /// Force all appended frames to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        phoenix_chaos::check_durable(self.points.fsync)?;
        let m = storage_metrics();
        let _t = phoenix_obs::Timer::new(&m.wal_fsync_us);
        self.file.sync_data()?;
        self.sync_calls += 1;
        self.unsynced = 0;
        m.wal_fsyncs.inc();
        Ok(())
    }

    /// Number of `sync_data` calls issued so far (stats/test probe).
    pub fn sync_count(&self) -> u64 {
        self.sync_calls
    }

    /// Truncate the log to zero length (after a successful checkpoint).
    pub fn truncate(&mut self) -> io::Result<()> {
        phoenix_chaos::check_durable(self.points.truncate)?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Rotate the live log aside to `old_path` and restart the live log
    /// empty. Used by incremental checkpoints: the rotated frames are the
    /// records the snapshot being written will cover, while new mutations
    /// keep appending to the (fresh) live log. Recovery reads `old_path`
    /// first, then the live log, so replay order is preserved.
    ///
    /// If `old_path` already exists — a previous checkpoint rotated but died
    /// before completing — the live frames are *merged* onto the healed tail
    /// of the old file instead, so no generation of records is ever dropped.
    pub fn rotate_to(&mut self, old_path: &Path) -> io::Result<()> {
        phoenix_chaos::check_durable(self.points.rotate)?;
        // Only full, valid frames may move: a torn tail (possible only via
        // injected faults, which kill the process, but cheap to respect)
        // stays behind to be discarded.
        let live_valid = valid_prefix_len(&mut self.file)?;
        if old_path.exists() {
            let mut old = OpenOptions::new().read(true).write(true).open(old_path)?;
            let old_valid = valid_prefix_len(&mut old)?;
            if old_valid < old.metadata()?.len() {
                old.set_len(old_valid)?;
            }
            old.seek(SeekFrom::Start(old_valid))?;
            let mut live = vec![0u8; live_valid as usize];
            self.file.seek(SeekFrom::Start(0))?;
            read_exact_or_eof(&mut self.file, &mut live)?;
            old.write_all(&live)?;
            old.sync_data()?;
            self.file.set_len(0)?;
            self.file.seek(SeekFrom::End(0))?;
            self.file.sync_data()?;
        } else {
            self.file.sync_data()?;
            std::fs::rename(&self.path, old_path)?;
            // `self.file` now refers to the renamed inode; reopen the live
            // path fresh and persist the rename.
            let file = OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&self.path)?;
            if let Some(dir) = self.path.parent() {
                if let Ok(d) = File::open(dir) {
                    let _ = d.sync_data();
                }
            }
            self.file = file;
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Current size of the log file in bytes.
    pub fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every valid frame currently in the log, stopping silently at a
    /// torn or corrupt tail — the **same** tail-validation [`Wal::open`]
    /// uses to heal the file, so recovery (which reads the log *before*
    /// reopening it for appends) can never error on a tail that open()
    /// would simply have truncated away.
    pub fn read_all(path: impl AsRef<Path>) -> io::Result<Vec<Vec<u8>>> {
        let path = path.as_ref();
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut frames = Vec::new();
        scan_valid_frames(BufReader::new(file), |payload| frames.push(payload))?;
        Ok(frames)
    }
}

/// The tail-scan discipline, shared by every reader of the frame format:
/// consume frames from `reader` until EOF or the first torn header, torn
/// payload, over-long length, or CRC mismatch — the signatures of a crash
/// mid-append — handing each valid payload to `sink`. Returns the byte
/// length of the valid prefix.
fn scan_valid_frames(mut reader: impl Read, mut sink: impl FnMut(Vec<u8>)) -> io::Result<u64> {
    let mut valid: u64 = 0;
    loop {
        let mut header = [0u8; 8];
        match read_exact_or_eof(&mut reader, &mut header)? {
            ReadOutcome::Full => {}
            _ => break, // EOF or torn header
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME {
            break; // corrupt length — treat as tail
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_or_eof(&mut reader, &mut payload)? {
            ReadOutcome::Full => {}
            _ => break, // torn payload
        }
        if crc32(&payload) != crc {
            break; // corrupt payload — treat as tail
        }
        valid += 8 + len as u64;
        sink(payload);
    }
    Ok(valid)
}

/// Byte length of the longest prefix of the file that consists solely of
/// valid frames. Leaves the file cursor wherever the scan stopped; callers
/// reposition.
fn valid_prefix_len(file: &mut File) -> io::Result<u64> {
    file.seek(SeekFrom::Start(0))?;
    scan_valid_frames(BufReader::new(&mut *file), |_| {})
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// Read exactly `buf.len()` bytes, reporting whether we got all, some, or
/// none before EOF.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "phoenix-wal-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    #[test]
    fn append_and_read_back() {
        let path = temp_path("basic");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.append(b"").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let frames = Wal::read_all(&path).unwrap();
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec(), Vec::new()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let frames = Wal::read_all(temp_path("missing")).unwrap();
        assert!(frames.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_path("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"keep me").unwrap();
        wal.append(b"tear me").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Chop 3 bytes off the end, simulating a crash mid-append.
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let frames = Wal::read_all(&path).unwrap();
        assert_eq!(frames, vec![b"keep me".to_vec()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_is_ignored() {
        let path = temp_path("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"good record").unwrap();
        wal.append(b"bad record!").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip a byte inside the second record's payload.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let frames = Wal::read_all(&path).unwrap();
        assert_eq!(frames, vec![b"good record".to_vec()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_path("trunc");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"x").unwrap();
        wal.truncate().unwrap();
        assert!(wal.is_empty().unwrap());
        wal.append(b"y").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(Wal::read_all(&path).unwrap(), vec![b"y".to_vec()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_truncates_torn_tail_so_appends_survive() {
        let path = temp_path("open-trunc");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"keep me").unwrap();
        wal.append(b"tear me").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Crash mid-append: the last frame loses its final 3 bytes.
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        // Recovery reopens the log and appends new work. Without tail
        // truncation the new frame would sit after the torn bytes and be
        // unreadable.
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.len().unwrap(), 8 + 7, "torn tail trimmed on open");
        wal.append(b"after crash").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let frames = Wal::read_all(&path).unwrap();
        assert_eq!(frames, vec![b"keep me".to_vec(), b"after crash".to_vec()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_truncates_corrupt_payload_tail() {
        let path = temp_path("open-corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"evil").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Bit-rot in the last frame's payload.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"new").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(
            Wal::read_all(&path).unwrap(),
            vec![b"good".to_vec(), b"new".to_vec()]
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_keeps_fully_valid_log_intact() {
        let path = temp_path("open-clean");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.sync().unwrap();
        let len_before = wal.len().unwrap();
        drop(wal);
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.len().unwrap(), len_before);
        drop(wal);
        assert_eq!(
            Wal::read_all(&path).unwrap(),
            vec![b"a".to_vec(), b"b".to_vec()]
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rotate_moves_frames_aside_and_restarts_empty() {
        let path = temp_path("rotate");
        let old = path.with_extension("old");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.sync().unwrap();
        wal.rotate_to(&old).unwrap();
        assert!(wal.is_empty().unwrap());
        wal.append(b"c").unwrap();
        wal.sync().unwrap();
        assert_eq!(
            Wal::read_all(&old).unwrap(),
            vec![b"a".to_vec(), b"b".to_vec()]
        );
        assert_eq!(Wal::read_all(&path).unwrap(), vec![b"c".to_vec()]);
        fs::remove_file(&path).unwrap();
        fs::remove_file(&old).unwrap();
    }

    #[test]
    fn rotate_merges_into_leftover_old_file() {
        let path = temp_path("rotate-merge");
        let old = path.with_extension("old");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"gen1").unwrap();
        wal.sync().unwrap();
        wal.rotate_to(&old).unwrap();
        // A checkpoint died here: `old` still exists. New appends land in
        // the live log, then the next checkpoint rotates again.
        wal.append(b"gen2").unwrap();
        wal.sync().unwrap();
        wal.rotate_to(&old).unwrap();
        assert!(wal.is_empty().unwrap());
        assert_eq!(
            Wal::read_all(&old).unwrap(),
            vec![b"gen1".to_vec(), b"gen2".to_vec()],
            "both generations merged in order"
        );
        fs::remove_file(&path).unwrap();
        fs::remove_file(&old).unwrap();
    }

    #[test]
    fn rotate_merge_heals_torn_old_tail() {
        let path = temp_path("rotate-heal");
        let old = path.with_extension("old");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"keep").unwrap();
        wal.sync().unwrap();
        wal.rotate_to(&old).unwrap();
        // Tear the old file's tail (crash mid-append before the rotation
        // that created it — simulated by chopping bytes).
        let mut bytes = fs::read(&old).unwrap();
        bytes.extend_from_slice(&[9, 9, 9]); // garbage partial header
        fs::write(&old, &bytes).unwrap();
        wal.append(b"live").unwrap();
        wal.sync().unwrap();
        wal.rotate_to(&old).unwrap();
        assert_eq!(
            Wal::read_all(&old).unwrap(),
            vec![b"keep".to_vec(), b"live".to_vec()],
            "merge trims the torn tail before appending"
        );
        fs::remove_file(&path).unwrap();
        fs::remove_file(&old).unwrap();
    }

    #[test]
    fn absurd_length_field_treated_as_tail() {
        let path = temp_path("len");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"ok").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        // Append a frame header claiming a gigantic payload.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(Wal::read_all(&path).unwrap(), vec![b"ok".to_vec()]);
        fs::remove_file(&path).unwrap();
    }
}
