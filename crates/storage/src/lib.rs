#![warn(missing_docs)]

//! # phoenix-storage
//!
//! Durable data substrate for the Phoenix database stack.
//!
//! This crate supplies everything below the SQL engine that must survive a
//! server crash:
//!
//! * [`types`] — the value model shared by the engine, the wire protocol and
//!   the log ([`types::Value`], [`types::DataType`], [`types::Schema`],
//!   [`types::TableDef`]).
//! * [`codec`] — a compact hand-rolled binary encoding for values, rows and
//!   schemas, shared by the WAL, snapshots and the wire protocol.
//! * [`crc`] — CRC-32 (IEEE) used to frame log records so torn tails are
//!   detected rather than replayed.
//! * [`wal`] — an append-only write-ahead log with length+CRC framing and an
//!   explicit fsync discipline.
//! * [`record`] — the logical log record set (`Begin`/`Commit`/`Abort` plus
//!   one record per engine mutation).
//! * [`store`] — the in-memory materialized image of the durable state
//!   (tables, rows, stored procedures).
//! * [`snapshot`] — checkpointing: atomically written full-state snapshots
//!   that allow the log to be truncated.
//! * [`db`] — [`db::Durable`], the transactional binding of a [`store::Store`]
//!   to a WAL: every mutation is logged before it is applied, commits force
//!   the log, aborts roll back in memory, and [`db::Durable::open`] performs
//!   crash recovery (snapshot load + replay of committed transactions).
//! * [`metrics`] — the crate's phoenix-obs handles: WAL append/fsync
//!   latency, group-commit batch sizes, checkpoint duration, snapshot
//!   publish counts.
//!
//! The paper's central assumption about the database server — *durable tables
//! survive a crash; everything session-scoped does not* — is exactly the
//! contract this crate implements for the engine above it.

pub mod codec;
pub mod crc;
pub mod db;
pub mod metrics;
pub mod record;
pub mod repl;
pub mod snapshot;
pub mod store;
pub mod types;
pub mod wal;

pub use db::{Durability, Durable};
pub use repl::{warm_load, ShipFrame, WarmImage, WarmLoad};
pub use store::{Store, StoreSnapshot, TableData};
pub use types::{Column, DataType, Row, RowId, Schema, TableDef, TxnId, Value};
