//! [`Durable`]: the transactional binding of a [`Store`] to a write-ahead log.
//!
//! Every mutation follows write-ahead discipline — the log record is appended
//! *before* the in-memory store is changed — and commit forces the log. An
//! aborted transaction is rolled back in memory from a per-transaction undo
//! list (the log keeps the records; recovery ignores them because no commit
//! record follows).
//!
//! [`Durable::open`] is crash recovery: load the latest snapshot (manifest +
//! per-table segments), scan the log for the committed-transaction set, then
//! replay committed records with `txn >` the snapshot's *high-water mark* —
//! records at or below the mark belong to transactions whose effects the
//! snapshot already materializes, and replaying them would apply mutations
//! twice. The replay itself is partitioned: DML records group by table and
//! apply across a scoped thread pool (tables are independent and every
//! record carries explicit row ids, so the result is bit-identical to the
//! sequential replay); catalog records are sequential barriers. A process
//! crash at *any* point — including mid-append, which leaves a torn tail the
//! WAL reader discards, and mid-checkpoint, which leaves a rotated
//! `phoenix.wal.old` the next open replays first — recovers to a state
//! containing exactly the committed transactions.
//!
//! # Concurrency
//!
//! All methods take `&self`; the layer is safe to share between sessions.
//! Reads and writes are decoupled by *copy-on-write snapshots*:
//!
//! * writers serialize on the `working` store mutex and hold it across
//!   their append+apply pair, so write-ahead ordering is atomic with
//!   respect to other threads;
//! * after every successful mutation the writer *publishes* an immutable
//!   [`StoreSnapshot`] (a shallow, per-table-`Arc` clone of the working
//!   store) with a cheap pointer swap; [`Durable::snapshot`] hands that
//!   image out in O(1), and readers execute against it with **no lock
//!   held** — a long scan never blocks a writer, and a queued writer never
//!   blocks new readers;
//! * commits coalesce through a *group commit*: each committer appends its
//!   commit record, then one committer (the leader) issues a single
//!   `sync_data` covering every record appended so far while the rest wait
//!   on a condition variable. N threads committing together therefore cost
//!   far fewer than N syncs.
//!
//! Lock order (outer to inner): `checkpoint_state` → `working` → `wal` →
//! {`group.state`, `active`}, and `working` → `published`. `published` is
//! never held with `wal` or `active`.
//!
//! # Checkpoint / commit / abort interlock
//!
//! The snapshot's high-water mark is `last_finished` — the largest txn id
//! that has *finished* (commit record appended, or abort rolled back).
//! Three ordering rules make the mark sound:
//!
//! * `commit` appends the commit record and advances `last_finished` under
//!   the WAL lock **before** leaving the `active` set, so a transaction the
//!   checkpoint's quiescence check no longer sees is always covered by the
//!   mark (and its effects, applied under the working lock, are in the
//!   captured image);
//! * `abort` takes the working lock **before** leaving the `active` set, so
//!   a checkpoint can never capture un-rolled-back effects of a transaction
//!   that is mid-abort;
//! * the checkpoint reads the mark and rotates the log inside one WAL
//!   critical section, so no commit record can land between the two.
//!
//! Freshly begun transactions always carry ids greater than any finished
//! one (`next_txn` is allocation-monotone), their mutations serialize after
//! the capture on the working lock, and their records land in the
//! post-rotation log — so `txn > mark` records are exactly the ones the
//! snapshot does not contain.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use crate::metrics::storage_metrics;
use crate::record::LogRecord;
use crate::store::{normalize_name, Store, StoreError, StoreSnapshot, TableData};
use crate::types::{Row, RowId, TableDef, TxnId};
use crate::wal::{Wal, MAX_FRAME};
use crate::{codec::DecodeError, snapshot};

/// When to force the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// fsync on every commit (full crash safety; the default).
    Fsync,
    /// Leave flushing to the OS. Used by benchmarks that want to isolate
    /// protocol/execution costs from disk costs; noted in EXPERIMENTS.md
    /// whenever it is in effect.
    Buffered,
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure (WAL append, snapshot write, …).
    Io(io::Error),
    /// In-memory store rejected the operation.
    Store(StoreError),
    /// Log or snapshot bytes did not decode (corruption).
    Decode(DecodeError),
    /// Operation named a transaction that is not active.
    NoSuchTxn(TxnId),
    /// Operation requires quiescence but a transaction is active.
    TxnActive(TxnId),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Store(e) => write!(f, "{e}"),
            DbError::Decode(e) => write!(f, "{e}"),
            DbError::NoSuchTxn(t) => write!(f, "no such transaction {t}"),
            DbError::TxnActive(t) => write!(f, "transaction {t} still active"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}
impl From<StoreError> for DbError {
    fn from(e: StoreError) -> Self {
        DbError::Store(e)
    }
}
impl From<DecodeError> for DbError {
    fn from(e: DecodeError) -> Self {
        DbError::Decode(e)
    }
}

/// Inverse operations recorded per transaction for in-memory rollback.
enum UndoOp {
    RemoveRow {
        table: String,
        row_id: RowId,
    },
    ReinsertRow {
        table: String,
        row_id: RowId,
        row: Row,
    },
    RestoreRow {
        table: String,
        row_id: RowId,
        row: Row,
    },
    DropCreatedTable {
        name: String,
    },
    RestoreDroppedTable {
        data: TableData,
    },
    DropCreatedProc {
        name: String,
    },
    RestoreDroppedProc {
        name: String,
        sql: String,
    },
}

/// Group-commit rendezvous. Committers take a monotonically increasing
/// sequence number when they append their commit record; the first committer
/// to find no leader flushes on everyone's behalf.
struct GroupState {
    /// Sequence number of the most recently appended commit record.
    appended: u64,
    /// All commit records with sequence ≤ `flushed` are on stable storage.
    flushed: u64,
    /// A leader is currently inside `sync_data`.
    leader: bool,
}

struct GroupCommit {
    state: Mutex<GroupState>,
    /// Signalled whenever `flushed` advances or the leader seat frees up.
    flushed_cv: Condvar,
}

/// Recovery tuning for [`Durable::open_opts`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    /// Worker threads for the partitioned replay pass. `None` picks the
    /// available parallelism; `Some(1)` forces sequential replay (the
    /// baseline the recovery bench compares against).
    pub replay_threads: Option<usize>,
}

/// What recovery did, exposed for benches and observability.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Valid WAL frames read (rotated log + live log).
    pub wal_frames: usize,
    /// Records applied to the store (committed, past the snapshot mark).
    pub records_applied: u64,
    /// Records skipped: uncommitted, or `txn ≤` the snapshot mark.
    pub records_skipped: u64,
    /// Distinct tables touched by the replay.
    pub tables_replayed: usize,
    /// Worker threads the partitioned pass was allowed to use.
    pub replay_threads: usize,
    /// Wall time of decode + commit scan + apply, in microseconds.
    pub replay_us: u64,
}

/// Timing/shape of the most recent checkpoint (bench + test probe).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStats {
    /// How long the writer lock was held (capture + log rotation) — the
    /// only phase that blocks mutations — in microseconds.
    pub pause_us: u64,
    /// Full checkpoint duration in microseconds.
    pub total_us: u64,
    /// Table segments serialized by this checkpoint.
    pub segments_written: usize,
    /// Table segments reused (data unchanged since the last checkpoint).
    pub segments_reused: usize,
}

/// Serializes checkpoints and carries the previous checkpoint's identity
/// map so the next one can diff against it.
struct CheckpointState {
    /// Generation of the last durable manifest (0 = none yet).
    gen: u64,
    /// Normalized table key → (segment file, table image as serialized).
    /// `Arc::ptr_eq` against the live store detects unchanged tables.
    base: HashMap<String, (String, Arc<TableData>)>,
    /// Stats of the most recent completed checkpoint.
    stats: CheckpointStats,
}

/// A durable, transactional store, shareable across threads (`&self` API).
pub struct Durable {
    /// The writers' image. Mutations lock it, append+apply, then publish.
    working: Mutex<Store>,
    /// The readers' image: the snapshot published by the latest mutation.
    /// The lock is held only for the pointer swap / `Arc` clone, never
    /// across query execution.
    published: RwLock<Arc<StoreSnapshot>>,
    wal: Mutex<Wal>,
    dir: PathBuf,
    durability: Durability,
    next_txn: AtomicU64,
    active: Mutex<HashMap<TxnId, Vec<UndoOp>>>,
    group: GroupCommit,
    /// Records appended since the last checkpoint (drives auto-checkpoint
    /// policy in the engine; the layer itself never checkpoints implicitly).
    records_since_checkpoint: AtomicU64,
    /// Largest txn id that has finished (committed or aborted). Updated
    /// under the WAL lock at commit-append time; the checkpoint's snapshot
    /// mark. Recovery seeds it with the recovered high-water mark.
    last_finished: AtomicU64,
    /// Checkpoint serialization + the previous checkpoint's segment images.
    checkpoint_state: Mutex<CheckpointState>,
    /// What recovery did when this handle was opened.
    recovery: RecoveryReport,
}

impl Durable {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("phoenix.wal")
    }

    /// The rotated-aside log of an in-progress (or crashed) checkpoint.
    /// Replayed *before* the live log; deleted when the checkpoint's
    /// manifest is durable.
    fn wal_old_path(dir: &Path) -> PathBuf {
        dir.join("phoenix.wal.old")
    }

    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("phoenix.snapshot")
    }

    /// Open the database in `dir`, performing crash recovery with default
    /// [`RecoveryOptions`].
    pub fn open(dir: impl AsRef<Path>, durability: Durability) -> Result<Durable, DbError> {
        Self::open_opts(dir, durability, &RecoveryOptions::default())
    }

    /// Open the database in `dir`, performing crash recovery.
    ///
    /// Recovery loads the snapshot manifest and its table segments, reads
    /// the rotated log (if a checkpoint was interrupted) followed by the
    /// live log, scans once for the committed-transaction set, and then
    /// replays committed records **newer than the snapshot mark** — grouped
    /// by table and applied in parallel where the log's structure allows.
    pub fn open_opts(
        dir: impl AsRef<Path>,
        durability: Durability,
        opts: &RecoveryOptions,
    ) -> Result<Durable, DbError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let (mut store, mark, gen, seg_files) =
            match snapshot::load(&dir, &Self::snapshot_path(&dir))? {
                Some(s) => (s.store, s.mark, s.gen, s.segments),
                None => (Store::new(), 0, 0, HashMap::new()),
            };

        // The previous checkpoint's identity map, captured *before* replay:
        // tables the replay leaves untouched keep their `Arc` (the base map
        // holds a second reference, so replay's `Arc::make_mut` clones
        // exactly the touched ones) and the next checkpoint reuses their
        // segments.
        let base: HashMap<String, (String, Arc<TableData>)> = seg_files
            .into_iter()
            .filter_map(|(key, file)| store.table_arc(&key).map(|arc| (key, (file, arc))))
            .collect();

        let replay_start = Instant::now();

        // Read the rotated log first (frames older than everything in the
        // live log), then the live log. Both reads tolerate a torn tail.
        let mut frames = Wal::read_all(Self::wal_old_path(&dir))?;
        frames.extend(Wal::read_all(Self::wal_path(&dir))?);

        let threads = opts
            .replay_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);

        // Pass 1: decode (in parallel — it is pure CPU and usually the
        // bulk of replay time) and find committed transactions.
        let records = decode_frames(&frames, threads)?;
        let mut committed: HashSet<TxnId> = HashSet::new();
        let mut last_txn = mark;
        for rec in &records {
            if let LogRecord::Commit { txn } = rec {
                committed.insert(*txn);
            }
            last_txn = last_txn.max(rec.txn());
        }
        let total_records = records.len() as u64;

        // Pass 2: partitioned replay of committed records past the mark.
        let (applied, tables_replayed) =
            replay_records(&mut store, records, &committed, mark, threads)?;

        let report = RecoveryReport {
            wal_frames: frames.len(),
            records_applied: applied,
            records_skipped: total_records - applied,
            tables_replayed,
            replay_threads: threads,
            replay_us: replay_start.elapsed().as_micros() as u64,
        };
        storage_metrics()
            .recovery_replay_us
            .record(report.replay_us);

        let wal = Wal::open(Self::wal_path(&dir))?;
        Ok(Durable {
            published: RwLock::new(Arc::new(StoreSnapshot::capture(&store))),
            working: Mutex::new(store),
            wal: Mutex::new(wal),
            dir,
            durability,
            next_txn: AtomicU64::new(last_txn + 1),
            active: Mutex::new(HashMap::new()),
            group: GroupCommit {
                state: Mutex::new(GroupState {
                    appended: 0,
                    flushed: 0,
                    leader: false,
                }),
                flushed_cv: Condvar::new(),
            },
            records_since_checkpoint: AtomicU64::new(total_records),
            last_finished: AtomicU64::new(last_txn),
            checkpoint_state: Mutex::new(CheckpointState {
                gen,
                base,
                stats: CheckpointStats::default(),
            }),
            recovery: report,
        })
    }

    /// What recovery did when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Timing/shape of the most recent checkpoint taken by this handle.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.checkpoint_state.lock().stats.clone()
    }

    /// The current published image. O(1): clones an `Arc` under a lock held
    /// only for the clone itself. The caller then reads with no lock at
    /// all — long scans never block writers, and writers never block new
    /// readers. The snapshot keeps showing the state as of the last
    /// publication; take a fresh one per statement (or per cursor fetch)
    /// for current data.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        self.published.read().clone()
    }

    /// Publish the working image for readers. Called with the working lock
    /// held so publication order matches mutation order.
    fn publish(&self, working: &Store) {
        match phoenix_chaos::fault("store.publish") {
            phoenix_chaos::FaultAction::Continue => {}
            phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
            // Process death between mutation and publish: readers keep the
            // previous snapshot, exactly as a crashed server would leave it.
            _ => return,
        }
        let snap = Arc::new(StoreSnapshot::capture(working));
        *self.published.write() = snap;
        storage_metrics().snapshot_publishes.inc();
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured commit durability.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Number of log records appended since the last checkpoint.
    pub fn log_records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint.load(Ordering::Relaxed)
    }

    /// Number of `sync_data` calls the WAL has issued (group-commit probe).
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.lock().sync_count()
    }

    /// Append one record. Callers that need write-ahead atomicity with a
    /// store mutation must already hold the working-store lock.
    fn log(&self, rec: &LogRecord) -> Result<(), DbError> {
        self.log_bytes(&rec.encode())
    }

    /// Append an already-encoded record payload.
    fn log_bytes(&self, payload: &[u8]) -> Result<(), DbError> {
        self.wal.lock().append(payload)?;
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Begin a new transaction.
    pub fn begin(&self) -> Result<TxnId, DbError> {
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        self.log(&LogRecord::Begin { txn })?;
        self.active.lock().insert(txn, Vec::new());
        Ok(txn)
    }

    /// Commit: log the commit record and force the log (under `Fsync`).
    ///
    /// Concurrent committers coalesce: each appends its record and takes a
    /// group sequence number; one of them (the leader) syncs the file once
    /// for every record appended so far, the rest wait until the flushed
    /// watermark covers their own sequence number.
    pub fn commit(&self, txn: TxnId) -> Result<(), DbError> {
        // Append the commit record, advance the finished-txn high-water
        // mark, and claim a sequence number — all under the WAL lock (so
        // sequence order matches append order) and all *before* leaving the
        // `active` set. A checkpoint that observes this transaction as
        // inactive is thereby guaranteed to capture a mark covering it: its
        // commit record can never land after the snapshot's log rotation
        // while its effects sit inside the snapshot image (the double-apply
        // window).
        let seq = {
            let mut wal = self.wal.lock();
            if !self.active.lock().contains_key(&txn) {
                return Err(DbError::NoSuchTxn(txn));
            }
            wal.append(&LogRecord::Commit { txn }.encode())?;
            self.records_since_checkpoint
                .fetch_add(1, Ordering::Relaxed);
            self.last_finished.fetch_max(txn, Ordering::Relaxed);
            let mut st = self.group.state.lock();
            st.appended += 1;
            st.appended
        };
        self.active.lock().remove(&txn);
        if self.durability == Durability::Fsync {
            self.group_sync(seq)?;
        }
        Ok(())
    }

    /// Wait until the commit record with group sequence `seq` is durable,
    /// taking the leader role if nobody else is flushing.
    fn group_sync(&self, seq: u64) -> Result<(), DbError> {
        let mut st = self.group.state.lock();
        loop {
            if st.flushed >= seq {
                return Ok(());
            }
            if st.leader {
                // A flush is in flight; it may or may not cover us. Wait for
                // the watermark to move and re-check.
                self.group.flushed_cv.wait(&mut st);
                continue;
            }
            st.leader = true;
            drop(st);
            // Leader: one sync covers every record appended so far —
            // including those of the committers now parked on the condvar.
            let flush = {
                let mut wal = self.wal.lock();
                let upto = self.group.state.lock().appended;
                wal.sync().map(|()| upto)
            };
            st = self.group.state.lock();
            st.leader = false;
            match flush {
                Ok(upto) => {
                    if upto > st.flushed {
                        let m = storage_metrics();
                        m.group_commit_records.add(upto - st.flushed);
                        m.group_commit_syncs.inc();
                        m.group_commit_batch.record(upto - st.flushed);
                    }
                    st.flushed = st.flushed.max(upto);
                    self.group.flushed_cv.notify_all();
                    // `upto` ≥ our `seq` (we appended before flushing), so
                    // the next loop iteration returns Ok.
                }
                Err(e) => {
                    // Wake waiters so one of them can retry as leader.
                    self.group.flushed_cv.notify_all();
                    return Err(DbError::Io(e));
                }
            }
        }
    }

    /// Abort: undo in memory (reverse order) and log the abort record.
    ///
    /// The working lock is taken *before* the transaction leaves the
    /// `active` set: a checkpoint serializes its capture on the same lock,
    /// so it can never see the transaction as finished while its effects
    /// are still un-rolled-back in the store.
    pub fn abort(&self, txn: TxnId) -> Result<(), DbError> {
        let mut store = self.working.lock();
        let undo = self
            .active
            .lock()
            .remove(&txn)
            .ok_or(DbError::NoSuchTxn(txn))?;
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::RemoveRow { table, row_id } => {
                    store.table_mut(&table)?.delete(row_id)?;
                }
                UndoOp::ReinsertRow { table, row_id, row } => {
                    store.table_mut(&table)?.insert_with_id(row_id, row)?;
                }
                UndoOp::RestoreRow { table, row_id, row } => {
                    store.table_mut(&table)?.update(row_id, row)?;
                }
                UndoOp::DropCreatedTable { name } => {
                    store.drop_table(&name)?;
                }
                UndoOp::RestoreDroppedTable { data } => {
                    store.install_table(data);
                }
                UndoOp::DropCreatedProc { name } => {
                    store.drop_proc(&name)?;
                }
                UndoOp::RestoreDroppedProc { name, sql } => {
                    store.create_proc(&name, &sql)?;
                }
            }
        }
        self.log(&LogRecord::Abort { txn })?;
        // Aborted ids count as finished too: the mark also seeds `next_txn`
        // after a post-checkpoint recovery, and ids must stay monotone even
        // when the highest allocated one never committed.
        self.last_finished.fetch_max(txn, Ordering::Relaxed);
        self.publish(&store);
        Ok(())
    }

    /// Is `txn` currently active?
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.lock().contains_key(&txn)
    }

    /// Error unless `txn` is active.
    fn check_active(&self, txn: TxnId) -> Result<(), DbError> {
        if self.active.lock().contains_key(&txn) {
            Ok(())
        } else {
            Err(DbError::NoSuchTxn(txn))
        }
    }

    /// Record an undo entry for `txn` (which the caller verified is active;
    /// tolerate a concurrent removal by dropping the entry — the txn is gone
    /// and its undo list with it).
    fn push_undo(&self, txn: TxnId, op: UndoOp) {
        if let Some(list) = self.active.lock().get_mut(&txn) {
            list.push(op);
        }
    }

    // -- mutations (log first, then apply; the working-store mutex makes the
    //    pair atomic with respect to other sessions, and every successful
    //    mutation publishes a fresh snapshot before releasing it) ------------

    /// Insert a row (logged, undoable), returning its stable id.
    pub fn insert(&self, txn: TxnId, table: &str, row: Row) -> Result<RowId, DbError> {
        self.check_active(txn)?;
        let mut store = self.working.lock();
        // Determine the id the insert *will* get so the log matches the apply.
        let row_id = store.table(table)?.next_row_id;
        self.log(&LogRecord::Insert {
            txn,
            table: table.to_string(),
            row_id,
            row: row.clone(),
        })?;
        let assigned = store.table_mut(table)?.insert(row)?;
        debug_assert_eq!(assigned, row_id);
        self.publish(&store);
        self.push_undo(
            txn,
            UndoOp::RemoveRow {
                table: table.to_string(),
                row_id,
            },
        );
        Ok(row_id)
    }

    /// Insert a batch of rows with consecutive stable ids, taking **one**
    /// WAL append (and one lock round trip) for the whole batch instead of
    /// one per row — the `INSERT … SELECT` materialization hot path.
    ///
    /// A batch whose encoding would exceed the WAL frame cap is split into
    /// the minimum number of conforming chunk records; a single row too big
    /// for a frame is refused with the same `InvalidInput` error as
    /// [`Durable::insert`].
    pub fn insert_many(
        &self,
        txn: TxnId,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Vec<RowId>, DbError> {
        self.check_active(txn)?;
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut store = self.working.lock();
        let mut assigned = Vec::with_capacity(rows.len());
        let mut pending = std::collections::VecDeque::new();
        pending.push_back(rows);
        let result = (|| {
            while let Some(chunk) = pending.pop_front() {
                let first_row_id = store.table(table)?.next_row_id;
                let rec = LogRecord::InsertMany {
                    txn,
                    table: table.to_string(),
                    first_row_id,
                    rows: chunk,
                };
                let encoded = rec.encode();
                let LogRecord::InsertMany {
                    rows: mut chunk, ..
                } = rec
                else {
                    unreachable!()
                };
                if encoded.len() > MAX_FRAME as usize && chunk.len() > 1 {
                    // Halve until each piece fits; ids stay consecutive
                    // because the front piece is re-popped and logged first.
                    let tail = chunk.split_off(chunk.len() / 2);
                    pending.push_front(tail);
                    pending.push_front(chunk);
                    continue;
                }
                // A lone row too big for a frame reaches the append, which
                // refuses it with `InvalidInput` before anything is applied.
                self.log_bytes(&encoded)?;
                let t = store.table_mut(table)?;
                for row in chunk.drain(..) {
                    assigned.push(t.insert(row)?);
                }
            }
            Ok(())
        })();
        // Rows applied before an error are undoable (and the statement's
        // transaction aborts on error), so record undo for what landed even
        // on the failure path — matching the per-row insert loop this
        // replaces.
        if !assigned.is_empty() {
            self.publish(&store);
            if let Some(list) = self.active.lock().get_mut(&txn) {
                list.extend(assigned.iter().map(|&row_id| UndoOp::RemoveRow {
                    table: table.to_string(),
                    row_id,
                }));
            }
        }
        result.map(|()| assigned)
    }

    /// Delete a row by id (logged, undoable), returning its image.
    pub fn delete(&self, txn: TxnId, table: &str, row_id: RowId) -> Result<Row, DbError> {
        self.check_active(txn)?;
        let mut store = self.working.lock();
        self.log(&LogRecord::Delete {
            txn,
            table: table.to_string(),
            row_id,
        })?;
        let row = store.table_mut(table)?.delete(row_id)?;
        self.publish(&store);
        self.push_undo(
            txn,
            UndoOp::ReinsertRow {
                table: table.to_string(),
                row_id,
                row: row.clone(),
            },
        );
        Ok(row)
    }

    /// Replace a row in place (logged, undoable), returning the old image.
    pub fn update(&self, txn: TxnId, table: &str, row_id: RowId, row: Row) -> Result<Row, DbError> {
        self.check_active(txn)?;
        let mut store = self.working.lock();
        self.log(&LogRecord::Update {
            txn,
            table: table.to_string(),
            row_id,
            row: row.clone(),
        })?;
        let old = store.table_mut(table)?.update(row_id, row)?;
        self.publish(&store);
        self.push_undo(
            txn,
            UndoOp::RestoreRow {
                table: table.to_string(),
                row_id,
                row: old.clone(),
            },
        );
        Ok(old)
    }

    /// Create a table (logged, undoable).
    pub fn create_table(&self, txn: TxnId, def: TableDef) -> Result<(), DbError> {
        self.check_active(txn)?;
        let mut store = self.working.lock();
        self.log(&LogRecord::CreateTable {
            txn,
            def: def.clone(),
        })?;
        let name = def.name.clone();
        store.create_table(def)?;
        self.publish(&store);
        self.push_undo(txn, UndoOp::DropCreatedTable { name });
        Ok(())
    }

    /// Drop a table (logged; abort restores it with its rows).
    pub fn drop_table(&self, txn: TxnId, name: &str) -> Result<(), DbError> {
        self.check_active(txn)?;
        let mut store = self.working.lock();
        self.log(&LogRecord::DropTable {
            txn,
            name: name.to_string(),
        })?;
        let data = store.drop_table(name)?;
        self.publish(&store);
        self.push_undo(txn, UndoOp::RestoreDroppedTable { data });
        Ok(())
    }

    /// Register a stored procedure (logged, undoable).
    pub fn create_proc(&self, txn: TxnId, name: &str, sql: &str) -> Result<(), DbError> {
        self.check_active(txn)?;
        let mut store = self.working.lock();
        self.log(&LogRecord::CreateProc {
            txn,
            name: name.to_string(),
            sql: sql.to_string(),
        })?;
        store.create_proc(name, sql)?;
        self.publish(&store);
        self.push_undo(
            txn,
            UndoOp::DropCreatedProc {
                name: name.to_string(),
            },
        );
        Ok(())
    }

    /// Drop a stored procedure (logged; abort restores it).
    pub fn drop_proc(&self, txn: TxnId, name: &str) -> Result<(), DbError> {
        self.check_active(txn)?;
        let mut store = self.working.lock();
        self.log(&LogRecord::DropProc {
            txn,
            name: name.to_string(),
        })?;
        let sql = store.drop_proc(name)?;
        self.publish(&store);
        self.push_undo(
            txn,
            UndoOp::RestoreDroppedProc {
                name: name.to_string(),
                sql,
            },
        );
        Ok(())
    }

    /// Take a checkpoint: capture the current *committed* image, rotate the
    /// log aside, serialize the tables whose data changed since the last
    /// checkpoint, commit the new manifest, and discard the rotated log.
    ///
    /// Requires no active transactions (the engine quiesces first); a
    /// snapshot with an in-flight transaction would otherwise capture its
    /// uncommitted effects without the log records needed to decide its
    /// fate. The writer lock is held only for the **pause phase** — an
    /// O(tables) pointer-clone of the store plus the log rotation — and is
    /// released before any serialization happens; concurrent writers append
    /// to the fresh log while the segments are written. Snapshot readers
    /// are unaffected throughout: they keep executing against the last
    /// published image.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let cp = self.checkpoint_state.lock();
        let store = self.working.lock();
        self.run_checkpoint(cp, store)
    }

    /// Non-blocking [`Self::checkpoint`]: returns `Ok(false)` without doing
    /// anything if a checkpoint is already running or another writer
    /// currently holds the working store.
    ///
    /// Background/best-effort callers use this rather than `checkpoint()`
    /// so an opportunistic checkpoint never queues behind a long write —
    /// readers are already immune (they run on published snapshots and
    /// never touch the writer lock).
    pub fn try_checkpoint(&self) -> Result<bool, DbError> {
        let Some(cp) = self.checkpoint_state.try_lock() else {
            return Ok(false);
        };
        match self.working.try_lock() {
            Some(store) => self.run_checkpoint(cp, store).map(|()| true),
            None => Ok(false),
        }
    }

    fn run_checkpoint(
        &self,
        mut cp: MutexGuard<'_, CheckpointState>,
        store: MutexGuard<'_, Store>,
    ) -> Result<(), DbError> {
        let start = Instant::now();
        if let Some(txn) = self.active.lock().keys().next().copied() {
            return Err(DbError::TxnActive(txn));
        }
        let m = storage_metrics();
        let _t = phoenix_obs::Timer::new(&m.checkpoint_us);

        // ---- pause phase (writer lock held) --------------------------------
        // A shallow image: per-table `Arc` clones only. Any later mutation
        // copies-on-write away from these pointers, so the image is frozen.
        let image: Store = store.clone();
        // Mark + rotation inside one WAL critical section: `last_finished`
        // advances under the WAL lock (commit) or the working lock (abort,
        // which we also hold), so no transaction can finish between reading
        // the mark and rotating the log — `txn ≤ mark` is then *exactly*
        // "records whose effects the image materializes".
        let mark = {
            let mut wal = self.wal.lock();
            let mark = self.last_finished.load(Ordering::Relaxed);
            wal.rotate_to(&Self::wal_old_path(&self.dir))?;
            mark
        };
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        drop(store);
        let pause_us = start.elapsed().as_micros() as u64;
        m.checkpoint_pause_us.record(pause_us);

        // ---- write phase (writers run concurrently) ------------------------
        phoenix_chaos::check_durable("checkpoint.write")?;
        let gen = cp.gen + 1;
        let mut tables = Vec::new();
        let mut base: HashMap<String, (String, Arc<TableData>)> = HashMap::new();
        let mut written = 0usize;
        let mut reused = 0usize;
        for (idx, name) in image.table_names().iter().enumerate() {
            let key = normalize_name(name);
            let arc = image.table_arc(&key).expect("table listed but missing");
            let file = match cp.base.get(&key) {
                // Same data pointer as the segment on disk: reuse it.
                Some((file, old)) if Arc::ptr_eq(old, &arc) => {
                    reused += 1;
                    file.clone()
                }
                _ => {
                    let file = snapshot::segment_file_name(gen, idx);
                    snapshot::write_segment(&self.dir.join(&file), &arc)?;
                    written += 1;
                    file
                }
            };
            tables.push((name.clone(), file.clone()));
            base.insert(key, (file, arc));
        }
        let procs = image
            .proc_names()
            .iter()
            .map(|n| (n.clone(), image.proc(n).expect("proc listed").to_string()))
            .collect();
        snapshot::write_manifest(
            &Self::snapshot_path(&self.dir),
            &snapshot::Manifest {
                mark,
                gen,
                tables,
                procs,
            },
        )?;

        // The manifest rename is the commit point: the rotated log and any
        // segments this generation superseded are now dead. A crash here
        // (the `checkpoint.truncate` fault point) must leave a recoverable
        // image — recovery replays the rotated log with the mark filter, so
        // nothing is applied twice.
        phoenix_chaos::check_durable("checkpoint.truncate")?;
        match std::fs::remove_file(Self::wal_old_path(&self.dir)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let keep: HashSet<String> = base.values().map(|(f, _)| f.clone()).collect();
        snapshot::remove_orphan_segments(&self.dir, &keep)?;

        cp.gen = gen;
        cp.base = base;
        cp.stats = CheckpointStats {
            pause_us,
            total_us: start.elapsed().as_micros() as u64,
            segments_written: written,
            segments_reused: reused,
        };
        m.checkpoints.inc();
        Ok(())
    }
}

/// One unit of the partitioned replay: a catalog record that must apply
/// alone (a barrier — it changes the table set every later record resolves
/// against), or a run of per-table DML groups that apply concurrently.
enum ReplayEpoch {
    Catalog(LogRecord),
    Dml(Vec<(String, Vec<LogRecord>)>),
}

type TableWork = (String, Arc<TableData>, Vec<LogRecord>);
type WorkerResult = Result<Vec<(String, Arc<TableData>)>, StoreError>;

/// Decode WAL frames into log records, fanning contiguous chunks out over
/// up to `threads` scoped workers (record order is preserved — workers get
/// adjacent slices and results are concatenated in slice order). Small
/// logs stay sequential: the spawn cost would exceed the decode cost.
fn decode_frames(frames: &[Vec<u8>], threads: usize) -> Result<Vec<LogRecord>, DbError> {
    if threads <= 1 || frames.len() < 1024 {
        return frames
            .iter()
            .map(|f| LogRecord::decode(f).map_err(DbError::from))
            .collect();
    }
    let chunk = frames.len().div_ceil(threads);
    let decoded = std::thread::scope(|s| {
        let handles: Vec<_> = frames
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    c.iter()
                        .map(|f| LogRecord::decode(f))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("decode worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut out = Vec::with_capacity(frames.len());
    for r in decoded {
        out.extend(r?);
    }
    Ok(out)
}

/// Replay `records` onto `store`: committed transactions only, past the
/// snapshot `mark`, grouped by table between catalog barriers and applied
/// across up to `threads` scoped workers. Returns `(records in the replay
/// set, distinct tables touched)`.
///
/// Determinism: every DML record carries explicit row ids and per-table
/// log order is preserved inside each group, so the partitioned apply is
/// bit-identical to the sequential one regardless of worker scheduling.
fn replay_records(
    store: &mut Store,
    records: Vec<LogRecord>,
    committed: &HashSet<TxnId>,
    mark: TxnId,
    threads: usize,
) -> Result<(u64, usize), DbError> {
    let mut epochs: Vec<ReplayEpoch> = Vec::new();
    let mut current: Vec<(String, Vec<LogRecord>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut touched: HashSet<String> = HashSet::new();
    let mut eligible = 0u64;
    for rec in records {
        if rec.txn() <= mark || !committed.contains(&rec.txn()) {
            continue;
        }
        eligible += 1;
        match &rec {
            // Transaction markers carry no state.
            LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. } => {}
            LogRecord::CreateTable { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::CreateProc { .. }
            | LogRecord::DropProc { .. } => {
                if !current.is_empty() {
                    epochs.push(ReplayEpoch::Dml(std::mem::take(&mut current)));
                    index.clear();
                }
                epochs.push(ReplayEpoch::Catalog(rec));
            }
            LogRecord::Insert { table, .. }
            | LogRecord::InsertMany { table, .. }
            | LogRecord::Delete { table, .. }
            | LogRecord::Update { table, .. } => {
                let key = normalize_name(table);
                touched.insert(key.clone());
                match index.get(&key) {
                    Some(&i) => current[i].1.push(rec),
                    None => {
                        index.insert(key.clone(), current.len());
                        current.push((key, vec![rec]));
                    }
                }
            }
        }
    }
    if !current.is_empty() {
        epochs.push(ReplayEpoch::Dml(current));
    }

    for epoch in epochs {
        match epoch {
            ReplayEpoch::Catalog(rec) => store.apply(&rec)?,
            ReplayEpoch::Dml(groups) => apply_dml_groups(store, groups, threads)?,
        }
    }
    Ok((eligible, touched.len()))
}

/// Apply one epoch's per-table DML groups, in parallel when it pays.
fn apply_dml_groups(
    store: &mut Store,
    groups: Vec<(String, Vec<LogRecord>)>,
    threads: usize,
) -> Result<(), DbError> {
    if threads <= 1 || groups.len() <= 1 {
        for (_, recs) in groups {
            for rec in recs {
                store.apply(&rec)?;
            }
        }
        return Ok(());
    }
    // Hand each table's `Arc` to a worker. Ownership transfer keeps the
    // copy-on-write semantics: a table also referenced by the snapshot's
    // base image is cloned by `Arc::make_mut` exactly once, unreferenced
    // ones mutate in place.
    let mut work: Vec<TableWork> = Vec::with_capacity(groups.len());
    for (key, recs) in groups {
        let arc = store
            .take_table(&key)
            .ok_or_else(|| StoreError::NoSuchTable(key.clone()))?;
        work.push((key, arc, recs));
    }
    let workers = threads.min(work.len());
    let mut buckets: Vec<Vec<TableWork>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in work.into_iter().enumerate() {
        buckets[i % workers].push(item);
    }
    let results: Vec<WorkerResult> = std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    let mut out = Vec::with_capacity(bucket.len());
                    for (key, mut arc, recs) in bucket {
                        let t = Arc::make_mut(&mut arc);
                        for rec in &recs {
                            t.apply_dml(rec)?;
                        }
                        out.push((key, arc));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay worker panicked"))
            .collect()
    });
    let mut first_err: Option<StoreError> = None;
    for res in results {
        match res {
            Ok(tables) => {
                for (key, arc) in tables {
                    store.put_table(key, arc);
                }
            }
            // A failed worker's tables stay out of the store; the whole
            // open fails with the error, so the partial store is discarded.
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("phoenix-db-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn def() -> TableDef {
        TableDef::new(
            "dbo.t",
            Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("v", DataType::Text),
            ]),
        )
        .with_primary_key(vec![0])
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::Text(v.into())]
    }

    #[test]
    fn committed_work_survives_reopen() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.insert(t, "dbo.t", row(1, "a")).unwrap();
            db.insert(t, "dbo.t", row(2, "b")).unwrap();
            db.commit(t).unwrap();
            // Simulate crash: drop without checkpoint.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let store = db.snapshot();
        let t = store.table("dbo.t").unwrap();
        assert_eq!(t.len(), 2);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_work_is_lost_on_reopen() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.commit(t).unwrap();
            let t2 = db.begin().unwrap();
            db.insert(t2, "dbo.t", row(1, "ghost")).unwrap();
            // No commit; crash.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert!(db.snapshot().table("dbo.t").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_rolls_back_in_memory() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "a")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        let rid = db.insert(t2, "dbo.t", row(2, "b")).unwrap();
        db.update(t2, "dbo.t", 1, row(1, "changed")).unwrap();
        db.delete(t2, "dbo.t", 1).unwrap();
        db.create_proc(t2, "p", "SELECT 1").unwrap();
        db.abort(t2).unwrap();

        let store = db.snapshot();
        let tbl = store.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.rows[&1], row(1, "a"));
        assert!(!tbl.rows.contains_key(&rid));
        assert!(store.proc("p").is_none());
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_restores_dropped_table() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "keep")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        db.drop_table(t2, "dbo.t").unwrap();
        assert!(!db.snapshot().has_table("dbo.t"));
        db.abort(t2).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A snapshot handed out before mutations keeps showing the old image:
    /// inserts, updates, deletes, batch inserts and drops land in later
    /// publications without disturbing the reader's copy.
    #[test]
    fn snapshot_is_immutable_under_later_mutations() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "a")).unwrap();
        db.commit(t).unwrap();

        let before = db.snapshot();
        let t2 = db.begin().unwrap();
        db.update(t2, "dbo.t", 1, row(1, "mutated")).unwrap();
        db.insert_many(t2, "dbo.t", vec![row(2, "b"), row(3, "c")])
            .unwrap();
        db.delete(t2, "dbo.t", 1).unwrap();
        db.commit(t2).unwrap();

        // The old snapshot still shows exactly the pre-mutation image …
        let tbl = before.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.rows[&1], row(1, "a"));
        // … while a fresh one sees everything.
        let after = db.snapshot();
        let tbl = after.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 2);
        assert!(!tbl.rows.contains_key(&1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `insert_many` is one log append for the whole batch, and recovery
    /// replays it identically to per-row inserts.
    #[test]
    fn insert_many_logs_once_and_recovers() {
        let dir = temp_dir();
        let ids;
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            let before = db.log_records_since_checkpoint();
            ids = db
                .insert_many(t, "dbo.t", (0..50).map(|i| row(i, "v")).collect())
                .unwrap();
            assert_eq!(db.log_records_since_checkpoint(), before + 1);
            db.commit(t).unwrap();
        }
        assert_eq!(ids, (1..=50).collect::<Vec<RowId>>());
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let snap = db.snapshot();
        let tbl = snap.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 50);
        assert_eq!(tbl.next_row_id, 51);
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A batch whose encoding exceeds the WAL frame cap is split into
    /// multiple conforming records instead of being refused.
    #[test]
    fn insert_many_splits_oversized_batches() {
        let dir = temp_dir();
        let ids;
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            // 5 rows × ~20 MiB ≈ 100 MiB encoded — over the 64 MiB cap,
            // but each half fits.
            let big = "y".repeat(20 * 1024 * 1024);
            let before = db.log_records_since_checkpoint();
            ids = db
                .insert_many(t, "dbo.t", (0..5).map(|i| row(i, &big)).collect())
                .unwrap();
            assert!(db.log_records_since_checkpoint() > before + 1);
            db.commit(t).unwrap();
        }
        assert_eq!(ids, (1..=5).collect::<Vec<RowId>>());
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An aborted `insert_many` is fully undone.
    #[test]
    fn insert_many_aborts_cleanly() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "keep")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        db.insert_many(t2, "dbo.t", vec![row(2, "b"), row(3, "c"), row(4, "d")])
            .unwrap();
        db.abort(t2).unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.table("dbo.t").unwrap().len(), 1);
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_log_and_preserves_state() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            for i in 0..10 {
                db.insert(t, "dbo.t", row(i, "x")).unwrap();
            }
            db.commit(t).unwrap();
            db.checkpoint().unwrap();
            assert_eq!(db.log_records_since_checkpoint(), 0);
            // More work after the checkpoint.
            let t2 = db.begin().unwrap();
            db.insert(t2, "dbo.t", row(100, "post")).unwrap();
            db.commit(t2).unwrap();
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_refused_with_active_txn() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        assert!(matches!(db.checkpoint(), Err(DbError::TxnActive(x)) if x == t));
        db.abort(t).unwrap();
        db.checkpoint().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn txn_ids_monotone_across_restarts() {
        let dir = temp_dir();
        let last = {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.commit(t).unwrap();
            t
        };
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        assert!(t > last);
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_ids_stable_across_recovery() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.insert(t, "dbo.t", row(1, "a")).unwrap();
            let rid2 = db.insert(t, "dbo.t", row(2, "b")).unwrap();
            db.delete(t, "dbo.t", rid2).unwrap();
            db.commit(t).unwrap();
        }
        let dir2 = dir.clone();
        let db = Durable::open(&dir2, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        // A new insert must not reuse the deleted id 2.
        let rid = db.insert(t, "dbo.t", row(3, "c")).unwrap();
        assert_eq!(rid, 3);
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutating_unknown_txn_is_an_error() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert!(matches!(
            db.insert(999, "dbo.t", row(1, "x")),
            Err(DbError::NoSuchTxn(999))
        ));
        assert!(matches!(db.commit(999), Err(DbError::NoSuchTxn(999))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The guard returned by an oversized `Wal::append` surfaces through the
    /// durability layer as an `Io` error even in release builds, instead of
    /// silently writing a frame recovery would discard as a corrupt tail.
    #[test]
    fn oversized_row_is_refused_not_silently_dropped() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        // A text value bigger than the frame cap; the encoded record is
        // necessarily bigger still.
        let huge = "x".repeat(MAX_FRAME as usize + 1);
        let err = db
            .insert(t, "dbo.t", vec![Value::Int(1), Value::Text(huge)])
            .unwrap_err();
        match err {
            DbError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
            other => panic!("expected Io(InvalidInput), got {other}"),
        }
        // The store was not touched (log-before-apply: the append failed
        // before any apply) and the database remains usable.
        assert!(db.snapshot().table("dbo.t").unwrap().is_empty());
        db.insert(t, "dbo.t", row(1, "small")).unwrap();
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Concurrent committers must coalesce into fewer `sync_data` calls than
    /// commits (the group-commit property the bench measures).
    #[test]
    fn group_commit_coalesces_syncs() {
        use std::sync::Arc;
        let dir = temp_dir();
        let db = Arc::new(Durable::open(&dir, Durability::Fsync).unwrap());
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.commit(t).unwrap();

        let before = db.wal_sync_count();
        const THREADS: usize = 8;
        const COMMITS: usize = 25;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|k| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..COMMITS {
                        let t = db.begin().unwrap();
                        db.insert(t, "dbo.t", row((k * COMMITS + i) as i64 + 10, "w"))
                            .unwrap();
                        db.commit(t).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let syncs = db.wal_sync_count() - before;
        let commits = (THREADS * COMMITS) as u64;
        assert!(syncs >= 1, "commits must sync at least once");
        assert!(
            syncs < commits,
            "expected group commit to coalesce: {syncs} syncs for {commits} commits"
        );
        assert_eq!(
            db.snapshot().table("dbo.t").unwrap().len(),
            commits as usize
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Interleaved transactions from many threads all recover after a crash.
    #[test]
    fn concurrent_commits_all_recover() {
        use std::sync::Arc;
        let dir = temp_dir();
        {
            let db = Arc::new(Durable::open(&dir, Durability::Fsync).unwrap());
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.commit(t).unwrap();
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    let db = Arc::clone(&db);
                    std::thread::spawn(move || {
                        for i in 0..20 {
                            let t = db.begin().unwrap();
                            db.insert(t, "dbo.t", row((k * 20 + i) as i64, "v"))
                                .unwrap();
                            if i % 5 == 4 {
                                // Sprinkle empty aborts between the commits,
                                // plus an extra insert under the live txn.
                                let a = db.begin().unwrap();
                                db.insert(t, "dbo.t", row(1000 + (k * 20 + i) as i64, "tmp"))
                                    .unwrap();
                                db.abort(a).unwrap();
                            }
                            db.commit(t).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // Crash: drop without checkpoint.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let store = db.snapshot();
        let tbl = store.table("dbo.t").unwrap();
        // 4 threads × 20 committed inserts each, plus 4×4 extra rows inserted
        // under the *committed* txn t during the abort interludes.
        assert_eq!(tbl.len(), 80 + 16);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod reopen_tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("phoenix-reopen-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Recovery is idempotent: opening, doing nothing, and re-opening any
    /// number of times never changes the recovered state (replaying the
    /// same committed log repeatedly must converge).
    #[test]
    fn repeated_recovery_is_idempotent() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(
                t,
                TableDef::new("dbo.t", Schema::new(vec![Column::new("v", DataType::Int)])),
            )
            .unwrap();
            for i in 0..5 {
                db.insert(t, "dbo.t", vec![Value::Int(i)]).unwrap();
            }
            db.commit(t).unwrap();
        }
        let snapshot_of = |db: &Durable| -> Vec<(u64, i64)> {
            db.snapshot()
                .table("dbo.t")
                .unwrap()
                .rows
                .iter()
                .map(|(rid, row)| (*rid, row[0].as_i64().unwrap()))
                .collect()
        };
        let first = {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            snapshot_of(&db)
        };
        for _ in 0..3 {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            assert_eq!(snapshot_of(&db), first);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Checkpoint + more work + crash + recover + checkpoint again: the
    /// snapshot/log alternation composes.
    #[test]
    fn alternating_checkpoints_and_crashes() {
        let dir = temp_dir();
        for round in 0..4 {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            if round == 0 {
                let t = db.begin().unwrap();
                db.create_table(
                    t,
                    TableDef::new("dbo.t", Schema::new(vec![Column::new("v", DataType::Int)])),
                )
                .unwrap();
                db.commit(t).unwrap();
            }
            let t = db.begin().unwrap();
            db.insert(t, "dbo.t", vec![Value::Int(round)]).unwrap();
            db.commit(t).unwrap();
            if round % 2 == 0 {
                db.checkpoint().unwrap();
            }
            // Crash (drop) either right after the checkpoint or with the
            // round's work only in the log.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
