//! [`Durable`]: the transactional binding of a [`Store`] to a write-ahead log.
//!
//! Every mutation follows write-ahead discipline — the log record is appended
//! *before* the in-memory store is changed — and commit forces the log. An
//! aborted transaction is rolled back in memory from a per-transaction undo
//! list (the log keeps the records; recovery ignores them because no commit
//! record follows).
//!
//! [`Durable::open`] is crash recovery: load the latest snapshot, scan the
//! log for the committed-transaction set, then replay committed records in
//! log order. A process crash at *any* point — including mid-append, which
//! leaves a torn tail the WAL reader discards — recovers to a state
//! containing exactly the committed transactions.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use crate::record::LogRecord;
use crate::store::{Store, StoreError, TableData};
use crate::types::{Row, RowId, TableDef, TxnId};
use crate::wal::Wal;
use crate::{codec::DecodeError, snapshot};

/// When to force the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// fsync on every commit (full crash safety; the default).
    Fsync,
    /// Leave flushing to the OS. Used by benchmarks that want to isolate
    /// protocol/execution costs from disk costs; noted in EXPERIMENTS.md
    /// whenever it is in effect.
    Buffered,
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure (WAL append, snapshot write, …).
    Io(io::Error),
    /// In-memory store rejected the operation.
    Store(StoreError),
    /// Log or snapshot bytes did not decode (corruption).
    Decode(DecodeError),
    /// Operation named a transaction that is not active.
    NoSuchTxn(TxnId),
    /// Operation requires quiescence but a transaction is active.
    TxnActive(TxnId),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Store(e) => write!(f, "{e}"),
            DbError::Decode(e) => write!(f, "{e}"),
            DbError::NoSuchTxn(t) => write!(f, "no such transaction {t}"),
            DbError::TxnActive(t) => write!(f, "transaction {t} still active"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}
impl From<StoreError> for DbError {
    fn from(e: StoreError) -> Self {
        DbError::Store(e)
    }
}
impl From<DecodeError> for DbError {
    fn from(e: DecodeError) -> Self {
        DbError::Decode(e)
    }
}

/// Inverse operations recorded per transaction for in-memory rollback.
enum UndoOp {
    RemoveRow { table: String, row_id: RowId },
    ReinsertRow { table: String, row_id: RowId, row: Row },
    RestoreRow { table: String, row_id: RowId, row: Row },
    DropCreatedTable { name: String },
    RestoreDroppedTable { data: TableData },
    DropCreatedProc { name: String },
    RestoreDroppedProc { name: String, sql: String },
}

/// A durable, transactional store.
pub struct Durable {
    store: Store,
    wal: Wal,
    dir: PathBuf,
    durability: Durability,
    next_txn: TxnId,
    active: HashMap<TxnId, Vec<UndoOp>>,
    /// Records appended since the last checkpoint (drives auto-checkpoint
    /// policy in the engine; the layer itself never checkpoints implicitly).
    records_since_checkpoint: u64,
}

impl Durable {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("phoenix.wal")
    }

    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("phoenix.snapshot")
    }

    /// Open the database in `dir`, performing crash recovery.
    pub fn open(dir: impl AsRef<Path>, durability: Durability) -> Result<Durable, DbError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let (mut store, mut last_txn) = match snapshot::load(Self::snapshot_path(&dir))? {
            Some((s, t)) => (s, t),
            None => (Store::new(), 0),
        };

        // Pass 1: find committed transactions in the log.
        let frames = Wal::read_all(Self::wal_path(&dir))?;
        let mut committed: HashSet<TxnId> = HashSet::new();
        let mut records = Vec::with_capacity(frames.len());
        for frame in &frames {
            let rec = LogRecord::decode(frame)?;
            if let LogRecord::Commit { txn } = rec {
                committed.insert(txn);
            }
            last_txn = last_txn.max(rec.txn());
            records.push(rec);
        }

        // Pass 2: replay committed records in log order.
        for rec in &records {
            if committed.contains(&rec.txn()) {
                store.apply(rec)?;
            }
        }

        let wal = Wal::open(Self::wal_path(&dir))?;
        Ok(Durable {
            store,
            wal,
            dir,
            durability,
            next_txn: last_txn + 1,
            active: HashMap::new(),
            records_since_checkpoint: 0,
        })
    }

    /// Read-only view of the durable image.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured commit durability.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Number of log records appended since the last checkpoint.
    pub fn log_records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    fn log(&mut self, rec: &LogRecord) -> Result<(), DbError> {
        self.wal.append(&rec.encode())?;
        self.records_since_checkpoint += 1;
        Ok(())
    }

    /// Begin a new transaction.
    pub fn begin(&mut self) -> Result<TxnId, DbError> {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.log(&LogRecord::Begin { txn })?;
        self.active.insert(txn, Vec::new());
        Ok(txn)
    }

    /// Commit: log the commit record and force the log (under `Fsync`).
    pub fn commit(&mut self, txn: TxnId) -> Result<(), DbError> {
        if self.active.remove(&txn).is_none() {
            return Err(DbError::NoSuchTxn(txn));
        }
        self.log(&LogRecord::Commit { txn })?;
        if self.durability == Durability::Fsync {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// Abort: undo in memory (reverse order) and log the abort record.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), DbError> {
        let undo = self.active.remove(&txn).ok_or(DbError::NoSuchTxn(txn))?;
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::RemoveRow { table, row_id } => {
                    self.store.table_mut(&table)?.delete(row_id)?;
                }
                UndoOp::ReinsertRow { table, row_id, row } => {
                    self.store.table_mut(&table)?.insert_with_id(row_id, row)?;
                }
                UndoOp::RestoreRow { table, row_id, row } => {
                    self.store.table_mut(&table)?.update(row_id, row)?;
                }
                UndoOp::DropCreatedTable { name } => {
                    self.store.drop_table(&name)?;
                }
                UndoOp::RestoreDroppedTable { data } => {
                    self.store.install_table(data);
                }
                UndoOp::DropCreatedProc { name } => {
                    self.store.drop_proc(&name)?;
                }
                UndoOp::RestoreDroppedProc { name, sql } => {
                    self.store.create_proc(&name, &sql)?;
                }
            }
        }
        self.log(&LogRecord::Abort { txn })?;
        Ok(())
    }

    /// Is `txn` currently active?
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.contains_key(&txn)
    }

    fn undo_list(&mut self, txn: TxnId) -> Result<&mut Vec<UndoOp>, DbError> {
        self.active.get_mut(&txn).ok_or(DbError::NoSuchTxn(txn))
    }

    // -- mutations (log first, then apply) ----------------------------------

    /// Insert a row (logged, undoable), returning its stable id.
    pub fn insert(&mut self, txn: TxnId, table: &str, row: Row) -> Result<RowId, DbError> {
        self.undo_list(txn)?;
        // Determine the id the insert *will* get so the log matches the apply.
        let row_id = self.store.table(table)?.next_row_id;
        self.log(&LogRecord::Insert {
            txn,
            table: table.to_string(),
            row_id,
            row: row.clone(),
        })?;
        let assigned = self.store.table_mut(table)?.insert(row)?;
        debug_assert_eq!(assigned, row_id);
        self.undo_list(txn)?.push(UndoOp::RemoveRow {
            table: table.to_string(),
            row_id,
        });
        Ok(row_id)
    }

    /// Delete a row by id (logged, undoable), returning its image.
    pub fn delete(&mut self, txn: TxnId, table: &str, row_id: RowId) -> Result<Row, DbError> {
        self.undo_list(txn)?;
        self.log(&LogRecord::Delete {
            txn,
            table: table.to_string(),
            row_id,
        })?;
        let row = self.store.table_mut(table)?.delete(row_id)?;
        self.undo_list(txn)?.push(UndoOp::ReinsertRow {
            table: table.to_string(),
            row_id,
            row: row.clone(),
        });
        Ok(row)
    }

    /// Replace a row in place (logged, undoable), returning the old image.
    pub fn update(&mut self, txn: TxnId, table: &str, row_id: RowId, row: Row) -> Result<Row, DbError> {
        self.undo_list(txn)?;
        self.log(&LogRecord::Update {
            txn,
            table: table.to_string(),
            row_id,
            row: row.clone(),
        })?;
        let old = self.store.table_mut(table)?.update(row_id, row)?;
        self.undo_list(txn)?.push(UndoOp::RestoreRow {
            table: table.to_string(),
            row_id,
            row: old.clone(),
        });
        Ok(old)
    }

    /// Create a table (logged, undoable).
    pub fn create_table(&mut self, txn: TxnId, def: TableDef) -> Result<(), DbError> {
        self.undo_list(txn)?;
        self.log(&LogRecord::CreateTable {
            txn,
            def: def.clone(),
        })?;
        let name = def.name.clone();
        self.store.create_table(def)?;
        self.undo_list(txn)?.push(UndoOp::DropCreatedTable { name });
        Ok(())
    }

    /// Drop a table (logged; abort restores it with its rows).
    pub fn drop_table(&mut self, txn: TxnId, name: &str) -> Result<(), DbError> {
        self.undo_list(txn)?;
        self.log(&LogRecord::DropTable {
            txn,
            name: name.to_string(),
        })?;
        let data = self.store.drop_table(name)?;
        self.undo_list(txn)?.push(UndoOp::RestoreDroppedTable { data });
        Ok(())
    }

    /// Register a stored procedure (logged, undoable).
    pub fn create_proc(&mut self, txn: TxnId, name: &str, sql: &str) -> Result<(), DbError> {
        self.undo_list(txn)?;
        self.log(&LogRecord::CreateProc {
            txn,
            name: name.to_string(),
            sql: sql.to_string(),
        })?;
        self.store.create_proc(name, sql)?;
        self.undo_list(txn)?.push(UndoOp::DropCreatedProc {
            name: name.to_string(),
        });
        Ok(())
    }

    /// Drop a stored procedure (logged; abort restores it).
    pub fn drop_proc(&mut self, txn: TxnId, name: &str) -> Result<(), DbError> {
        self.undo_list(txn)?;
        self.log(&LogRecord::DropProc {
            txn,
            name: name.to_string(),
        })?;
        let sql = self.store.drop_proc(name)?;
        self.undo_list(txn)?.push(UndoOp::RestoreDroppedProc {
            name: name.to_string(),
            sql,
        });
        Ok(())
    }

    /// Take a checkpoint: write a snapshot of the current *committed* image
    /// and truncate the log.
    ///
    /// Requires no active transactions (the engine quiesces first); a
    /// snapshot + truncate with an in-flight transaction would otherwise
    /// capture its uncommitted effects without the log records needed to
    /// decide its fate.
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        if let Some((&txn, _)) = self.active.iter().next() {
            return Err(DbError::TxnActive(txn));
        }
        snapshot::write(Self::snapshot_path(&self.dir), &self.store, self.next_txn - 1)?;
        self.wal.truncate()?;
        self.records_since_checkpoint = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("phoenix-db-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn def() -> TableDef {
        TableDef::new(
            "dbo.t",
            Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("v", DataType::Text),
            ]),
        )
        .with_primary_key(vec![0])
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::Text(v.into())]
    }

    #[test]
    fn committed_work_survives_reopen() {
        let dir = temp_dir();
        {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.insert(t, "dbo.t", row(1, "a")).unwrap();
            db.insert(t, "dbo.t", row(2, "b")).unwrap();
            db.commit(t).unwrap();
            // Simulate crash: drop without checkpoint.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.store().table("dbo.t").unwrap();
        assert_eq!(t.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_work_is_lost_on_reopen() {
        let dir = temp_dir();
        {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.commit(t).unwrap();
            let t2 = db.begin().unwrap();
            db.insert(t2, "dbo.t", row(1, "ghost")).unwrap();
            // No commit; crash.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert!(db.store().table("dbo.t").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_rolls_back_in_memory() {
        let dir = temp_dir();
        let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "a")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        let rid = db.insert(t2, "dbo.t", row(2, "b")).unwrap();
        db.update(t2, "dbo.t", 1, row(1, "changed")).unwrap();
        db.delete(t2, "dbo.t", 1).unwrap();
        db.create_proc(t2, "p", "SELECT 1").unwrap();
        db.abort(t2).unwrap();

        let tbl = db.store().table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.rows[&1], row(1, "a"));
        assert!(!tbl.rows.contains_key(&rid));
        assert!(db.store().proc("p").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_restores_dropped_table() {
        let dir = temp_dir();
        let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "keep")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        db.drop_table(t2, "dbo.t").unwrap();
        assert!(!db.store().has_table("dbo.t"));
        db.abort(t2).unwrap();
        assert_eq!(db.store().table("dbo.t").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_log_and_preserves_state() {
        let dir = temp_dir();
        {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            for i in 0..10 {
                db.insert(t, "dbo.t", row(i, "x")).unwrap();
            }
            db.commit(t).unwrap();
            db.checkpoint().unwrap();
            assert_eq!(db.log_records_since_checkpoint(), 0);
            // More work after the checkpoint.
            let t2 = db.begin().unwrap();
            db.insert(t2, "dbo.t", row(100, "post")).unwrap();
            db.commit(t2).unwrap();
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.store().table("dbo.t").unwrap().len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_refused_with_active_txn() {
        let dir = temp_dir();
        let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        assert!(matches!(db.checkpoint(), Err(DbError::TxnActive(x)) if x == t));
        db.abort(t).unwrap();
        db.checkpoint().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn txn_ids_monotone_across_restarts() {
        let dir = temp_dir();
        let last = {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.commit(t).unwrap();
            t
        };
        let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        assert!(t > last);
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_ids_stable_across_recovery() {
        let dir = temp_dir();
        {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.insert(t, "dbo.t", row(1, "a")).unwrap();
            let rid2 = db.insert(t, "dbo.t", row(2, "b")).unwrap();
            db.delete(t, "dbo.t", rid2).unwrap();
            db.commit(t).unwrap();
        }
        let dir2 = dir.clone();
        let mut db = Durable::open(&dir2, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        // A new insert must not reuse the deleted id 2.
        let rid = db.insert(t, "dbo.t", row(3, "c")).unwrap();
        assert_eq!(rid, 3);
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutating_unknown_txn_is_an_error() {
        let dir = temp_dir();
        let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert!(matches!(
            db.insert(999, "dbo.t", row(1, "x")),
            Err(DbError::NoSuchTxn(999))
        ));
        assert!(matches!(db.commit(999), Err(DbError::NoSuchTxn(999))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod reopen_tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("phoenix-reopen-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Recovery is idempotent: opening, doing nothing, and re-opening any
    /// number of times never changes the recovered state (replaying the
    /// same committed log repeatedly must converge).
    #[test]
    fn repeated_recovery_is_idempotent() {
        let dir = temp_dir();
        {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(
                t,
                TableDef::new("dbo.t", Schema::new(vec![Column::new("v", DataType::Int)])),
            )
            .unwrap();
            for i in 0..5 {
                db.insert(t, "dbo.t", vec![Value::Int(i)]).unwrap();
            }
            db.commit(t).unwrap();
        }
        let snapshot_of = |db: &Durable| -> Vec<(u64, i64)> {
            db.store()
                .table("dbo.t")
                .unwrap()
                .rows
                .iter()
                .map(|(rid, row)| (*rid, row[0].as_i64().unwrap()))
                .collect()
        };
        let first = {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            snapshot_of(&db)
        };
        for _ in 0..3 {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            assert_eq!(snapshot_of(&db), first);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Checkpoint + more work + crash + recover + checkpoint again: the
    /// snapshot/log alternation composes.
    #[test]
    fn alternating_checkpoints_and_crashes() {
        let dir = temp_dir();
        for round in 0..4 {
            let mut db = Durable::open(&dir, Durability::Fsync).unwrap();
            if round == 0 {
                let t = db.begin().unwrap();
                db.create_table(
                    t,
                    TableDef::new("dbo.t", Schema::new(vec![Column::new("v", DataType::Int)])),
                )
                .unwrap();
                db.commit(t).unwrap();
            }
            let t = db.begin().unwrap();
            db.insert(t, "dbo.t", vec![Value::Int(round)]).unwrap();
            db.commit(t).unwrap();
            if round % 2 == 0 {
                db.checkpoint().unwrap();
            }
            // Crash (drop) either right after the checkpoint or with the
            // round's work only in the log.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.store().table("dbo.t").unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
