//! [`Durable`]: the transactional binding of a [`Store`] to a write-ahead log.
//!
//! Every mutation follows write-ahead discipline — the log record is appended
//! *before* the in-memory store is changed — and commit forces the log. An
//! aborted transaction is rolled back in memory from a per-transaction undo
//! list (the log keeps the records; recovery ignores them because no commit
//! record follows).
//!
//! [`Durable::open`] is crash recovery: load the latest snapshot (manifest +
//! per-table segments), scan the log for the committed-transaction set, then
//! replay committed records with `txn >` the snapshot's *high-water mark* —
//! records at or below the mark belong to transactions whose effects the
//! snapshot already materializes, and replaying them would apply mutations
//! twice. The replay itself is partitioned: DML records group by table and
//! apply across a scoped thread pool (tables are independent and every
//! record carries explicit row ids, so the result is bit-identical to the
//! sequential replay); catalog records are sequential barriers. A process
//! crash at *any* point — including mid-append, which leaves a torn tail the
//! WAL reader discards, and mid-checkpoint, which leaves a rotated
//! `phoenix.wal.old` the next open replays first — recovers to a state
//! containing exactly the committed transactions.
//!
//! # Concurrency
//!
//! All methods take `&self`; the layer is safe to share between sessions.
//! Reads and writes are decoupled by *copy-on-write snapshots*:
//!
//! * writers serialize on the `working` store mutex and hold it across
//!   their append+apply pair, so write-ahead ordering is atomic with
//!   respect to other threads;
//! * after every successful mutation the writer *publishes* an immutable
//!   [`StoreSnapshot`] (a shallow, per-table-`Arc` clone of the working
//!   store) with a cheap pointer swap; [`Durable::snapshot`] hands that
//!   image out in O(1), and readers execute against it with **no lock
//!   held** — a long scan never blocks a writer, and a queued writer never
//!   blocks new readers;
//! * commits coalesce through a *group commit*: each committer appends its
//!   commit record, then one committer (the leader) issues a single
//!   `sync_data` covering every record appended so far while the rest wait
//!   on a condition variable. N threads committing together therefore cost
//!   far fewer than N syncs.
//!
//! # Partitioned write path
//!
//! The store is sharded by table name hash into N *partitions* (see
//! [`partition_of`]). Each partition owns its own working-store mutex, its
//! own WAL stream (`phoenix.wal` for partition 0, `phoenix.wal.p<k>` above)
//! and its own group committer, so transactions touching disjoint
//! partitions append, fsync and apply fully concurrently. Every WAL frame
//! payload is prefixed with a *global sequence number* (GSN) drawn from one
//! process-wide atomic; recovery merges the N streams by GSN back into the
//! single total order the replay machinery expects. A transaction that
//! wrote to several partitions commits with a [`LogRecord::CommitMulti`]
//! record — one copy appended to *every* touched stream, carrying the full
//! participant set — and recovery treats it as committed iff the record is
//! present in each participant's stream (two-phase commit within the
//! process: a crash between the per-stream appends rolls the whole
//! transaction back).
//!
//! Lock order (outer to inner): `checkpoint_state` → `working[k]`
//! (ascending k) → `wal[k]` (ascending k) → {`group[k].state`, `active`},
//! and `working[k]` → `published[k]`. `published` is never held with `wal`
//! or `active`.
//!
//! # Checkpoint / commit / abort interlock
//!
//! The snapshot's high-water mark is `last_finished` — the largest txn id
//! that has *finished* (commit record appended, or abort rolled back).
//! Three ordering rules make the mark sound:
//!
//! * `commit` appends the commit record and advances `last_finished` under
//!   the WAL lock **before** leaving the `active` set, so a transaction the
//!   checkpoint's quiescence check no longer sees is always covered by the
//!   mark (and its effects, applied under the working lock, are in the
//!   captured image);
//! * `abort` takes the working lock **before** leaving the `active` set, so
//!   a checkpoint can never capture un-rolled-back effects of a transaction
//!   that is mid-abort;
//! * the checkpoint reads the mark and rotates the log inside one WAL
//!   critical section, so no commit record can land between the two.
//!
//! Freshly begun transactions always carry ids greater than any finished
//! one (`next_txn` is allocation-monotone), their mutations serialize after
//! the capture on the working lock, and their records land in the
//! post-rotation log — so `txn > mark` records are exactly the ones the
//! snapshot does not contain.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use phoenix_obs::Histogram;

use crate::metrics::{partition_batch_histogram, storage_metrics};
use crate::record::LogRecord;
use crate::repl::{FrameState, ReplTap, ShipFrame, TapFrame, WarmImage, TAP_CAP};
use crate::store::{normalize_name, partition_of, Store, StoreError, StoreSnapshot, TableData};
use crate::types::{Row, RowId, TableDef, TxnId};
use crate::wal::{Wal, WalPoints, MAX_FRAME};
use crate::{codec::DecodeError, snapshot};

/// Upper bound on the partition count. Recovery always scans the streams of
/// all `MAX_PARTITIONS` possible partitions so a database can be re-opened
/// with a *different* partition count than it was written with: leftover
/// higher-numbered streams are replayed (merged by GSN like any other) and
/// deleted by the next checkpoint.
pub const MAX_PARTITIONS: usize = 8;

/// Chaos fault-point names per partition. Partition 0 keeps the legacy
/// unsuffixed names so existing crash schedules keep working; partitions
/// `k ≥ 1` get `.p<k>`-suffixed points that chaos-explore enumerates for
/// partial cross-partition commit windows.
static WAL_POINTS: [WalPoints; MAX_PARTITIONS] = [
    WalPoints {
        append: "wal.append",
        fsync: "wal.fsync",
        truncate: "wal.truncate",
        rotate: "wal.rotate",
    },
    WalPoints {
        append: "wal.append.p1",
        fsync: "wal.fsync.p1",
        truncate: "wal.truncate.p1",
        rotate: "wal.rotate.p1",
    },
    WalPoints {
        append: "wal.append.p2",
        fsync: "wal.fsync.p2",
        truncate: "wal.truncate.p2",
        rotate: "wal.rotate.p2",
    },
    WalPoints {
        append: "wal.append.p3",
        fsync: "wal.fsync.p3",
        truncate: "wal.truncate.p3",
        rotate: "wal.rotate.p3",
    },
    WalPoints {
        append: "wal.append.p4",
        fsync: "wal.fsync.p4",
        truncate: "wal.truncate.p4",
        rotate: "wal.rotate.p4",
    },
    WalPoints {
        append: "wal.append.p5",
        fsync: "wal.fsync.p5",
        truncate: "wal.truncate.p5",
        rotate: "wal.rotate.p5",
    },
    WalPoints {
        append: "wal.append.p6",
        fsync: "wal.fsync.p6",
        truncate: "wal.truncate.p6",
        rotate: "wal.rotate.p6",
    },
    WalPoints {
        append: "wal.append.p7",
        fsync: "wal.fsync.p7",
        truncate: "wal.truncate.p7",
        rotate: "wal.rotate.p7",
    },
];

/// When to force the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// fsync on every commit (full crash safety; the default).
    Fsync,
    /// Leave flushing to the OS. Used by benchmarks that want to isolate
    /// protocol/execution costs from disk costs; noted in EXPERIMENTS.md
    /// whenever it is in effect.
    Buffered,
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure (WAL append, snapshot write, …).
    Io(io::Error),
    /// In-memory store rejected the operation.
    Store(StoreError),
    /// Log or snapshot bytes did not decode (corruption).
    Decode(DecodeError),
    /// Operation named a transaction that is not active.
    NoSuchTxn(TxnId),
    /// Operation requires quiescence but a transaction is active.
    TxnActive(TxnId),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Store(e) => write!(f, "{e}"),
            DbError::Decode(e) => write!(f, "{e}"),
            DbError::NoSuchTxn(t) => write!(f, "no such transaction {t}"),
            DbError::TxnActive(t) => write!(f, "transaction {t} still active"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}
impl From<StoreError> for DbError {
    fn from(e: StoreError) -> Self {
        DbError::Store(e)
    }
}
impl From<DecodeError> for DbError {
    fn from(e: DecodeError) -> Self {
        DbError::Decode(e)
    }
}

/// Inverse operations recorded per transaction for in-memory rollback.
enum UndoOp {
    RemoveRow {
        table: String,
        row_id: RowId,
    },
    ReinsertRow {
        table: String,
        row_id: RowId,
        row: Row,
    },
    RestoreRow {
        table: String,
        row_id: RowId,
        row: Row,
    },
    DropCreatedTable {
        name: String,
    },
    RestoreDroppedTable {
        data: TableData,
    },
    DropCreatedProc {
        name: String,
    },
    RestoreDroppedProc {
        name: String,
        sql: String,
    },
    DropCreatedIndex {
        table: String,
        name: String,
    },
    RestoreDroppedIndex {
        table: String,
        name: String,
        column: usize,
    },
}

/// Group-commit rendezvous. Committers take a monotonically increasing
/// sequence number when they append their commit record; the first committer
/// to find no leader flushes on everyone's behalf.
struct GroupState {
    /// Sequence number of the most recently appended commit record.
    appended: u64,
    /// All commit records with sequence ≤ `flushed` are on stable storage.
    flushed: u64,
    /// A leader is currently inside `sync_data`.
    leader: bool,
}

struct GroupCommit {
    state: Mutex<GroupState>,
    /// Signalled whenever `flushed` advances or the leader seat frees up.
    flushed_cv: Condvar,
}

/// Recovery + layout tuning for [`Durable::open_opts`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    /// Worker threads for the partitioned replay pass. `None` picks the
    /// available parallelism; `Some(1)` forces sequential replay (the
    /// baseline the recovery bench compares against).
    pub replay_threads: Option<usize>,
    /// Write-path partitions (clamped to `1..=MAX_PARTITIONS`). `None`
    /// means 1 — the single-stream layout. The count is a property of the
    /// *handle*, not the directory: recovery always merges the streams of
    /// every possible partition, so a database may be re-opened with any
    /// partition count.
    pub partitions: Option<usize>,
    /// Bounded fsync delay for the per-partition group committers, in
    /// microseconds. `0` (the default) syncs immediately; a small window
    /// lets more committers pile onto one `sync_data` at the cost of that
    /// much commit latency.
    pub group_commit_window_us: u64,
}

/// What recovery did, exposed for benches and observability.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Valid WAL frames read (rotated log + live log).
    pub wal_frames: usize,
    /// Records applied to the store (committed, past the snapshot mark).
    pub records_applied: u64,
    /// Records skipped: uncommitted, or `txn ≤` the snapshot mark.
    pub records_skipped: u64,
    /// Distinct tables touched by the replay.
    pub tables_replayed: usize,
    /// Worker threads the partitioned pass was allowed to use.
    pub replay_threads: usize,
    /// Wall time of decode + commit scan + apply, in microseconds.
    pub replay_us: u64,
}

/// Timing/shape of the most recent checkpoint (bench + test probe).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStats {
    /// How long the writer lock was held (capture + log rotation) — the
    /// only phase that blocks mutations — in microseconds.
    pub pause_us: u64,
    /// Full checkpoint duration in microseconds.
    pub total_us: u64,
    /// Table segments serialized by this checkpoint.
    pub segments_written: usize,
    /// Table segments reused (data unchanged since the last checkpoint).
    pub segments_reused: usize,
}

/// Serializes checkpoints and carries the previous checkpoint's identity
/// map so the next one can diff against it.
struct CheckpointState {
    /// Generation of the last durable manifest (0 = none yet).
    gen: u64,
    /// Normalized table key → (segment file, table image as serialized).
    /// `Arc::ptr_eq` against the live store detects unchanged tables.
    base: HashMap<String, (String, Arc<TableData>)>,
    /// Stats of the most recent completed checkpoint.
    stats: CheckpointStats,
}

/// Per-transaction bookkeeping: the undo list plus the set of partitions
/// the transaction has written to (its commit-record participant set).
#[derive(Default)]
struct TxnState {
    undo: Vec<UndoOp>,
    touched: BTreeSet<usize>,
}

/// One write-path shard: a store partition, its WAL stream, and its group
/// committer.
struct Partition {
    /// The writers' image of this shard. Mutations lock it, append+apply,
    /// then publish.
    working: Mutex<Store>,
    /// The readers' epoch of this shard: re-captured by the latest mutation
    /// *of this partition only*. [`Durable::snapshot`] stitches the N
    /// epochs into one [`StoreSnapshot`]. The lock is held only for the
    /// pointer swap / `Arc` clone, never across query execution.
    published: RwLock<Arc<Store>>,
    wal: Mutex<Wal>,
    group: GroupCommit,
    /// Largest txn id that has finished (committed or aborted) *in this
    /// partition*. Updated under the partition's WAL lock at commit-append
    /// time; the checkpoint takes the max across partitions as its snapshot
    /// mark. Recovery seeds every partition with the recovered high-water
    /// mark.
    last_finished: AtomicU64,
    /// Largest GSN appended to this partition's stream. Written under the
    /// partition's WAL lock (so it is append-order monotone); the
    /// group-commit leader reads it under the same lock right before
    /// syncing, making it the replication tap's durable watermark source.
    last_gsn: AtomicU64,
    /// `phoenix_group_commit_batch{partition="p<k>"}`.
    batch_hist: Arc<Histogram>,
}

/// A durable, transactional store, shareable across threads (`&self` API).
pub struct Durable {
    /// The write-path shards. Tables route by [`partition_of`] their name.
    parts: Vec<Partition>,
    dir: PathBuf,
    durability: Durability,
    next_txn: AtomicU64,
    /// Global sequence number for the next WAL frame, shared by all
    /// streams. Allocated under the owning partition's WAL lock, so each
    /// stream is GSN-monotone and recovery's merge-by-GSN reconstructs one
    /// total append order.
    next_gsn: AtomicU64,
    active: Mutex<HashMap<TxnId, TxnState>>,
    /// Records appended since the last checkpoint, across all streams
    /// (drives auto-checkpoint policy in the engine; the layer itself never
    /// checkpoints implicitly).
    records_since_checkpoint: AtomicU64,
    /// Checkpoint serialization + the previous checkpoint's segment images.
    checkpoint_state: Mutex<CheckpointState>,
    /// What recovery did when this handle was opened.
    recovery: RecoveryReport,
    /// Bounded fsync delay the group-commit leaders apply before flushing.
    group_commit_window: Duration,
    /// The replication tap (dormant until a shipper attaches).
    tap: ReplTap,
    /// Sticky fencing flag: once set, every WAL append is refused. A deposed
    /// primary is fenced when a newer incarnation is known to exist; the
    /// engine layer persists the decision across restarts.
    fenced: AtomicBool,
    /// Oldest GSN still reconstructible from this directory's logs: raised
    /// to the GSN high-water inside every checkpoint's rotation critical
    /// section (the checkpoint folds older frames into the snapshot and
    /// deletes them). A standby behind the floor must be re-seeded.
    ship_floor: AtomicU64,
    /// Semi-sync commit: how long a committer waits for the standby ack
    /// watermark to cover its commit record before degrading to async.
    /// `None` (the default) is fully asynchronous replication.
    commit_wait: Mutex<Option<Duration>>,
}

impl Durable {
    /// Partition `k`'s live log. Partition 0 keeps the legacy unsuffixed
    /// name so single-partition directories are unchanged on disk. Public
    /// because the replication standby appends shipped frames to the same
    /// per-partition layout, keeping its directory recoverable at every
    /// instant.
    pub fn wal_path(dir: &Path, k: usize) -> PathBuf {
        if k == 0 {
            dir.join("phoenix.wal")
        } else {
            dir.join(format!("phoenix.wal.p{k}"))
        }
    }

    /// The rotated-aside log of an in-progress (or crashed) checkpoint.
    /// Replayed *before* the live log; deleted when the checkpoint's
    /// manifest is durable.
    pub(crate) fn wal_old_path(dir: &Path, k: usize) -> PathBuf {
        if k == 0 {
            dir.join("phoenix.wal.old")
        } else {
            dir.join(format!("phoenix.wal.p{k}.old"))
        }
    }

    pub(crate) fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("phoenix.snapshot")
    }

    /// Open the database in `dir`, performing crash recovery with default
    /// [`RecoveryOptions`].
    pub fn open(dir: impl AsRef<Path>, durability: Durability) -> Result<Durable, DbError> {
        Self::open_opts(dir, durability, &RecoveryOptions::default())
    }

    /// Open the database in `dir`, performing crash recovery.
    ///
    /// Recovery loads the snapshot manifest and its table segments, reads
    /// the rotated log (if a checkpoint was interrupted) followed by the
    /// live log, scans once for the committed-transaction set, and then
    /// replays committed records **newer than the snapshot mark** — grouped
    /// by table and applied in parallel where the log's structure allows.
    pub fn open_opts(
        dir: impl AsRef<Path>,
        durability: Durability,
        opts: &RecoveryOptions,
    ) -> Result<Durable, DbError> {
        Self::open_inner(dir, durability, opts, None)
    }

    /// Open a directory whose prefix is already materialized in a warm
    /// standby image (see [`crate::repl`]): skip the snapshot load, seed the
    /// store from the image, and replay only the records at or past the
    /// image's GSN watermark. This is promotion's fast path — the replay
    /// tail is bounded by the standby's lag, not the log size — and the
    /// result is bit-identical to a cold `open_opts` of the same directory.
    pub fn open_warm(
        dir: impl AsRef<Path>,
        durability: Durability,
        opts: &RecoveryOptions,
        warm: WarmImage,
    ) -> Result<Durable, DbError> {
        Self::open_inner(dir, durability, opts, Some(warm))
    }

    fn open_inner(
        dir: impl AsRef<Path>,
        durability: Durability,
        opts: &RecoveryOptions,
        warm: Option<WarmImage>,
    ) -> Result<Durable, DbError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let (mut store, mark, gen, seg_files, warm_cut) = match warm {
            Some(w) => {
                // The warm store's table `Arc`s have diverged from the
                // on-disk segments (the applier mutated them), so the next
                // checkpoint rewrites everything: no base identity map. The
                // manifest is still read for its generation — segment file
                // names must not collide with the seed snapshot's.
                let gen = snapshot::load_manifest(&Self::snapshot_path(&dir))?
                    .map(|m| m.gen)
                    .unwrap_or(0);
                (w.store, w.mark, gen, HashMap::new(), w.applied_below_gsn)
            }
            None => match snapshot::load(&dir, &Self::snapshot_path(&dir))? {
                Some(s) => (s.store, s.mark, s.gen, s.segments, 0),
                None => (Store::new(), 0, 0, HashMap::new(), 0),
            },
        };

        // The previous checkpoint's identity map, captured *before* replay:
        // tables the replay leaves untouched keep their `Arc` (the base map
        // holds a second reference, so replay's `Arc::make_mut` clones
        // exactly the touched ones) and the next checkpoint reuses their
        // segments.
        let base: HashMap<String, (String, Arc<TableData>)> = seg_files
            .into_iter()
            .filter_map(|(key, file)| store.table_arc(&key).map(|arc| (key, (file, arc))))
            .collect();

        let n = opts.partitions.unwrap_or(1).clamp(1, MAX_PARTITIONS);
        let replay_start = Instant::now();

        // Read every possible stream — not just the `n` this handle will
        // write — so a directory written with a different partition count
        // recovers completely. Per stream: rotated log first (frames older
        // than everything in that stream's live log), then the live log.
        // Both reads tolerate a torn tail.
        let mut streams: Vec<(u32, Vec<Vec<u8>>)> = Vec::new();
        let mut total_frames = 0usize;
        for k in 0..MAX_PARTITIONS {
            let mut frames = Wal::read_all(Self::wal_old_path(&dir, k))?;
            frames.extend(Wal::read_all(Self::wal_path(&dir, k))?);
            total_frames += frames.len();
            if !frames.is_empty() {
                streams.push((k as u32, frames));
            }
        }

        let threads = opts
            .replay_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);

        // Pass 1: decode each stream (in parallel — it is pure CPU and
        // usually the bulk of replay time), merge into one total order by
        // GSN, and find committed transactions. A cross-partition commit
        // counts iff its `CommitMulti` record is present in *every*
        // participant stream — a crash between the per-stream appends left
        // a partial set, and the transaction must roll back.
        let records = decode_streams(&streams, threads)?;
        let mut committed: HashSet<TxnId> = HashSet::new();
        let mut multi: HashMap<TxnId, (Vec<u32>, HashSet<u32>)> = HashMap::new();
        let mut last_txn = mark;
        let mut max_gsn = 0u64;
        for (gsn, stream, rec) in &records {
            max_gsn = max_gsn.max(*gsn);
            last_txn = last_txn.max(rec.txn());
            match rec {
                LogRecord::Commit { txn } => {
                    committed.insert(*txn);
                }
                LogRecord::CommitMulti { txn, participants } => {
                    let entry = multi
                        .entry(*txn)
                        .or_insert_with(|| (participants.clone(), HashSet::new()));
                    entry.1.insert(*stream);
                }
                _ => {}
            }
        }
        for (txn, (participants, logged)) in &multi {
            if participants.iter().all(|p| logged.contains(p)) {
                committed.insert(*txn);
            }
        }
        let total_records = records.len() as u64;
        let min_gsn = records.first().map(|r| r.0);

        // Pass 2: partitioned replay of committed records past the mark,
        // in merged GSN order (bit-identical to a single-stream replay of
        // the same workload — the GSN *is* the single-stream append order).
        // A warm open additionally drops records below the image's GSN
        // watermark: the standby applier already materialized them (the
        // commit scan above still covered the full log, so the tail's
        // transaction fates are decided with complete knowledge).
        let merged: Vec<LogRecord> = records
            .into_iter()
            .filter(|(gsn, _, _)| *gsn >= warm_cut)
            .map(|(_, _, rec)| rec)
            .collect();
        let (applied, tables_replayed) =
            replay_records(&mut store, merged, &committed, mark, threads)?;

        let report = RecoveryReport {
            wal_frames: total_frames,
            records_applied: applied,
            records_skipped: total_records - applied,
            tables_replayed,
            replay_threads: threads,
            replay_us: replay_start.elapsed().as_micros() as u64,
        };
        storage_metrics()
            .recovery_replay_us
            .record(report.replay_us);

        let parts = store
            .into_parts(n)
            .into_iter()
            .enumerate()
            .map(|(k, shard)| -> Result<Partition, DbError> {
                Ok(Partition {
                    published: RwLock::new(Arc::new(shard.clone())),
                    working: Mutex::new(shard),
                    wal: Mutex::new(Wal::open_with_points(
                        Self::wal_path(&dir, k),
                        WAL_POINTS[k],
                    )?),
                    group: GroupCommit {
                        state: Mutex::new(GroupState {
                            appended: 0,
                            flushed: 0,
                            leader: false,
                        }),
                        flushed_cv: Condvar::new(),
                    },
                    last_finished: AtomicU64::new(last_txn),
                    last_gsn: AtomicU64::new(max_gsn),
                    batch_hist: partition_batch_histogram(k),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Durable {
            parts,
            dir,
            durability,
            next_txn: AtomicU64::new(last_txn + 1),
            next_gsn: AtomicU64::new(max_gsn + 1),
            active: Mutex::new(HashMap::new()),
            records_since_checkpoint: AtomicU64::new(total_records),
            checkpoint_state: Mutex::new(CheckpointState {
                gen,
                base,
                stats: CheckpointStats::default(),
            }),
            recovery: report,
            group_commit_window: Duration::from_micros(opts.group_commit_window_us),
            tap: ReplTap::new(),
            fenced: AtomicBool::new(false),
            // With a snapshot on disk, frames it folded in are gone: the
            // oldest shippable GSN is the oldest one still in the logs (or
            // just past the high-water if the logs are empty). Without one,
            // the entire history is reconstructible from GSN 1.
            ship_floor: AtomicU64::new(if gen > 0 {
                min_gsn.unwrap_or(max_gsn + 1)
            } else {
                1
            }),
            commit_wait: Mutex::new(None),
        })
    }

    /// The number of write-path partitions this handle was opened with.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The partition `name`'s table (or procedure) routes to.
    fn part_of(&self, name: &str) -> usize {
        partition_of(name, self.parts.len())
    }

    /// Home partition for transaction-scoped records of a transaction that
    /// touched nothing (or whose commit needs a deterministic single
    /// stream): spreads empty-txn traffic instead of serializing it all on
    /// partition 0.
    fn home_of(&self, txn: TxnId) -> usize {
        (txn % self.parts.len() as u64) as usize
    }

    /// What recovery did when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Timing/shape of the most recent checkpoint taken by this handle.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.checkpoint_state.lock().stats.clone()
    }

    /// The current published image: the N per-partition epochs stitched
    /// into one [`StoreSnapshot`]. O(partitions) `Arc` clones, each under a
    /// lock held only for the clone itself. The caller then reads with no
    /// lock at all — long scans never block writers, and writers never
    /// block new readers. The snapshot keeps showing each partition's state
    /// as of its last publication; take a fresh one per statement (or per
    /// cursor fetch) for current data.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        Arc::new(StoreSnapshot::from_parts(
            self.parts
                .iter()
                .map(|p| p.published.read().clone())
                .collect(),
        ))
    }

    /// Publish partition `k`'s working image for readers. Called with that
    /// partition's working lock held so publication order matches mutation
    /// order. Only the mutated shard is re-captured; with N partitions each
    /// publish therefore *saves* N−1 of the whole-store captures the
    /// un-partitioned design paid, which
    /// `phoenix_snapshot_publishes_coalesced` counts.
    fn publish(&self, k: usize, working: &Store) {
        match phoenix_chaos::fault("store.publish") {
            phoenix_chaos::FaultAction::Continue => {}
            phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
            // Process death between mutation and publish: readers keep the
            // previous snapshot, exactly as a crashed server would leave it.
            _ => return,
        }
        *self.parts[k].published.write() = Arc::new(working.clone());
        let m = storage_metrics();
        m.snapshot_publishes.inc();
        if self.parts.len() > 1 {
            m.snapshot_publishes_coalesced
                .add(self.parts.len() as u64 - 1);
        }
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured commit durability.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Number of log records appended since the last checkpoint.
    pub fn log_records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint.load(Ordering::Relaxed)
    }

    /// Number of `sync_data` calls issued across all WAL streams
    /// (group-commit probe).
    pub fn wal_sync_count(&self) -> u64 {
        self.parts.iter().map(|p| p.wal.lock().sync_count()).sum()
    }

    /// Append one record to partition `k`'s stream, whose WAL lock the
    /// caller already holds, prefixing it with a freshly allocated GSN.
    /// Allocating *under* the stream's lock keeps each stream GSN-monotone,
    /// which is what lets recovery merge the streams by GSN into one total
    /// order. Returns the frame's GSN.
    ///
    /// Refused outright on a fenced handle: a deposed primary must never
    /// extend its log, however the write reached this layer.
    fn append_locked(&self, k: usize, wal: &mut Wal, encoded: &[u8]) -> Result<u64, DbError> {
        if self.fenced.load(Ordering::Relaxed) {
            return Err(DbError::Io(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "wal.append refused: this incarnation was fenced by a newer primary",
            )));
        }
        // With a shipper attached, GSN allocation and frame staging are one
        // atomic step under the tap lock, so the staged queue is strictly
        // GSN-ordered across all partition streams. Unattached, allocation
        // stays a bare fetch_add.
        let gsn = if self.tap.enabled.load(Ordering::Acquire) {
            let mut t = self.tap.state.lock();
            let gsn = self.next_gsn.fetch_add(1, Ordering::Relaxed);
            if !t.lost {
                if t.frames.len() >= TAP_CAP {
                    // The shipper fell too far behind the write rate: drop
                    // the queue (bounding memory, not throughput); the
                    // shipper must re-attach with a disk catch-up.
                    t.frames.clear();
                    t.lost = true;
                } else {
                    t.frames.push_back(TapFrame {
                        gsn,
                        partition: k as u8,
                        record: encoded.to_vec(),
                        state: FrameState::Staged,
                    });
                }
            }
            gsn
        } else {
            self.next_gsn.fetch_add(1, Ordering::Relaxed)
        };
        let mut payload = Vec::with_capacity(8 + encoded.len());
        payload.extend_from_slice(&gsn.to_le_bytes());
        payload.extend_from_slice(encoded);
        let appended = wal.append(&payload);
        if self.tap.enabled.load(Ordering::Acquire) {
            self.tap_mark(gsn, appended.is_ok());
        }
        appended?;
        self.parts[k].last_gsn.store(gsn, Ordering::Release);
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        Ok(gsn)
    }

    /// Resolve a staged frame's fate once its append outcome is known: a
    /// successful append makes it shippable (subject to the durable
    /// watermark), a failed one leaves a `Dead` tombstone preserving the
    /// queue's GSN contiguity.
    fn tap_mark(&self, gsn: u64, ok: bool) {
        let mut t = self.tap.state.lock();
        // The frame is near the back (staged moments ago under this lock).
        if let Some(f) = t.frames.iter_mut().rev().find(|f| f.gsn == gsn) {
            f.state = if ok {
                FrameState::Appended
            } else {
                FrameState::Dead
            };
        }
        drop(t);
        self.tap.cv.notify_all();
    }

    /// Append one record to partition `k`'s stream. Callers that need
    /// write-ahead atomicity with a store mutation must already hold that
    /// partition's working-store lock.
    fn log_to(&self, k: usize, rec: &LogRecord) -> Result<(), DbError> {
        self.append_locked(k, &mut self.parts[k].wal.lock(), &rec.encode())
            .map(|_gsn| ())
    }

    /// Begin a new transaction. Nothing is logged — a transaction exists in
    /// the log only through the records of its mutations (and its final
    /// commit/abort marker), so an empty transaction costs no I/O until
    /// commit.
    pub fn begin(&self) -> Result<TxnId, DbError> {
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        self.active.lock().insert(txn, TxnState::default());
        Ok(txn)
    }

    /// Commit: log the commit record and force the log (under `Fsync`).
    ///
    /// Concurrent committers coalesce: each appends its record and takes a
    /// group sequence number; one of them (the leader) syncs the file once
    /// for every record appended so far, the rest wait until the flushed
    /// watermark covers their own sequence number.
    pub fn commit(&self, txn: TxnId) -> Result<(), DbError> {
        // The participant set decides the record shape: a transaction that
        // wrote to at most one partition commits with a plain `Commit`
        // (complete in itself wherever recovery finds it); one that wrote
        // to several commits with a `CommitMulti` carrying the full
        // participant set, appended to *every* touched stream — recovery
        // commits it iff all copies landed (two-phase within the process).
        let targets: Vec<usize> = {
            let active = self.active.lock();
            let state = active.get(&txn).ok_or(DbError::NoSuchTxn(txn))?;
            if state.touched.is_empty() {
                vec![self.home_of(txn)]
            } else {
                state.touched.iter().copied().collect()
            }
        };
        let rec = if targets.len() <= 1 {
            LogRecord::Commit { txn }
        } else {
            LogRecord::CommitMulti {
                txn,
                participants: targets.iter().map(|&k| k as u32).collect(),
            }
        };
        let encoded = rec.encode();

        // Per target partition: append the commit record, advance the
        // finished-txn high-water mark, and claim a group sequence number —
        // all under that partition's WAL lock (so sequence order matches
        // append order) and all *before* leaving the `active` set. A
        // checkpoint that observes this transaction as inactive is thereby
        // guaranteed to capture a mark covering it: its commit records can
        // never land after the snapshot's log rotation while its effects
        // sit inside the snapshot image (the double-apply window). The
        // quiescence check also means a checkpoint can never rotate between
        // two of a cross-partition commit's appends.
        let mut seqs = Vec::with_capacity(targets.len());
        let mut commit_gsn = 0u64;
        for &k in &targets {
            let p = &self.parts[k];
            let mut wal = p.wal.lock();
            let gsn = self.append_locked(k, &mut wal, &encoded)?;
            // The commit record's GSN dominates every record of the
            // transaction (they were all allocated earlier), so the standby
            // ack watermark covering it covers the whole transaction.
            commit_gsn = commit_gsn.max(gsn);
            p.last_finished.fetch_max(txn, Ordering::Relaxed);
            let mut st = p.group.state.lock();
            st.appended += 1;
            seqs.push((k, st.appended));
        }
        self.active.lock().remove(&txn);
        if self.durability == Durability::Fsync {
            for (k, seq) in seqs {
                self.group_sync(k, seq)?;
            }
        }
        self.semi_sync_wait(commit_gsn);
        Ok(())
    }

    /// Under semi-sync replication, hold the committer until the standby
    /// ack watermark covers `gsn` — the reply does not leave the server
    /// before the standby holds the transaction. Bounded: past the
    /// configured timeout the commit *degrades* to async (counted by
    /// `phoenix_repl_semisync_degraded_total`) rather than stalling the
    /// session behind a dead standby. No-op when async (the default) or
    /// when no shipper is attached.
    fn semi_sync_wait(&self, gsn: u64) {
        let Some(timeout) = *self.commit_wait.lock() else {
            return;
        };
        if !self.tap.enabled.load(Ordering::Acquire) {
            return;
        }
        let deadline = Instant::now() + timeout;
        let mut acked = self.tap.acked.lock();
        while *acked < gsn {
            // Re-check the exit conditions at a bounded cadence: the
            // shipper may detach, and a chaos-halted process must never
            // leave committers parked (the harness drains them on crash).
            if !self.tap.enabled.load(Ordering::Acquire) || phoenix_chaos::halted() {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                phoenix_obs::registry()
                    .counter(
                        "phoenix_repl_semisync_degraded_total",
                        "semi-sync commits that timed out waiting for a standby ack \
                         and degraded to async",
                    )
                    .inc();
                return;
            }
            let wait = (deadline - now).min(Duration::from_millis(10));
            self.tap.acked_cv.wait_for(&mut acked, wait);
        }
    }

    /// Wait until partition `k`'s commit record with group sequence `seq`
    /// is durable, taking that partition's leader role if nobody else is
    /// flushing.
    fn group_sync(&self, k: usize, seq: u64) -> Result<(), DbError> {
        let p = &self.parts[k];
        let mut st = p.group.state.lock();
        loop {
            if st.flushed >= seq {
                return Ok(());
            }
            if st.leader {
                // A flush is in flight; it may or may not cover us. Wait for
                // the watermark to move and re-check.
                p.group.flushed_cv.wait(&mut st);
                continue;
            }
            st.leader = true;
            drop(st);
            // Leader: optionally dwell for the configured window so more
            // committers can append behind us, then one sync covers every
            // record appended so far — including those of the committers
            // now parked on the condvar.
            if !self.group_commit_window.is_zero() {
                std::thread::sleep(self.group_commit_window);
            }
            let flush = {
                let mut wal = p.wal.lock();
                let upto = p.group.state.lock().appended;
                // Captured under the WAL lock: every frame of this
                // partition with gsn ≤ gsn_upto is covered by the sync
                // below — the replication tap's durable watermark.
                let gsn_upto = p.last_gsn.load(Ordering::Acquire);
                wal.sync().map(|()| (upto, gsn_upto))
            };
            st = p.group.state.lock();
            st.leader = false;
            match flush {
                Ok((upto, gsn_upto)) => {
                    if upto > st.flushed {
                        let m = storage_metrics();
                        m.group_commit_records.add(upto - st.flushed);
                        m.group_commit_syncs.inc();
                        m.group_commit_batch.record(upto - st.flushed);
                        p.batch_hist.record(upto - st.flushed);
                    }
                    st.flushed = st.flushed.max(upto);
                    p.group.flushed_cv.notify_all();
                    if self.tap.enabled.load(Ordering::Acquire) {
                        self.tap.durable[k].fetch_max(gsn_upto, Ordering::AcqRel);
                        self.tap.cv.notify_all();
                    }
                    // `upto` ≥ our `seq` (we appended before flushing), so
                    // the next loop iteration returns Ok.
                }
                Err(e) => {
                    // Wake waiters so one of them can retry as leader.
                    p.group.flushed_cv.notify_all();
                    return Err(DbError::Io(e));
                }
            }
        }
    }

    /// Abort: undo in memory (reverse order) and log the abort record to
    /// every touched stream.
    ///
    /// The touched partitions' working locks are taken *before* the
    /// transaction leaves the `active` set: a checkpoint serializes its
    /// capture on the same locks (and refuses while the transaction is
    /// still in `active`), so it can never see the transaction as finished
    /// while its effects are still un-rolled-back in the store.
    pub fn abort(&self, txn: TxnId) -> Result<(), DbError> {
        // Snapshot the undo list and participant set, leaving the entry in
        // `active` so the checkpoint quiescence check keeps failing until
        // the rollback is complete.
        let (undo, touched) = {
            let mut active = self.active.lock();
            let state = active.get_mut(&txn).ok_or(DbError::NoSuchTxn(txn))?;
            (std::mem::take(&mut state.undo), state.touched.clone())
        };
        // Lock every touched shard in ascending order (the global lock
        // order), then roll back: each op routes to its table's shard.
        let mut guards: BTreeMap<usize, MutexGuard<'_, Store>> = touched
            .iter()
            .map(|&k| (k, self.parts[k].working.lock()))
            .collect();
        let result = (|| -> Result<(), DbError> {
            for op in undo.into_iter().rev() {
                match op {
                    UndoOp::RemoveRow { table, row_id } => {
                        let store = guards.get_mut(&self.part_of(&table)).expect("touched");
                        store.table_mut(&table)?.delete(row_id)?;
                    }
                    UndoOp::ReinsertRow { table, row_id, row } => {
                        let store = guards.get_mut(&self.part_of(&table)).expect("touched");
                        store.table_mut(&table)?.insert_with_id(row_id, row)?;
                    }
                    UndoOp::RestoreRow { table, row_id, row } => {
                        let store = guards.get_mut(&self.part_of(&table)).expect("touched");
                        store.table_mut(&table)?.update(row_id, row)?;
                    }
                    UndoOp::DropCreatedTable { name } => {
                        let store = guards.get_mut(&self.part_of(&name)).expect("touched");
                        store.drop_table(&name)?;
                    }
                    UndoOp::RestoreDroppedTable { data } => {
                        let store = guards
                            .get_mut(&self.part_of(&data.def.name))
                            .expect("touched");
                        store.install_table(data);
                    }
                    UndoOp::DropCreatedProc { name } => {
                        let store = guards.get_mut(&self.part_of(&name)).expect("touched");
                        store.drop_proc(&name)?;
                    }
                    UndoOp::RestoreDroppedProc { name, sql } => {
                        let store = guards.get_mut(&self.part_of(&name)).expect("touched");
                        store.create_proc(&name, &sql)?;
                    }
                    UndoOp::DropCreatedIndex { table, name } => {
                        let store = guards.get_mut(&self.part_of(&table)).expect("touched");
                        store.table_mut(&table)?.drop_index(&name)?;
                    }
                    UndoOp::RestoreDroppedIndex {
                        table,
                        name,
                        column,
                    } => {
                        let store = guards.get_mut(&self.part_of(&table)).expect("touched");
                        store.table_mut(&table)?.create_index(&name, column)?;
                    }
                }
            }
            // Aborted ids count as finished too: the mark also seeds
            // `next_txn` after a post-checkpoint recovery, and ids must stay
            // monotone even when the highest allocated one never committed.
            let targets: Vec<usize> = if touched.is_empty() {
                vec![self.home_of(txn)]
            } else {
                touched.iter().copied().collect()
            };
            for k in targets {
                self.log_to(k, &LogRecord::Abort { txn })?;
                self.parts[k]
                    .last_finished
                    .fetch_max(txn, Ordering::Relaxed);
            }
            Ok(())
        })();
        // Leave `active` only now, with the shard locks still held (or the
        // rollback incomplete and the error propagating — either way the
        // transaction is finished).
        self.active.lock().remove(&txn);
        if result.is_ok() {
            for (&k, store) in &guards {
                self.publish(k, store);
            }
        }
        result
    }

    /// Is `txn` currently active?
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.lock().contains_key(&txn)
    }

    /// Error unless `txn` is active.
    fn check_active(&self, txn: TxnId) -> Result<(), DbError> {
        if self.active.lock().contains_key(&txn) {
            Ok(())
        } else {
            Err(DbError::NoSuchTxn(txn))
        }
    }

    /// Record an undo entry for `txn` and mark partition `k` as touched —
    /// the commit record's participant set (the caller verified the txn is
    /// active; tolerate a concurrent removal by dropping the entry — the
    /// txn is gone and its undo list with it).
    fn push_undo(&self, txn: TxnId, k: usize, op: UndoOp) {
        if let Some(state) = self.active.lock().get_mut(&txn) {
            state.undo.push(op);
            state.touched.insert(k);
        }
    }

    // -- mutations (log first, then apply; the owning partition's
    //    working-store mutex makes the pair atomic with respect to other
    //    sessions, and every successful mutation publishes that partition's
    //    fresh epoch before releasing it) ----------------------------------

    /// Insert a row (logged, undoable), returning its stable id.
    pub fn insert(&self, txn: TxnId, table: &str, row: Row) -> Result<RowId, DbError> {
        self.check_active(txn)?;
        let k = self.part_of(table);
        let mut store = self.parts[k].working.lock();
        // Determine the id the insert *will* get so the log matches the apply.
        let row_id = store.table(table)?.next_row_id;
        self.log_to(
            k,
            &LogRecord::Insert {
                txn,
                table: table.to_string(),
                row_id,
                row: row.clone(),
            },
        )?;
        let assigned = store.table_mut(table)?.insert(row)?;
        debug_assert_eq!(assigned, row_id);
        self.publish(k, &store);
        self.push_undo(
            txn,
            k,
            UndoOp::RemoveRow {
                table: table.to_string(),
                row_id,
            },
        );
        Ok(row_id)
    }

    /// Insert a batch of rows with consecutive stable ids, taking **one**
    /// WAL append (and one lock round trip) for the whole batch instead of
    /// one per row — the `INSERT … SELECT` materialization hot path.
    ///
    /// A batch whose encoding would exceed the WAL frame cap is split into
    /// the minimum number of conforming chunk records; a single row too big
    /// for a frame is refused with the same `InvalidInput` error as
    /// [`Durable::insert`].
    pub fn insert_many(
        &self,
        txn: TxnId,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Vec<RowId>, DbError> {
        self.check_active(txn)?;
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let k = self.part_of(table);
        let mut store = self.parts[k].working.lock();
        let mut assigned = Vec::with_capacity(rows.len());
        let mut pending = std::collections::VecDeque::new();
        pending.push_back(rows);
        let result = (|| {
            while let Some(chunk) = pending.pop_front() {
                let first_row_id = store.table(table)?.next_row_id;
                let rec = LogRecord::InsertMany {
                    txn,
                    table: table.to_string(),
                    first_row_id,
                    rows: chunk,
                };
                let encoded = rec.encode();
                let LogRecord::InsertMany {
                    rows: mut chunk, ..
                } = rec
                else {
                    unreachable!()
                };
                // The 8-byte GSN prefix rides in the same frame, so the
                // split threshold accounts for it.
                if encoded.len() > MAX_FRAME as usize - 8 && chunk.len() > 1 {
                    // Halve until each piece fits; ids stay consecutive
                    // because the front piece is re-popped and logged first.
                    let tail = chunk.split_off(chunk.len() / 2);
                    pending.push_front(tail);
                    pending.push_front(chunk);
                    continue;
                }
                // A lone row too big for a frame reaches the append, which
                // refuses it with `InvalidInput` before anything is applied.
                self.append_locked(k, &mut self.parts[k].wal.lock(), &encoded)?;
                let t = store.table_mut(table)?;
                for row in chunk.drain(..) {
                    assigned.push(t.insert(row)?);
                }
            }
            Ok(())
        })();
        // Rows applied before an error are undoable (and the statement's
        // transaction aborts on error), so record undo for what landed even
        // on the failure path — matching the per-row insert loop this
        // replaces.
        if !assigned.is_empty() {
            self.publish(k, &store);
            if let Some(state) = self.active.lock().get_mut(&txn) {
                state.touched.insert(k);
                state
                    .undo
                    .extend(assigned.iter().map(|&row_id| UndoOp::RemoveRow {
                        table: table.to_string(),
                        row_id,
                    }));
            }
        }
        result.map(|()| assigned)
    }

    /// Delete a row by id (logged, undoable), returning its image.
    pub fn delete(&self, txn: TxnId, table: &str, row_id: RowId) -> Result<Row, DbError> {
        self.check_active(txn)?;
        let k = self.part_of(table);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::Delete {
                txn,
                table: table.to_string(),
                row_id,
            },
        )?;
        let row = store.table_mut(table)?.delete(row_id)?;
        self.publish(k, &store);
        self.push_undo(
            txn,
            k,
            UndoOp::ReinsertRow {
                table: table.to_string(),
                row_id,
                row: row.clone(),
            },
        );
        Ok(row)
    }

    /// Replace a row in place (logged, undoable), returning the old image.
    pub fn update(&self, txn: TxnId, table: &str, row_id: RowId, row: Row) -> Result<Row, DbError> {
        self.check_active(txn)?;
        let k = self.part_of(table);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::Update {
                txn,
                table: table.to_string(),
                row_id,
                row: row.clone(),
            },
        )?;
        let old = store.table_mut(table)?.update(row_id, row)?;
        self.publish(k, &store);
        self.push_undo(
            txn,
            k,
            UndoOp::RestoreRow {
                table: table.to_string(),
                row_id,
                row: old.clone(),
            },
        );
        Ok(old)
    }

    /// Create a table (logged, undoable).
    pub fn create_table(&self, txn: TxnId, def: TableDef) -> Result<(), DbError> {
        self.check_active(txn)?;
        let k = self.part_of(&def.name);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::CreateTable {
                txn,
                def: def.clone(),
            },
        )?;
        let name = def.name.clone();
        store.create_table(def)?;
        self.publish(k, &store);
        self.push_undo(txn, k, UndoOp::DropCreatedTable { name });
        Ok(())
    }

    /// Drop a table (logged; abort restores it with its rows).
    pub fn drop_table(&self, txn: TxnId, name: &str) -> Result<(), DbError> {
        self.check_active(txn)?;
        let k = self.part_of(name);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::DropTable {
                txn,
                name: name.to_string(),
            },
        )?;
        let data = store.drop_table(name)?;
        self.publish(k, &store);
        self.push_undo(txn, k, UndoOp::RestoreDroppedTable { data });
        Ok(())
    }

    /// Register a stored procedure (logged, undoable).
    pub fn create_proc(&self, txn: TxnId, name: &str, sql: &str) -> Result<(), DbError> {
        self.check_active(txn)?;
        let k = self.part_of(name);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::CreateProc {
                txn,
                name: name.to_string(),
                sql: sql.to_string(),
            },
        )?;
        store.create_proc(name, sql)?;
        self.publish(k, &store);
        self.push_undo(
            txn,
            k,
            UndoOp::DropCreatedProc {
                name: name.to_string(),
            },
        );
        Ok(())
    }

    /// Drop a stored procedure (logged; abort restores it).
    pub fn drop_proc(&self, txn: TxnId, name: &str) -> Result<(), DbError> {
        self.check_active(txn)?;
        let k = self.part_of(name);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::DropProc {
                txn,
                name: name.to_string(),
            },
        )?;
        let sql = store.drop_proc(name)?;
        self.publish(k, &store);
        self.push_undo(
            txn,
            k,
            UndoOp::RestoreDroppedProc {
                name: name.to_string(),
                sql,
            },
        );
        Ok(())
    }

    /// Create a secondary index on `table` (logged, undoable). The index is
    /// backfilled from the table's current rows; no index pages are logged.
    pub fn create_index(
        &self,
        txn: TxnId,
        table: &str,
        name: &str,
        column: usize,
    ) -> Result<(), DbError> {
        self.check_active(txn)?;
        let k = self.part_of(table);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::CreateIndex {
                txn,
                table: table.to_string(),
                name: name.to_string(),
                column,
            },
        )?;
        store.table_mut(table)?.create_index(name, column)?;
        self.publish(k, &store);
        self.push_undo(
            txn,
            k,
            UndoOp::DropCreatedIndex {
                table: table.to_string(),
                name: name.to_string(),
            },
        );
        Ok(())
    }

    /// Drop a secondary index from `table` (logged; abort rebuilds it).
    pub fn drop_index(&self, txn: TxnId, table: &str, name: &str) -> Result<(), DbError> {
        self.check_active(txn)?;
        let k = self.part_of(table);
        let mut store = self.parts[k].working.lock();
        self.log_to(
            k,
            &LogRecord::DropIndex {
                txn,
                table: table.to_string(),
                name: name.to_string(),
            },
        )?;
        let dropped = store.table_mut(table)?.drop_index(name)?;
        self.publish(k, &store);
        self.push_undo(
            txn,
            k,
            UndoOp::RestoreDroppedIndex {
                table: table.to_string(),
                name: dropped.name,
                column: dropped.column,
            },
        );
        Ok(())
    }

    /// Take a checkpoint: capture the current *committed* image, rotate the
    /// log aside, serialize the tables whose data changed since the last
    /// checkpoint, commit the new manifest, and discard the rotated log.
    ///
    /// Requires no active transactions (the engine quiesces first); a
    /// snapshot with an in-flight transaction would otherwise capture its
    /// uncommitted effects without the log records needed to decide its
    /// fate. The writer lock is held only for the **pause phase** — an
    /// O(tables) pointer-clone of the store plus the log rotation — and is
    /// released before any serialization happens; concurrent writers append
    /// to the fresh log while the segments are written. Snapshot readers
    /// are unaffected throughout: they keep executing against the last
    /// published image.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let cp = self.checkpoint_state.lock();
        let guards: Vec<_> = self.parts.iter().map(|p| p.working.lock()).collect();
        self.run_checkpoint(cp, guards)
    }

    /// Non-blocking [`Self::checkpoint`]: returns `Ok(false)` without doing
    /// anything if a checkpoint is already running or another writer
    /// currently holds the working store.
    ///
    /// Background/best-effort callers use this rather than `checkpoint()`
    /// so an opportunistic checkpoint never queues behind a long write —
    /// readers are already immune (they run on published snapshots and
    /// never touch the writer lock).
    pub fn try_checkpoint(&self) -> Result<bool, DbError> {
        let Some(cp) = self.checkpoint_state.try_lock() else {
            return Ok(false);
        };
        let mut guards = Vec::with_capacity(self.parts.len());
        for p in &self.parts {
            match p.working.try_lock() {
                Some(g) => guards.push(g),
                None => return Ok(false),
            }
        }
        self.run_checkpoint(cp, guards).map(|()| true)
    }

    fn run_checkpoint(
        &self,
        mut cp: MutexGuard<'_, CheckpointState>,
        guards: Vec<MutexGuard<'_, Store>>,
    ) -> Result<(), DbError> {
        let start = Instant::now();
        if let Some(txn) = self.active.lock().keys().next().copied() {
            return Err(DbError::TxnActive(txn));
        }
        let m = storage_metrics();
        let _t = phoenix_obs::Timer::new(&m.checkpoint_us);

        // ---- pause phase (all writer locks held) ---------------------------
        // A shallow image of every shard, merged: per-table `Arc` clones
        // only. Any later mutation copies-on-write away from these
        // pointers, so the image is frozen.
        let mut image = Store::new();
        for g in &guards {
            image.merge_from(g);
        }
        // Mark + rotation inside one critical section over *all* WAL locks
        // (taken in ascending order): `last_finished` advances under a WAL
        // lock (commit) or a working lock (abort — and we hold them all),
        // so no transaction can finish between reading the mark and
        // rotating the logs; with `active` empty, the max across partitions
        // is a true global high-water mark, and `txn ≤ mark` is *exactly*
        // "records whose effects the image materializes". No commit can be
        // mid-flight across streams either (it would still be in `active`),
        // so the N rotations cut every stream at the same transaction
        // boundary.
        let mark = {
            let mut wals: Vec<_> = self.parts.iter().map(|p| p.wal.lock()).collect();
            let mark = self
                .parts
                .iter()
                .map(|p| p.last_finished.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            for (k, wal) in wals.iter_mut().enumerate() {
                wal.rotate_to(&Self::wal_old_path(&self.dir, k))?;
            }
            // Everything below the current GSN high-water is being folded
            // into the snapshot; once the manifest commits, those frames
            // are deleted. Raise the shipping floor now, conservatively —
            // a standby catch-up between rotation and deletion refuses
            // rather than racing the unlink.
            self.ship_floor
                .fetch_max(self.next_gsn.load(Ordering::Relaxed), Ordering::Relaxed);
            mark
        };
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        drop(guards);
        let pause_us = start.elapsed().as_micros() as u64;
        m.checkpoint_pause_us.record(pause_us);

        // ---- write phase (writers run concurrently) ------------------------
        phoenix_chaos::check_durable("checkpoint.write")?;
        let gen = cp.gen + 1;
        let mut tables = Vec::new();
        let mut base: HashMap<String, (String, Arc<TableData>)> = HashMap::new();
        let mut written = 0usize;
        let mut reused = 0usize;
        for (idx, name) in image.table_names().iter().enumerate() {
            let key = normalize_name(name);
            let arc = image.table_arc(&key).expect("table listed but missing");
            let file = match cp.base.get(&key) {
                // Same data pointer as the segment on disk: reuse it.
                Some((file, old)) if Arc::ptr_eq(old, &arc) => {
                    reused += 1;
                    file.clone()
                }
                _ => {
                    let file = snapshot::segment_file_name(gen, idx);
                    snapshot::write_segment(&self.dir.join(&file), &arc)?;
                    written += 1;
                    file
                }
            };
            tables.push((name.clone(), file.clone()));
            base.insert(key, (file, arc));
        }
        let procs = image
            .proc_names()
            .iter()
            .map(|n| (n.clone(), image.proc(n).expect("proc listed").to_string()))
            .collect();
        snapshot::write_manifest(
            &Self::snapshot_path(&self.dir),
            &snapshot::Manifest {
                mark,
                gen,
                tables,
                procs,
            },
        )?;

        // The manifest rename is the commit point: the rotated log and any
        // segments this generation superseded are now dead. A crash here
        // (the `checkpoint.truncate` fault point) must leave a recoverable
        // image — recovery replays the rotated log with the mark filter, so
        // nothing is applied twice.
        phoenix_chaos::check_durable("checkpoint.truncate")?;
        let remove_ok = |path: PathBuf| -> Result<(), DbError> {
            match std::fs::remove_file(path) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e.into()),
            }
        };
        for k in 0..MAX_PARTITIONS {
            remove_ok(Self::wal_old_path(&self.dir, k))?;
            // A stream left behind by a previous, wider layout is fully
            // materialized in this snapshot now — delete it so it is not
            // replayed (harmlessly, but wastefully) forever.
            if k >= self.parts.len() {
                remove_ok(Self::wal_path(&self.dir, k))?;
            }
        }
        let keep: HashSet<String> = base.values().map(|(f, _)| f.clone()).collect();
        snapshot::remove_orphan_segments(&self.dir, &keep)?;

        cp.gen = gen;
        cp.base = base;
        cp.stats = CheckpointStats {
            pause_us,
            total_us: start.elapsed().as_micros() as u64,
            segments_written: written,
            segments_reused: reused,
        };
        m.checkpoints.inc();
        Ok(())
    }

    // -- replication tap (see `crate::repl` for the frame/queue types) ----

    /// Permanently fence this handle: every subsequent WAL append is
    /// refused with `PermissionDenied`. Called when a newer incarnation (a
    /// promoted standby) is known to exist; the engine layer persists the
    /// decision so it sticks across restarts.
    pub fn fence(&self) {
        self.fenced.store(true, Ordering::SeqCst);
        // Wake any semi-sync committers; they re-check and bail on timeout
        // or detach, never completing a write on a fenced primary anyway.
        self.tap.acked_cv.notify_all();
    }

    /// Has [`Durable::fence`] been called on this handle?
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Highest GSN allocated so far (0 = none yet): the shipper's lag
    /// reference point.
    pub fn last_gsn(&self) -> u64 {
        self.next_gsn.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Oldest GSN still reconstructible from this directory (frames below
    /// it were folded into a snapshot). A standby whose log ends before
    /// `floor - 1` cannot catch up over the wire and must be re-seeded from
    /// a copy of the primary's data directory.
    pub fn ship_floor(&self) -> u64 {
        self.ship_floor.load(Ordering::Relaxed)
    }

    /// Configure the semi-sync commit wait: `Some(timeout)` holds each
    /// commit until the standby ack watermark covers it (degrading to async
    /// past the timeout), `None` (the default) replicates asynchronously.
    pub fn set_commit_wait(&self, wait: Option<Duration>) {
        *self.commit_wait.lock() = wait;
        self.tap.acked_cv.notify_all();
    }

    /// Attach a shipper whose standby has every frame up to and including
    /// `standby_last_gsn`: arm the live tap and return the disk backlog —
    /// every on-disk frame past that GSN, sorted by GSN.
    ///
    /// Holding **all** WAL locks (ascending, per the global lock order)
    /// blocks every append for the duration, so the returned backlog and
    /// the armed queue partition the GSN space exactly: no frame is missed,
    /// none is delivered twice.
    pub fn repl_attach(&self, standby_last_gsn: u64) -> Result<Vec<ShipFrame>, DbError> {
        let _wals: Vec<_> = self.parts.iter().map(|p| p.wal.lock()).collect();
        let floor = self.ship_floor.load(Ordering::Relaxed);
        if standby_last_gsn + 1 < floor {
            return Err(DbError::Io(io::Error::other(format!(
                "standby is at gsn {standby_last_gsn} but the oldest shippable frame is \
                 {floor} (a checkpoint folded the gap into the snapshot); re-seed the \
                 standby from a copy of the primary's data directory"
            ))));
        }
        if standby_last_gsn > self.last_gsn() {
            return Err(DbError::Io(io::Error::other(format!(
                "standby is at gsn {standby_last_gsn}, ahead of this primary's high-water \
                 {} — it was seeded from a different log history; re-seed it",
                self.last_gsn()
            ))));
        }
        {
            let mut t = self.tap.state.lock();
            t.frames.clear();
            t.lost = false;
        }
        *self.tap.acked.lock() = standby_last_gsn;
        self.tap.enabled.store(true, Ordering::SeqCst);
        let mut backlog: Vec<ShipFrame> = Vec::new();
        for k in 0..MAX_PARTITIONS {
            for path in [
                Self::wal_old_path(&self.dir, k),
                Self::wal_path(&self.dir, k),
            ] {
                for frame in Wal::read_all(path)? {
                    if frame.len() < 8 {
                        continue;
                    }
                    let gsn = u64::from_le_bytes(frame[..8].try_into().expect("8-byte slice"));
                    if gsn > standby_last_gsn {
                        backlog.push((k as u8, gsn, frame[8..].to_vec()));
                    }
                }
            }
        }
        backlog.sort_unstable_by_key(|&(_, gsn, _)| gsn);
        Ok(backlog)
    }

    /// Drain up to `max` shippable frames in GSN order, blocking up to
    /// `wait` for the first one. A frame is shippable once its append
    /// succeeded **and** (under `Fsync`) the partition's durable watermark
    /// covers it — the shipper only ever sees post-fsync data. Returns an
    /// error if the tap overflowed its bounded queue: the caller
    /// must detach and re-attach with a disk catch-up.
    pub fn repl_poll(&self, max: usize, wait: Duration) -> Result<Vec<ShipFrame>, DbError> {
        let deadline = Instant::now() + wait;
        let mut t = self.tap.state.lock();
        loop {
            if t.lost {
                return Err(DbError::Io(io::Error::other(
                    "replication tap overflowed; re-attach with a disk catch-up",
                )));
            }
            let mut out = Vec::new();
            while out.len() < max {
                let ship = match t.frames.front() {
                    None => break,
                    Some(f) => match f.state {
                        FrameState::Staged => false,
                        FrameState::Dead => true, // tombstone: pop, never ship
                        FrameState::Appended => {
                            self.durability == Durability::Buffered
                                || f.gsn
                                    <= self.tap.durable[f.partition as usize]
                                        .load(Ordering::Acquire)
                        }
                    },
                };
                if !ship {
                    break;
                }
                let f = t.frames.pop_front().expect("front checked");
                if matches!(f.state, FrameState::Appended) {
                    out.push((f.partition, f.gsn, f.record));
                }
            }
            if !out.is_empty() {
                return Ok(out);
            }
            if Instant::now() >= deadline {
                return Ok(Vec::new());
            }
            // Bounded wait: notifications cover the common paths (append,
            // sync), the timeout covers the rest.
            self.tap.cv.wait_for(&mut t, Duration::from_millis(2));
        }
    }

    /// Record the standby's ack watermark: every frame with `gsn ≤` the
    /// watermark is received and persisted on the standby. Unblocks
    /// semi-sync committers.
    pub fn repl_ack(&self, gsn: u64) {
        let mut acked = self.tap.acked.lock();
        if gsn > *acked {
            *acked = gsn;
        }
        drop(acked);
        self.tap.acked_cv.notify_all();
    }

    /// The standby ack watermark (for lag accounting).
    pub fn repl_acked_gsn(&self) -> u64 {
        *self.tap.acked.lock()
    }

    /// Detach the shipper: disarm the tap, drop staged frames, and release
    /// any semi-sync committers (their standby is gone; holding commits
    /// hostage would not make it less gone).
    pub fn repl_detach(&self) {
        self.tap.enabled.store(false, Ordering::SeqCst);
        let mut t = self.tap.state.lock();
        t.frames.clear();
        t.lost = false;
        drop(t);
        self.tap.acked_cv.notify_all();
    }
}

/// One unit of the partitioned replay: a catalog record that must apply
/// alone (a barrier — it changes the table set every later record resolves
/// against), or a run of per-table DML groups that apply concurrently.
enum ReplayEpoch {
    Catalog(LogRecord),
    Dml(Vec<(String, Vec<LogRecord>)>),
}

type TableWork = (String, Arc<TableData>, Vec<LogRecord>);
type WorkerResult = Result<Vec<(String, Arc<TableData>)>, StoreError>;

/// Decode one GSN-prefixed WAL frame: `gsn:u64 LE | LogRecord`.
fn decode_gsn_frame(frame: &[u8]) -> Result<(u64, LogRecord), DecodeError> {
    if frame.len() < 8 {
        return Err(DecodeError(format!(
            "WAL frame of {} bytes is shorter than its GSN prefix",
            frame.len()
        )));
    }
    let gsn = u64::from_le_bytes(frame[..8].try_into().expect("8-byte slice"));
    Ok((gsn, LogRecord::decode(&frame[8..])?))
}

/// Decode the per-partition WAL streams into `(gsn, stream, record)`
/// triples **merged by GSN** — the single total order the replay machinery
/// consumes, bit-identical to what a single-stream run of the same workload
/// would have logged. Decoding fans contiguous chunks out over up to
/// `threads` scoped workers (pure CPU, usually the bulk of replay time);
/// small logs stay sequential, the spawn cost would exceed the decode cost.
pub(crate) fn decode_streams(
    streams: &[(u32, Vec<Vec<u8>>)],
    threads: usize,
) -> Result<Vec<(u64, u32, LogRecord)>, DbError> {
    let flat: Vec<(u32, &Vec<u8>)> = streams
        .iter()
        .flat_map(|(k, frames)| frames.iter().map(move |f| (*k, f)))
        .collect();
    let mut out: Vec<(u64, u32, LogRecord)> = if threads <= 1 || flat.len() < 1024 {
        flat.iter()
            .map(|(k, f)| decode_gsn_frame(f).map(|(gsn, rec)| (gsn, *k, rec)))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        let chunk = flat.len().div_ceil(threads);
        let decoded = std::thread::scope(|s| {
            let handles: Vec<_> = flat
                .chunks(chunk)
                .map(|c| {
                    s.spawn(move || {
                        c.iter()
                            .map(|(k, f)| decode_gsn_frame(f).map(|(gsn, rec)| (gsn, *k, rec)))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("decode worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut all = Vec::with_capacity(flat.len());
        for r in decoded {
            all.extend(r?);
        }
        all
    };
    // GSNs are globally unique and allocated in append order within each
    // stream, so the sort *is* the k-way merge.
    out.sort_unstable_by_key(|(gsn, _, _)| *gsn);
    Ok(out)
}

/// Replay `records` onto `store`: committed transactions only, past the
/// snapshot `mark`, grouped by table between catalog barriers and applied
/// across up to `threads` scoped workers. Returns `(records in the replay
/// set, distinct tables touched)`.
///
/// Determinism: every DML record carries explicit row ids and per-table
/// log order is preserved inside each group, so the partitioned apply is
/// bit-identical to the sequential one regardless of worker scheduling.
pub(crate) fn replay_records(
    store: &mut Store,
    records: Vec<LogRecord>,
    committed: &HashSet<TxnId>,
    mark: TxnId,
    threads: usize,
) -> Result<(u64, usize), DbError> {
    let mut epochs: Vec<ReplayEpoch> = Vec::new();
    let mut current: Vec<(String, Vec<LogRecord>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut touched: HashSet<String> = HashSet::new();
    let mut eligible = 0u64;
    for rec in records {
        if rec.txn() <= mark || !committed.contains(&rec.txn()) {
            continue;
        }
        eligible += 1;
        match &rec {
            // Transaction markers carry no state.
            LogRecord::Begin { .. }
            | LogRecord::Commit { .. }
            | LogRecord::CommitMulti { .. }
            | LogRecord::Abort { .. } => {}
            LogRecord::CreateTable { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::CreateProc { .. }
            | LogRecord::DropProc { .. }
            | LogRecord::CreateIndex { .. }
            | LogRecord::DropIndex { .. } => {
                if !current.is_empty() {
                    epochs.push(ReplayEpoch::Dml(std::mem::take(&mut current)));
                    index.clear();
                }
                epochs.push(ReplayEpoch::Catalog(rec));
            }
            LogRecord::Insert { table, .. }
            | LogRecord::InsertMany { table, .. }
            | LogRecord::Delete { table, .. }
            | LogRecord::Update { table, .. } => {
                let key = normalize_name(table);
                touched.insert(key.clone());
                match index.get(&key) {
                    Some(&i) => current[i].1.push(rec),
                    None => {
                        index.insert(key.clone(), current.len());
                        current.push((key, vec![rec]));
                    }
                }
            }
        }
    }
    if !current.is_empty() {
        epochs.push(ReplayEpoch::Dml(current));
    }

    for epoch in epochs {
        match epoch {
            ReplayEpoch::Catalog(rec) => store.apply(&rec)?,
            ReplayEpoch::Dml(groups) => apply_dml_groups(store, groups, threads)?,
        }
    }
    Ok((eligible, touched.len()))
}

/// Apply one epoch's per-table DML groups, in parallel when it pays.
fn apply_dml_groups(
    store: &mut Store,
    groups: Vec<(String, Vec<LogRecord>)>,
    threads: usize,
) -> Result<(), DbError> {
    if threads <= 1 || groups.len() <= 1 {
        for (_, recs) in groups {
            for rec in recs {
                store.apply(&rec)?;
            }
        }
        return Ok(());
    }
    // Hand each table's `Arc` to a worker. Ownership transfer keeps the
    // copy-on-write semantics: a table also referenced by the snapshot's
    // base image is cloned by `Arc::make_mut` exactly once, unreferenced
    // ones mutate in place.
    let mut work: Vec<TableWork> = Vec::with_capacity(groups.len());
    for (key, recs) in groups {
        let arc = store
            .take_table(&key)
            .ok_or_else(|| StoreError::NoSuchTable(key.clone()))?;
        work.push((key, arc, recs));
    }
    let workers = threads.min(work.len());
    let mut buckets: Vec<Vec<TableWork>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in work.into_iter().enumerate() {
        buckets[i % workers].push(item);
    }
    let results: Vec<WorkerResult> = std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    let mut out = Vec::with_capacity(bucket.len());
                    for (key, mut arc, recs) in bucket {
                        let t = Arc::make_mut(&mut arc);
                        for rec in &recs {
                            t.apply_dml(rec)?;
                        }
                        out.push((key, arc));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay worker panicked"))
            .collect()
    });
    let mut first_err: Option<StoreError> = None;
    for res in results {
        match res {
            Ok(tables) => {
                for (key, arc) in tables {
                    store.put_table(key, arc);
                }
            }
            // A failed worker's tables stay out of the store; the whole
            // open fails with the error, so the partial store is discarded.
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("phoenix-db-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn def() -> TableDef {
        TableDef::new(
            "dbo.t",
            Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("v", DataType::Text),
            ]),
        )
        .with_primary_key(vec![0])
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::Text(v.into())]
    }

    #[test]
    fn committed_work_survives_reopen() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.insert(t, "dbo.t", row(1, "a")).unwrap();
            db.insert(t, "dbo.t", row(2, "b")).unwrap();
            db.commit(t).unwrap();
            // Simulate crash: drop without checkpoint.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let store = db.snapshot();
        let t = store.table("dbo.t").unwrap();
        assert_eq!(t.len(), 2);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_work_is_lost_on_reopen() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.commit(t).unwrap();
            let t2 = db.begin().unwrap();
            db.insert(t2, "dbo.t", row(1, "ghost")).unwrap();
            // No commit; crash.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert!(db.snapshot().table("dbo.t").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_rolls_back_in_memory() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "a")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        let rid = db.insert(t2, "dbo.t", row(2, "b")).unwrap();
        db.update(t2, "dbo.t", 1, row(1, "changed")).unwrap();
        db.delete(t2, "dbo.t", 1).unwrap();
        db.create_proc(t2, "p", "SELECT 1").unwrap();
        db.abort(t2).unwrap();

        let store = db.snapshot();
        let tbl = store.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.rows[&1], row(1, "a"));
        assert!(!tbl.rows.contains_key(&rid));
        assert!(store.proc("p").is_none());
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_restores_dropped_table() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "keep")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        db.drop_table(t2, "dbo.t").unwrap();
        assert!(!db.snapshot().has_table("dbo.t"));
        db.abort(t2).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Index DDL is redo-only durable: the CreateIndex barrier replays from
    /// the WAL, and DML before/after it lands in the rebuilt map.
    #[test]
    fn index_recovers_from_wal_and_checkpoint() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.insert(t, "dbo.t", row(1, "a")).unwrap();
            db.commit(t).unwrap();
            let t2 = db.begin().unwrap();
            db.create_index(t2, "dbo.t", "t_name", 1).unwrap();
            db.insert(t2, "dbo.t", row(2, "b")).unwrap();
            db.commit(t2).unwrap();
            // Crash (drop without checkpoint): replay rebuilds the index.
        }
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let snap = db.snapshot();
            let tbl = snap.table("dbo.t").unwrap();
            assert_eq!(tbl.def.indexes.len(), 1);
            assert_eq!(tbl.sec_index(0).len(), 2);
            snap.verify_indexes().unwrap();
            drop(snap);
            // Checkpoint, then more DML, then crash again: the index def now
            // rides the snapshot segment and replayed DML maintains it.
            db.checkpoint().unwrap();
            let t3 = db.begin().unwrap();
            db.insert(t3, "dbo.t", row(3, "c")).unwrap();
            db.commit(t3).unwrap();
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let snap = db.snapshot();
        let tbl = snap.table("dbo.t").unwrap();
        assert_eq!(tbl.sec_index(0).len(), 3);
        snap.verify_indexes().unwrap();
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_rolls_back_index_ddl() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "a")).unwrap();
        db.create_index(t, "dbo.t", "t_keep", 1).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        db.create_index(t2, "dbo.t", "t_scratch", 0).unwrap();
        db.drop_index(t2, "dbo.t", "t_keep").unwrap();
        db.abort(t2).unwrap();

        let snap = db.snapshot();
        let tbl = snap.table("dbo.t").unwrap();
        assert_eq!(tbl.def.indexes.len(), 1, "scratch gone, keep restored");
        assert!(tbl.def.index_pos("t_keep").is_some());
        assert_eq!(tbl.sec_index(0).len(), 1, "restored index is backfilled");
        snap.verify_indexes().unwrap();
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A snapshot handed out before mutations keeps showing the old image:
    /// inserts, updates, deletes, batch inserts and drops land in later
    /// publications without disturbing the reader's copy.
    #[test]
    fn snapshot_is_immutable_under_later_mutations() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "a")).unwrap();
        db.commit(t).unwrap();

        let before = db.snapshot();
        let t2 = db.begin().unwrap();
        db.update(t2, "dbo.t", 1, row(1, "mutated")).unwrap();
        db.insert_many(t2, "dbo.t", vec![row(2, "b"), row(3, "c")])
            .unwrap();
        db.delete(t2, "dbo.t", 1).unwrap();
        db.commit(t2).unwrap();

        // The old snapshot still shows exactly the pre-mutation image …
        let tbl = before.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.rows[&1], row(1, "a"));
        // … while a fresh one sees everything.
        let after = db.snapshot();
        let tbl = after.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 2);
        assert!(!tbl.rows.contains_key(&1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `insert_many` is one log append for the whole batch, and recovery
    /// replays it identically to per-row inserts.
    #[test]
    fn insert_many_logs_once_and_recovers() {
        let dir = temp_dir();
        let ids;
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            let before = db.log_records_since_checkpoint();
            ids = db
                .insert_many(t, "dbo.t", (0..50).map(|i| row(i, "v")).collect())
                .unwrap();
            assert_eq!(db.log_records_since_checkpoint(), before + 1);
            db.commit(t).unwrap();
        }
        assert_eq!(ids, (1..=50).collect::<Vec<RowId>>());
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let snap = db.snapshot();
        let tbl = snap.table("dbo.t").unwrap();
        assert_eq!(tbl.len(), 50);
        assert_eq!(tbl.next_row_id, 51);
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A batch whose encoding exceeds the WAL frame cap is split into
    /// multiple conforming records instead of being refused.
    #[test]
    fn insert_many_splits_oversized_batches() {
        let dir = temp_dir();
        let ids;
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            // 5 rows × ~20 MiB ≈ 100 MiB encoded — over the 64 MiB cap,
            // but each half fits.
            let big = "y".repeat(20 * 1024 * 1024);
            let before = db.log_records_since_checkpoint();
            ids = db
                .insert_many(t, "dbo.t", (0..5).map(|i| row(i, &big)).collect())
                .unwrap();
            assert!(db.log_records_since_checkpoint() > before + 1);
            db.commit(t).unwrap();
        }
        assert_eq!(ids, (1..=5).collect::<Vec<RowId>>());
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An aborted `insert_many` is fully undone.
    #[test]
    fn insert_many_aborts_cleanly() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.insert(t, "dbo.t", row(1, "keep")).unwrap();
        db.commit(t).unwrap();

        let t2 = db.begin().unwrap();
        db.insert_many(t2, "dbo.t", vec![row(2, "b"), row(3, "c"), row(4, "d")])
            .unwrap();
        db.abort(t2).unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.table("dbo.t").unwrap().len(), 1);
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_log_and_preserves_state() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            for i in 0..10 {
                db.insert(t, "dbo.t", row(i, "x")).unwrap();
            }
            db.commit(t).unwrap();
            db.checkpoint().unwrap();
            assert_eq!(db.log_records_since_checkpoint(), 0);
            // More work after the checkpoint.
            let t2 = db.begin().unwrap();
            db.insert(t2, "dbo.t", row(100, "post")).unwrap();
            db.commit(t2).unwrap();
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_refused_with_active_txn() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        assert!(matches!(db.checkpoint(), Err(DbError::TxnActive(x)) if x == t));
        db.abort(t).unwrap();
        db.checkpoint().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn txn_ids_monotone_across_restarts() {
        let dir = temp_dir();
        let last = {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.commit(t).unwrap();
            t
        };
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        assert!(t > last);
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_ids_stable_across_recovery() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.insert(t, "dbo.t", row(1, "a")).unwrap();
            let rid2 = db.insert(t, "dbo.t", row(2, "b")).unwrap();
            db.delete(t, "dbo.t", rid2).unwrap();
            db.commit(t).unwrap();
        }
        let dir2 = dir.clone();
        let db = Durable::open(&dir2, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        // A new insert must not reuse the deleted id 2.
        let rid = db.insert(t, "dbo.t", row(3, "c")).unwrap();
        assert_eq!(rid, 3);
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutating_unknown_txn_is_an_error() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert!(matches!(
            db.insert(999, "dbo.t", row(1, "x")),
            Err(DbError::NoSuchTxn(999))
        ));
        assert!(matches!(db.commit(999), Err(DbError::NoSuchTxn(999))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The guard returned by an oversized `Wal::append` surfaces through the
    /// durability layer as an `Io` error even in release builds, instead of
    /// silently writing a frame recovery would discard as a corrupt tail.
    #[test]
    fn oversized_row_is_refused_not_silently_dropped() {
        let dir = temp_dir();
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        // A text value bigger than the frame cap; the encoded record is
        // necessarily bigger still.
        let huge = "x".repeat(MAX_FRAME as usize + 1);
        let err = db
            .insert(t, "dbo.t", vec![Value::Int(1), Value::Text(huge)])
            .unwrap_err();
        match err {
            DbError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
            other => panic!("expected Io(InvalidInput), got {other}"),
        }
        // The store was not touched (log-before-apply: the append failed
        // before any apply) and the database remains usable.
        assert!(db.snapshot().table("dbo.t").unwrap().is_empty());
        db.insert(t, "dbo.t", row(1, "small")).unwrap();
        db.commit(t).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Concurrent committers must coalesce into fewer `sync_data` calls than
    /// commits (the group-commit property the bench measures).
    #[test]
    fn group_commit_coalesces_syncs() {
        use std::sync::Arc;
        let dir = temp_dir();
        let db = Arc::new(Durable::open(&dir, Durability::Fsync).unwrap());
        let t = db.begin().unwrap();
        db.create_table(t, def()).unwrap();
        db.commit(t).unwrap();

        let before = db.wal_sync_count();
        const THREADS: usize = 8;
        const COMMITS: usize = 25;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|k| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..COMMITS {
                        let t = db.begin().unwrap();
                        db.insert(t, "dbo.t", row((k * COMMITS + i) as i64 + 10, "w"))
                            .unwrap();
                        db.commit(t).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let syncs = db.wal_sync_count() - before;
        let commits = (THREADS * COMMITS) as u64;
        assert!(syncs >= 1, "commits must sync at least once");
        assert!(
            syncs < commits,
            "expected group commit to coalesce: {syncs} syncs for {commits} commits"
        );
        assert_eq!(
            db.snapshot().table("dbo.t").unwrap().len(),
            commits as usize
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Interleaved transactions from many threads all recover after a crash.
    #[test]
    fn concurrent_commits_all_recover() {
        use std::sync::Arc;
        let dir = temp_dir();
        {
            let db = Arc::new(Durable::open(&dir, Durability::Fsync).unwrap());
            let t = db.begin().unwrap();
            db.create_table(t, def()).unwrap();
            db.commit(t).unwrap();
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    let db = Arc::clone(&db);
                    std::thread::spawn(move || {
                        for i in 0..20 {
                            let t = db.begin().unwrap();
                            db.insert(t, "dbo.t", row((k * 20 + i) as i64, "v"))
                                .unwrap();
                            if i % 5 == 4 {
                                // Sprinkle empty aborts between the commits,
                                // plus an extra insert under the live txn.
                                let a = db.begin().unwrap();
                                db.insert(t, "dbo.t", row(1000 + (k * 20 + i) as i64, "tmp"))
                                    .unwrap();
                                db.abort(a).unwrap();
                            }
                            db.commit(t).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // Crash: drop without checkpoint.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        let store = db.snapshot();
        let tbl = store.table("dbo.t").unwrap();
        // 4 threads × 20 committed inserts each, plus 4×4 extra rows inserted
        // under the *committed* txn t during the abort interludes.
        assert_eq!(tbl.len(), 80 + 16);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn opts(partitions: usize) -> RecoveryOptions {
        RecoveryOptions {
            partitions: Some(partitions),
            ..RecoveryOptions::default()
        }
    }

    fn named_def(name: &str) -> TableDef {
        TableDef::new(
            name,
            Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("v", DataType::Text),
            ]),
        )
        .with_primary_key(vec![0])
    }

    /// Basic write/commit/recover with a partitioned layout: tables land in
    /// distinct shards and streams, and recovery merges them back.
    #[test]
    fn partitioned_commit_and_recover() {
        let dir = temp_dir();
        let names = ["acct", "dbo.acct", "customer", "audit"];
        {
            let db = Durable::open_opts(&dir, Durability::Fsync, &opts(4)).unwrap();
            assert_eq!(db.partitions(), 4);
            let t = db.begin().unwrap();
            for name in names {
                db.create_table(t, named_def(name)).unwrap();
                db.insert(t, name, row(1, name)).unwrap();
            }
            db.commit(t).unwrap();
            // The tables hash to more than one partition, so at least one
            // suffixed stream must exist on disk.
            let extra: Vec<usize> = (1..4)
                .filter(|&k| Durable::wal_path(&dir, k).exists())
                .collect();
            assert!(!extra.is_empty(), "expected at least one .p<k> stream");
        }
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(4)).unwrap();
        let snap = db.snapshot();
        for name in names {
            let tbl = snap.table(name).unwrap();
            assert_eq!(tbl.len(), 1, "{name}");
            assert_eq!(tbl.rows[&1], row(1, name));
        }
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A cross-partition transaction commits atomically: after crash +
    /// recovery either both tables show its rows or neither does — here the
    /// commit completed, so both must.
    #[test]
    fn cross_partition_txn_commits_atomically() {
        let dir = temp_dir();
        // At n=2, "acct" routes to partition 0 and "dbo.acct" to 1.
        assert_ne!(partition_of("acct", 2), partition_of("dbo.acct", 2));
        {
            let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, named_def("acct")).unwrap();
            db.create_table(t, named_def("dbo.acct")).unwrap();
            db.commit(t).unwrap();
            let t = db.begin().unwrap();
            db.insert(t, "acct", row(1, "debit")).unwrap();
            db.insert(t, "dbo.acct", row(1, "credit")).unwrap();
            db.commit(t).unwrap();
            // And an uncommitted cross-partition txn that must vanish.
            let t = db.begin().unwrap();
            db.insert(t, "acct", row(2, "ghost")).unwrap();
            db.insert(t, "dbo.acct", row(2, "ghost")).unwrap();
            // Crash without commit.
        }
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.table("acct").unwrap().len(), 1);
        assert_eq!(snap.table("dbo.acct").unwrap().len(), 1);
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A `CommitMulti` present in only *some* participant streams (the
    /// mid-commit crash window) rolls the transaction back on recovery.
    #[test]
    fn partial_cross_partition_commit_rolls_back() {
        let dir = temp_dir();
        let (p_acct, p_other) = (partition_of("acct", 2), partition_of("dbo.acct", 2));
        {
            let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
            let t = db.begin().unwrap();
            db.create_table(t, named_def("acct")).unwrap();
            db.create_table(t, named_def("dbo.acct")).unwrap();
            db.commit(t).unwrap();
            let t = db.begin().unwrap();
            db.insert(t, "acct", row(1, "half")).unwrap();
            db.insert(t, "dbo.acct", row(1, "half")).unwrap();
            // Forge the partial-commit window: append the CommitMulti
            // record to only ONE participant stream, as a crash between the
            // two appends would leave it.
            let rec = LogRecord::CommitMulti {
                txn: t,
                participants: vec![p_acct as u32, p_other as u32],
            };
            db.append_locked(p_acct, &mut db.parts[p_acct].wal.lock(), &rec.encode())
                .unwrap();
            db.parts[p_acct].wal.lock().sync().unwrap();
            // Crash.
        }
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
        let snap = db.snapshot();
        assert!(snap.table("acct").unwrap().is_empty());
        assert!(snap.table("dbo.acct").unwrap().is_empty());
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A directory written with one partition count re-opens correctly with
    /// another: recovery scans every possible stream, and the next
    /// checkpoint retires the ones outside the new layout.
    #[test]
    fn reopen_with_different_partition_count() {
        let dir = temp_dir();
        let names = ["acct", "dbo.acct", "customer", "audit"];
        {
            let db = Durable::open_opts(&dir, Durability::Fsync, &opts(4)).unwrap();
            let t = db.begin().unwrap();
            for name in names {
                db.create_table(t, named_def(name)).unwrap();
                db.insert(t, name, row(7, name)).unwrap();
            }
            db.commit(t).unwrap();
        }
        {
            let db = Durable::open_opts(&dir, Durability::Fsync, &opts(1)).unwrap();
            let snap = db.snapshot();
            for name in names {
                assert_eq!(snap.table(name).unwrap().len(), 1, "{name}");
            }
            drop(snap);
            db.checkpoint().unwrap();
            // Streams outside the single-partition layout are gone.
            for k in 1..MAX_PARTITIONS {
                assert!(!Durable::wal_path(&dir, k).exists(), "p{k} should be gone");
            }
        }
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
        let snap = db.snapshot();
        for name in names {
            assert_eq!(snap.table(name).unwrap().len(), 1, "{name}");
        }
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Aborting a cross-partition transaction rolls back every shard.
    #[test]
    fn cross_partition_abort_rolls_back_all_shards() {
        let dir = temp_dir();
        let db = Durable::open_opts(&dir, Durability::Fsync, &opts(2)).unwrap();
        let t = db.begin().unwrap();
        db.create_table(t, named_def("acct")).unwrap();
        db.create_table(t, named_def("dbo.acct")).unwrap();
        db.insert(t, "acct", row(1, "a")).unwrap();
        db.commit(t).unwrap();
        let t = db.begin().unwrap();
        db.insert(t, "acct", row(2, "x")).unwrap();
        db.update(t, "acct", 1, row(1, "mutated")).unwrap();
        db.insert(t, "dbo.acct", row(1, "y")).unwrap();
        db.create_proc(t, "p", "SELECT 1").unwrap();
        db.abort(t).unwrap();
        let snap = db.snapshot();
        let acct = snap.table("acct").unwrap();
        assert_eq!(acct.len(), 1);
        assert_eq!(acct.rows[&1], row(1, "a"));
        assert!(snap.table("dbo.acct").unwrap().is_empty());
        assert!(!snap.has_proc("p"));
        drop(snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod reopen_tests {
    use super::*;
    use crate::types::{Column, DataType, Schema, Value};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("phoenix-reopen-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Recovery is idempotent: opening, doing nothing, and re-opening any
    /// number of times never changes the recovered state (replaying the
    /// same committed log repeatedly must converge).
    #[test]
    fn repeated_recovery_is_idempotent() {
        let dir = temp_dir();
        {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            let t = db.begin().unwrap();
            db.create_table(
                t,
                TableDef::new("dbo.t", Schema::new(vec![Column::new("v", DataType::Int)])),
            )
            .unwrap();
            for i in 0..5 {
                db.insert(t, "dbo.t", vec![Value::Int(i)]).unwrap();
            }
            db.commit(t).unwrap();
        }
        let snapshot_of = |db: &Durable| -> Vec<(u64, i64)> {
            db.snapshot()
                .table("dbo.t")
                .unwrap()
                .rows
                .iter()
                .map(|(rid, row)| (*rid, row[0].as_i64().unwrap()))
                .collect()
        };
        let first = {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            snapshot_of(&db)
        };
        for _ in 0..3 {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            assert_eq!(snapshot_of(&db), first);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Checkpoint + more work + crash + recover + checkpoint again: the
    /// snapshot/log alternation composes.
    #[test]
    fn alternating_checkpoints_and_crashes() {
        let dir = temp_dir();
        for round in 0..4 {
            let db = Durable::open(&dir, Durability::Fsync).unwrap();
            if round == 0 {
                let t = db.begin().unwrap();
                db.create_table(
                    t,
                    TableDef::new("dbo.t", Schema::new(vec![Column::new("v", DataType::Int)])),
                )
                .unwrap();
                db.commit(t).unwrap();
            }
            let t = db.begin().unwrap();
            db.insert(t, "dbo.t", vec![Value::Int(round)]).unwrap();
            db.commit(t).unwrap();
            if round % 2 == 0 {
                db.checkpoint().unwrap();
            }
            // Crash (drop) either right after the checkpoint or with the
            // round's work only in the log.
        }
        let db = Durable::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(db.snapshot().table("dbo.t").unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
