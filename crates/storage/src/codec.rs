//! Compact binary encoding for values, rows, schemas and table definitions.
//!
//! One codec is shared by the write-ahead log, snapshots and the wire
//! protocol, so there is a single place where a value's byte representation
//! is defined. The format is tag-prefixed and self-describing enough to be
//! decoded without external schema information:
//!
//! ```text
//! value   := tag:u8 payload
//! tag     := 0 NULL | 1 INT(i64 LE) | 2 FLOAT(f64 LE) | 3 TEXT(len:u32 bytes)
//!          | 4 BOOL(u8) | 5 DATE(i32 LE)
//! row     := ncols:u16 value*
//! string  := len:u32 utf8-bytes
//! ```
//!
//! Decoding is strict: unknown tags, truncated buffers and invalid UTF-8 all
//! surface as [`DecodeError`] rather than panics, because the WAL reader must
//! treat a torn tail as end-of-log, not as a crash.

use bytes::{Buf, BufMut};
use std::fmt;

use crate::types::{Column, DataType, IndexDef, Row, Schema, TableDef, Value};

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

/// Ensure `buf` has at least `n` readable bytes.
fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(err(format!(
            "truncated {what}: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

/// Encode a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decode a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> Result<String, DecodeError> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "string body")?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| err("invalid utf-8 in string"))
}

// ---------------------------------------------------------------------------
// Values and rows
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_DATE: u8 = 5;

/// Encode one value (tag + payload).
pub fn put_value(buf: &mut impl BufMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Date(d) => {
            buf.put_u8(TAG_DATE);
            buf.put_i32_le(*d);
        }
    }
}

/// Decode one value.
pub fn get_value(buf: &mut impl Buf) -> Result<Value, DecodeError> {
    need(buf, 1, "value tag")?;
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => {
            need(buf, 8, "int")?;
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            need(buf, 8, "float")?;
            Value::Float(buf.get_f64_le())
        }
        TAG_TEXT => Value::Text(get_str(buf)?),
        TAG_BOOL => {
            need(buf, 1, "bool")?;
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_DATE => {
            need(buf, 4, "date")?;
            Value::Date(buf.get_i32_le())
        }
        other => return Err(err(format!("unknown value tag {other}"))),
    })
}

/// Encode a row (arity + values).
pub fn put_row(buf: &mut impl BufMut, row: &Row) {
    buf.put_u16_le(row.len() as u16);
    for v in row {
        put_value(buf, v);
    }
}

/// Decode a row.
pub fn get_row(buf: &mut impl Buf) -> Result<Row, DecodeError> {
    need(buf, 2, "row arity")?;
    let n = buf.get_u16_le() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

// ---------------------------------------------------------------------------
// Schemas and table definitions
// ---------------------------------------------------------------------------

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType, DecodeError> {
    Ok(match t {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Date,
        other => return Err(err(format!("unknown data type tag {other}"))),
    })
}

/// Encode a schema (column names, types, nullability).
pub fn put_schema(buf: &mut impl BufMut, schema: &Schema) {
    buf.put_u16_le(schema.columns.len() as u16);
    for c in &schema.columns {
        put_str(buf, &c.name);
        buf.put_u8(dtype_tag(c.dtype));
        buf.put_u8(c.nullable as u8);
    }
}

/// Decode a schema.
pub fn get_schema(buf: &mut impl Buf) -> Result<Schema, DecodeError> {
    need(buf, 2, "schema arity")?;
    let n = buf.get_u16_le() as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(buf)?;
        need(buf, 2, "column type")?;
        let dtype = dtype_from_tag(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        columns.push(Column {
            name,
            dtype,
            nullable,
        });
    }
    Ok(Schema { columns })
}

/// Encode a full table definition (name + schema + primary key + indexes).
pub fn put_table_def(buf: &mut impl BufMut, def: &TableDef) {
    put_str(buf, &def.name);
    put_schema(buf, &def.schema);
    buf.put_u16_le(def.primary_key.len() as u16);
    for &i in &def.primary_key {
        buf.put_u16_le(i as u16);
    }
    buf.put_u16_le(def.indexes.len() as u16);
    for ix in &def.indexes {
        put_str(buf, &ix.name);
        buf.put_u16_le(ix.column as u16);
    }
}

/// Decode a table definition, validating key and index column indices
/// against the schema.
pub fn get_table_def(buf: &mut impl Buf) -> Result<TableDef, DecodeError> {
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    need(buf, 2, "pk arity")?;
    let n = buf.get_u16_le() as usize;
    let mut primary_key = Vec::with_capacity(n);
    for _ in 0..n {
        need(buf, 2, "pk index")?;
        let i = buf.get_u16_le() as usize;
        if i >= schema.columns.len() {
            return Err(err(format!("pk index {i} out of range")));
        }
        primary_key.push(i);
    }
    need(buf, 2, "index count")?;
    let n = buf.get_u16_le() as usize;
    let mut indexes = Vec::with_capacity(n);
    for _ in 0..n {
        let ix_name = get_str(buf)?;
        need(buf, 2, "index column")?;
        let column = buf.get_u16_le() as usize;
        if column >= schema.columns.len() {
            return Err(err(format!("index column {column} out of range")));
        }
        indexes.push(IndexDef {
            name: ix_name,
            column,
        });
    }
    Ok(TableDef {
        name,
        schema,
        primary_key,
        indexes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip_value(v: Value) {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &v);
        let mut b = buf.freeze();
        assert_eq!(get_value(&mut b).unwrap(), v);
        assert_eq!(b.remaining(), 0, "trailing bytes after {v:?}");
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Int(i64::MAX));
        roundtrip_value(Value::Float(3.25));
        roundtrip_value(Value::Float(f64::NEG_INFINITY));
        roundtrip_value(Value::Text(String::new()));
        roundtrip_value(Value::Text("héllo, wörld".into()));
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Date(-719468));
    }

    #[test]
    fn row_roundtrip() {
        let row: Row = vec![Value::Int(1), Value::Null, Value::Text("x".into())];
        let mut buf = BytesMut::new();
        put_row(&mut buf, &row);
        let mut b = buf.freeze();
        assert_eq!(get_row(&mut b).unwrap(), row);
    }

    #[test]
    fn schema_and_table_def_roundtrip() {
        let def = TableDef {
            name: "phoenix.rs_7".into(),
            schema: Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("name", DataType::Text),
                Column::new("when", DataType::Date),
            ]),
            primary_key: vec![0, 2],
            indexes: vec![IndexDef {
                name: "rs_7_name".into(),
                column: 1,
            }],
        };
        let mut buf = BytesMut::new();
        put_table_def(&mut buf, &def);
        let mut b = buf.freeze();
        assert_eq!(get_table_def(&mut b).unwrap(), def);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &Value::Text("hello".into()));
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut part = full.slice(..cut);
            assert!(get_value(&mut part).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut b = bytes::Bytes::from_static(&[200u8]);
        assert!(get_value(&mut b).is_err());
    }

    #[test]
    fn pk_index_out_of_range_rejected() {
        let def = TableDef {
            name: "t".into(),
            schema: Schema::new(vec![Column::new("a", DataType::Int)]),
            primary_key: vec![0],
            indexes: Vec::new(),
        };
        let mut buf = BytesMut::new();
        put_table_def(&mut buf, &def);
        let mut raw = buf.to_vec();
        // Corrupt the pk index (it sits before the empty index count at the
        // tail) to point out of range.
        let n = raw.len();
        raw[n - 4] = 9;
        let mut b = bytes::Bytes::from(raw);
        assert!(get_table_def(&mut b).is_err());
    }

    #[test]
    fn index_column_out_of_range_rejected() {
        let def = TableDef {
            name: "t".into(),
            schema: Schema::new(vec![Column::new("a", DataType::Int)]),
            primary_key: Vec::new(),
            indexes: vec![IndexDef {
                name: "ix".into(),
                column: 0,
            }],
        };
        let mut buf = BytesMut::new();
        put_table_def(&mut buf, &def);
        let mut raw = buf.to_vec();
        // The index column is the final u16.
        let n = raw.len();
        raw[n - 2] = 9;
        let mut b = bytes::Bytes::from(raw);
        assert!(get_table_def(&mut b).is_err());
    }
}
