//! The full TPC-H-style suite executed against the real engine: every query
//! must run, return plausible shapes, and be deterministic; the refresh
//! functions must round-trip the database back to its starting state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_engine::{Engine, EngineConfig, ExecOutcome};
use phoenix_storage::types::Value;
use phoenix_tpch::queries::QUERIES;
use phoenix_tpch::refresh::{rf1, rf2};
use phoenix_tpch::{Tpch, TpchConfig};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-tpch-test-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn load(scale: f64) -> (Engine, u64, Tpch, PathBuf) {
    let dir = temp_dir();
    let engine = Engine::open(&dir, EngineConfig::default()).unwrap();
    let sid = engine.create_session("bench");
    let t = Tpch::new(TpchConfig::default().with_scale(scale));
    for sql in t.setup_sql() {
        engine
            .execute(sid, &sql)
            .unwrap_or_else(|e| panic!("{e}: {}", &sql[..sql.len().min(100)]));
    }
    (engine, sid, t, dir)
}

#[test]
fn all_queries_run_and_are_deterministic() {
    let (engine, sid, _t, dir) = load(0.25);
    for q in QUERIES {
        let a = engine
            .execute(sid, q.sql)
            .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let b = engine.execute(sid, q.sql).unwrap();
        match (&a.outcome, &b.outcome) {
            (
                ExecOutcome::ResultSet { rows: ra, schema },
                ExecOutcome::ResultSet { rows: rb, .. },
            ) => {
                assert_eq!(ra, rb, "{} not deterministic", q.name);
                assert!(!schema.is_empty(), "{} empty schema", q.name);
            }
            other => panic!("{}: {other:?}", q.name),
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn query_shapes_are_plausible() {
    let (engine, sid, _t, dir) = load(0.25);

    // Q1 groups by (returnflag, linestatus): at most 4 combinations exist in
    // the generator (R/F, A/F, N/O).
    let r = engine
        .execute(sid, phoenix_tpch::queries::by_name("Q1").unwrap().sql)
        .unwrap();
    let n = r.rows().len();
    assert!((1..=4).contains(&n), "Q1 groups: {n}");

    // Q6 returns a single aggregate row with a positive revenue.
    let r = engine
        .execute(sid, phoenix_tpch::queries::by_name("Q6").unwrap().sql)
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    match &r.rows()[0][0] {
        Value::Float(f) => assert!(*f > 0.0, "Q6 revenue {f}"),
        Value::Null => panic!("Q6 revenue NULL — predicates select nothing"),
        other => panic!("{other:?}"),
    }

    // Q3 respects its LIMIT.
    let r = engine
        .execute(sid, phoenix_tpch::queries::by_name("Q3").unwrap().sql)
        .unwrap();
    assert!(r.rows().len() <= 10);

    // Q11 (the recovery-experiment query) returns a sizable ordered result.
    let r = engine
        .execute(sid, phoenix_tpch::queries::by_name("Q11").unwrap().sql)
        .unwrap();
    assert!(!r.rows().is_empty(), "Q11 empty");
    let values: Vec<f64> = r
        .rows()
        .iter()
        .map(|row| row[1].as_f64().unwrap())
        .collect();
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_eq!(values, sorted, "Q11 not ordered by value DESC");

    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn refresh_functions_round_trip() {
    let (mut engine, sid, t, dir) = load(0.25);
    let count = |e: &mut Engine, sid, table: &str| -> i64 {
        e.execute(sid, &format!("SELECT COUNT(*) FROM {table}"))
            .unwrap()
            .rows()[0][0]
            .as_i64()
            .unwrap()
    };

    let orders0 = count(&mut engine, sid, "orders");
    let lines0 = count(&mut engine, sid, "lineitem");
    let (lo, hi) = t.refresh_key_range();

    // RF1 inserts the staged rows…
    let mut inserted = 0;
    for sql in rf1(lo, hi) {
        inserted += engine.execute(sid, &sql).unwrap().affected();
    }
    assert!(inserted > 0);
    assert_eq!(
        count(&mut engine, sid, "orders"),
        orders0 + t.refresh_orders
    );
    assert!(count(&mut engine, sid, "lineitem") > lines0);

    // …and RF2 removes exactly what RF1 added.
    let mut deleted = 0;
    for sql in rf2(lo, hi) {
        deleted += engine.execute(sid, &sql).unwrap().affected();
    }
    assert_eq!(deleted, inserted);
    assert_eq!(count(&mut engine, sid, "orders"), orders0);
    assert_eq!(count(&mut engine, sid, "lineitem"), lines0);

    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn row_counts_match_config() {
    let (mut engine, sid, t, dir) = load(0.25);
    let count = |e: &mut Engine, sid, table: &str| -> i64 {
        e.execute(sid, &format!("SELECT COUNT(*) FROM {table}"))
            .unwrap()
            .rows()[0][0]
            .as_i64()
            .unwrap()
    };
    assert_eq!(count(&mut engine, sid, "region"), 5);
    assert_eq!(count(&mut engine, sid, "nation"), 25);
    assert_eq!(count(&mut engine, sid, "orders"), t.orders);
    assert_eq!(count(&mut engine, sid, "customer"), t.customers);
    assert_eq!(count(&mut engine, sid, "partsupp"), t.parts * 4);
    assert_eq!(count(&mut engine, sid, "rf_orders_new"), t.refresh_orders);
    let li = count(&mut engine, sid, "lineitem");
    assert!(li >= t.orders && li <= t.orders * 7, "lineitem {li}");
    std::fs::remove_dir_all(dir).unwrap();
}
