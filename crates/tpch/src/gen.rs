//! Seeded TPC-H-style data generation.
//!
//! Everything is driven by a single seed, so two runs (e.g. the native
//! baseline and the Phoenix run of the power test) see byte-identical data.
//! The scale factor multiplies the row counts of the big tables; `scale =
//! 1.0` builds a laptop-friendly database (≈6k LINEITEM rows) that keeps
//! the paper's *relative* characteristics: LINEITEM ≫ ORDERS ≫ CUSTOMER,
//! selective predicates, skewless uniform distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phoenix_storage::types::days_from_civil;

use crate::schema;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Row-count multiplier (1.0 ≈ 6k LINEITEM rows).
    pub scale: f64,
    /// RNG seed; identical seeds generate identical databases.
    pub seed: u64,
    /// Rows per INSERT batch in the generated load script.
    pub batch: usize,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 1.0,
            seed: 42,
            batch: 200,
        }
    }
}

impl TpchConfig {
    /// Builder: set the scale factor.
    pub fn with_scale(mut self, s: f64) -> Self {
        self.scale = s;
        self
    }
}

/// The generated workload: row counts plus the SQL load script.
pub struct Tpch {
    /// The generator configuration.
    pub config: TpchConfig,
    /// SUPPLIER row count.
    pub suppliers: i64,
    /// PART row count.
    pub parts: i64,
    /// CUSTOMER row count.
    pub customers: i64,
    /// ORDERS row count (base keys `1..=orders`).
    pub orders: i64,
    /// Refresh set size (orders inserted by RF1 / deleted by RF2).
    pub refresh_orders: i64,
    /// Approximate lineitem count (exact count depends on the seed).
    pub lineitems_approx: i64,
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];
const PART_ADJ: [&str; 10] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
];

fn q(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

impl Tpch {
    /// Derive row counts from the configuration.
    pub fn new(config: TpchConfig) -> Tpch {
        let s = config.scale;
        let suppliers = ((100.0 * s) as i64).max(10);
        let parts = ((200.0 * s) as i64).max(20);
        let customers = ((150.0 * s) as i64).max(15);
        let orders = ((1500.0 * s) as i64).max(100);
        let refresh_orders = (orders / 10).max(4);
        Tpch {
            config,
            suppliers,
            parts,
            customers,
            orders,
            refresh_orders,
            lineitems_approx: orders * 4,
        }
    }

    /// First order key used by the refresh set (base keys are
    /// `1..=self.orders`).
    pub fn refresh_key_range(&self) -> (i64, i64) {
        (self.orders + 1, self.orders + self.refresh_orders)
    }

    /// The complete load script: DDL + batched inserts + staging data.
    pub fn setup_sql(&self) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut out: Vec<String> = Vec::new();
        out.extend(schema::ddl().into_iter().map(str::to_string));
        out.extend(schema::staging_ddl().into_iter().map(str::to_string));

        // REGION / NATION — fixed tiny tables.
        out.push(format!(
            "INSERT INTO region VALUES {}",
            REGIONS
                .iter()
                .enumerate()
                .map(|(i, r)| format!("({i}, {}, 'comment')", q(r)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push(format!(
            "INSERT INTO nation VALUES {}",
            NATIONS
                .iter()
                .enumerate()
                .map(|(i, n)| format!("({i}, {}, {}, 'comment')", q(n), i % 5))
                .collect::<Vec<_>>()
                .join(", ")
        ));

        // SUPPLIER — nations assigned round-robin so every nation has
        // suppliers at any scale (Q5/Q11 depend on nation coverage).
        self.batched(
            &mut out,
            "supplier",
            (1..=self.suppliers).map(|k| {
                format!(
                    "({k}, 'Supplier#{k:09}', {}, {:.2})",
                    (k - 1) % 25,
                    rng.gen_range(-999.99..9999.99)
                )
            }),
        );

        // PART
        let mut part_types = Vec::with_capacity(self.parts as usize);
        self.batched(
            &mut out,
            "part",
            (1..=self.parts).map(|k| {
                let ptype = format!(
                    "{} {} {}",
                    TYPE_SYL1[rng.gen_range(0..TYPE_SYL1.len())],
                    TYPE_SYL2[rng.gen_range(0..TYPE_SYL2.len())],
                    TYPE_SYL3[rng.gen_range(0..TYPE_SYL3.len())]
                );
                part_types.push(ptype.clone());
                format!(
                    "({k}, {}, 'Manufacturer#{}', 'Brand#{}{}', {}, {}, {}, {:.2})",
                    q(&format!(
                        "{} {}",
                        PART_ADJ[rng.gen_range(0..PART_ADJ.len())],
                        PART_ADJ[rng.gen_range(0..PART_ADJ.len())]
                    )),
                    rng.gen_range(1..=5),
                    rng.gen_range(1..=5),
                    rng.gen_range(1..=5),
                    q(&ptype),
                    rng.gen_range(1..=50),
                    q(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
                    (90000.0 + rng.gen_range(0.0..11000.0)) / 100.0
                )
            }),
        );

        // PARTSUPP — four suppliers per part.
        self.batched(
            &mut out,
            "partsupp",
            (1..=self.parts)
                .flat_map(|p| {
                    let ns = self.suppliers;
                    (0..4).map(move |i| (p, ((p + i * (ns / 4)) % ns) + 1))
                })
                .map(|(p, sk)| {
                    format!(
                        "({p}, {sk}, {}, {:.2})",
                        rng.gen_range(1..=9999),
                        rng.gen_range(1.0..1000.0)
                    )
                }),
        );

        // CUSTOMER — round-robin nations, like suppliers.
        self.batched(
            &mut out,
            "customer",
            (1..=self.customers).map(|k| {
                format!(
                    "({k}, 'Customer#{k:09}', {}, {:.2}, {})",
                    (k - 1) % 25,
                    rng.gen_range(-999.99..9999.99),
                    q(SEGMENTS[rng.gen_range(0..SEGMENTS.len())])
                )
            }),
        );

        // ORDERS + LINEITEM (base + refresh staging).
        let (orders_sql, lineitem_sql) =
            self.gen_orders(&mut rng, 1, self.orders, "orders", "lineitem");
        out.extend(orders_sql);
        out.extend(lineitem_sql);
        let (rf_start, rf_end) = self.refresh_key_range();
        let (o2, l2) = self.gen_orders(
            &mut rng,
            rf_start,
            rf_end,
            "rf_orders_new",
            "rf_lineitem_new",
        );
        out.extend(o2);
        out.extend(l2);

        out
    }

    /// Generate orders with keys `lo..=hi` (inclusive) and their lineitems,
    /// as batched INSERTs into the given tables.
    fn gen_orders(
        &self,
        rng: &mut StdRng,
        lo: i64,
        hi: i64,
        orders_table: &str,
        lineitem_table: &str,
    ) -> (Vec<String>, Vec<String>) {
        let epoch_lo = days_from_civil(1992, 1, 1);
        let epoch_hi = days_from_civil(1998, 8, 2);
        let cutover = days_from_civil(1995, 6, 17);

        let mut order_tuples = Vec::new();
        let mut line_tuples = Vec::new();
        for okey in lo..=hi {
            let odate = rng.gen_range(epoch_lo..epoch_hi);
            let nlines = rng.gen_range(1..=7);
            let mut total = 0.0f64;
            for ln in 1..=nlines {
                let qty = rng.gen_range(1..=50) as f64;
                let price_per = (90000.0 + rng.gen_range(0.0..11000.0)) / 100.0;
                let extended = qty * price_per;
                let discount = rng.gen_range(0..=10) as f64 / 100.0;
                let tax = rng.gen_range(0..=8) as f64 / 100.0;
                let shipdate = odate + rng.gen_range(1..=121);
                let (rflag, lstatus) = if shipdate < cutover {
                    (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
                } else {
                    ("N", "O")
                };
                total += extended * (1.0 - discount) * (1.0 + tax);
                line_tuples.push(format!(
                    "({okey}, {ln}, {}, {}, {qty:.1}, {extended:.2}, {discount:.2}, {tax:.2}, '{rflag}', '{lstatus}', DATE {}, {})",
                    rng.gen_range(1..=self.parts),
                    rng.gen_range(1..=self.suppliers),
                    q(&phoenix_storage::types::format_date(shipdate)),
                    q(SHIPMODES[rng.gen_range(0..SHIPMODES.len())])
                ));
            }
            let status = if odate < cutover { "F" } else { "O" };
            order_tuples.push(format!(
                "({okey}, {}, '{status}', {total:.2}, DATE {}, {}, 0)",
                rng.gen_range(1..=self.customers),
                q(&phoenix_storage::types::format_date(odate)),
                q(PRIORITIES[rng.gen_range(0..PRIORITIES.len())])
            ));
        }

        let mut orders_sql = Vec::new();
        for chunk in order_tuples.chunks(self.config.batch) {
            orders_sql.push(format!(
                "INSERT INTO {orders_table} VALUES {}",
                chunk.join(", ")
            ));
        }
        let mut lineitem_sql = Vec::new();
        for chunk in line_tuples.chunks(self.config.batch) {
            lineitem_sql.push(format!(
                "INSERT INTO {lineitem_table} VALUES {}",
                chunk.join(", ")
            ));
        }
        (orders_sql, lineitem_sql)
    }

    fn batched(&self, out: &mut Vec<String>, table: &str, tuples: impl Iterator<Item = String>) {
        let tuples: Vec<String> = tuples.collect();
        for chunk in tuples.chunks(self.config.batch) {
            out.push(format!("INSERT INTO {table} VALUES {}", chunk.join(", ")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = Tpch::new(TpchConfig::default()).setup_sql();
        let b = Tpch::new(TpchConfig::default()).setup_sql();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let a = Tpch::new(TpchConfig::default()).setup_sql();
        let b = Tpch::new(TpchConfig {
            seed: 43,
            ..TpchConfig::default()
        })
        .setup_sql();
        assert_ne!(a, b);
    }

    #[test]
    fn every_statement_parses() {
        let t = Tpch::new(TpchConfig {
            scale: 0.1,
            ..TpchConfig::default()
        });
        for sql in t.setup_sql() {
            phoenix_sql::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("{e}: {}", &sql[..sql.len().min(120)]));
        }
    }

    #[test]
    fn scale_controls_counts() {
        let small = Tpch::new(TpchConfig::default().with_scale(0.5));
        let big = Tpch::new(TpchConfig::default().with_scale(2.0));
        assert!(big.orders > small.orders);
        assert_eq!(big.orders, 3000);
        assert_eq!(small.orders, 750);
    }

    #[test]
    fn refresh_keys_disjoint_from_base() {
        let t = Tpch::new(TpchConfig::default());
        let (lo, hi) = t.refresh_key_range();
        assert!(lo > t.orders);
        assert_eq!(hi - lo + 1, t.refresh_orders);
    }
}
