//! The query suite: TPC-H-style queries re-expressed in the engine's
//! dialect, preserving the operator mix the paper's power test exercises —
//! "from a simple single-table query to a complex eight-way join", with
//! selective predicates, grouped aggregation, CASE, LIKE, BETWEEN, IN and
//! COUNT(DISTINCT …).
//!
//! Queries the paper's Table 1 names (Q1, Q11, Q16) keep their numbers and
//! intent; the rest are faithful adaptations within the supported dialect
//! (no correlated subqueries — see DESIGN.md §6).

/// One benchmark query.
#[derive(Debug, Clone, Copy)]
pub struct Query {
    /// TPC-H-style name (`Q1`, `Q11`, …).
    pub name: &'static str,
    /// The SQL text in this engine's dialect.
    pub sql: &'static str,
    /// What the query exercises.
    pub description: &'static str,
}

/// The full suite, in execution order.
pub const QUERIES: &[Query] = &[
    Query {
        name: "Q1",
        description: "pricing summary report: single-table scan, 8 aggregates, GROUP BY",
        sql: "SELECT l_returnflag, l_linestatus, \
                     SUM(l_quantity) AS sum_qty, \
                     SUM(l_extendedprice) AS sum_base_price, \
                     SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                     SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
                     AVG(l_quantity) AS avg_qty, \
                     AVG(l_extendedprice) AS avg_price, \
                     AVG(l_discount) AS avg_disc, \
                     COUNT(*) AS count_order \
              FROM lineitem \
              WHERE l_shipdate <= DATE '1998-09-02' \
              GROUP BY l_returnflag, l_linestatus \
              ORDER BY l_returnflag, l_linestatus",
    },
    Query {
        name: "Q3",
        description: "shipping priority: 3-way join, selective date predicates, TOP 10",
        sql: "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                     o_orderdate, o_shippriority \
              FROM customer, orders, lineitem \
              WHERE c_mktsegment = 'BUILDING' \
                AND c_custkey = o_custkey \
                AND l_orderkey = o_orderkey \
                AND o_orderdate < DATE '1995-03-15' \
                AND l_shipdate > DATE '1995-03-15' \
              GROUP BY l_orderkey, o_orderdate, o_shippriority \
              ORDER BY revenue DESC, o_orderdate \
              LIMIT 10",
    },
    Query {
        name: "Q5",
        description: "local supplier volume: 6-way join, GROUP BY nation",
        sql: "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM customer, orders, lineitem, supplier, nation, region \
              WHERE c_custkey = o_custkey \
                AND l_orderkey = o_orderkey \
                AND l_suppkey = s_suppkey \
                AND c_nationkey = s_nationkey \
                AND s_nationkey = n_nationkey \
                AND n_regionkey = r_regionkey \
                AND r_name = 'ASIA' \
                AND o_orderdate >= DATE '1994-01-01' \
                AND o_orderdate < DATE '1995-01-01' \
              GROUP BY n_name \
              ORDER BY revenue DESC",
    },
    Query {
        name: "Q6",
        description: "forecast revenue change: single-table, BETWEEN predicates, one aggregate",
        sql: "SELECT SUM(l_extendedprice * l_discount) AS revenue \
              FROM lineitem \
              WHERE l_shipdate >= DATE '1994-01-01' \
                AND l_shipdate < DATE '1995-01-01' \
                AND l_discount BETWEEN 0.05 AND 0.07 \
                AND l_quantity < 24",
    },
    Query {
        name: "Q10",
        description: "returned-item reporting: 4-way join, GROUP BY customer, TOP 20",
        sql: "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                     c_acctbal, n_name \
              FROM customer, orders, lineitem, nation \
              WHERE c_custkey = o_custkey \
                AND l_orderkey = o_orderkey \
                AND o_orderdate >= DATE '1993-10-01' \
                AND o_orderdate < DATE '1994-01-01' \
                AND l_returnflag = 'R' \
                AND c_nationkey = n_nationkey \
              GROUP BY c_custkey, c_name, c_acctbal, n_name \
              ORDER BY revenue DESC \
              LIMIT 20",
    },
    Query {
        name: "Q11",
        description: "important stock identification: 3-way join, GROUP BY part (the paper's recovery-experiment query)",
        sql: "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value \
              FROM partsupp, supplier, nation \
              WHERE ps_suppkey = s_suppkey \
                AND s_nationkey = n_nationkey \
                AND n_name = 'GERMANY' \
              GROUP BY ps_partkey \
              ORDER BY value DESC",
    },
    Query {
        name: "Q12",
        description: "shipping modes: join + CASE aggregation over priorities, IN predicate",
        sql: "SELECT l_shipmode, \
                     SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, \
                     SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count \
              FROM orders, lineitem \
              WHERE o_orderkey = l_orderkey \
                AND l_shipmode IN ('MAIL', 'SHIP') \
                AND l_shipdate >= DATE '1994-01-01' \
                AND l_shipdate < DATE '1995-01-01' \
              GROUP BY l_shipmode \
              ORDER BY l_shipmode",
    },
    Query {
        name: "Q14",
        description: "promotion effect: join + CASE/LIKE ratio aggregate",
        sql: "SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
              FROM lineitem, part \
              WHERE l_partkey = p_partkey \
                AND l_shipdate >= DATE '1995-09-01' \
                AND l_shipdate < DATE '1995-10-01'",
    },
    Query {
        name: "Q16",
        description: "parts/supplier relationship: COUNT(DISTINCT), NOT LIKE, IN (paper Table 1 row)",
        sql: "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
              FROM partsupp, part \
              WHERE p_partkey = ps_partkey \
                AND p_brand <> 'Brand#45' \
                AND p_type NOT LIKE 'MEDIUM POLISHED%' \
                AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
              GROUP BY p_brand, p_type, p_size \
              ORDER BY supplier_cnt DESC, p_brand, p_type, p_size",
    },
    Query {
        name: "Q19",
        description: "discounted revenue: join with OR-of-ANDs predicate block",
        sql: "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM lineitem, part \
              WHERE p_partkey = l_partkey \
                AND ((p_container = 'SM CASE' AND l_quantity BETWEEN 1 AND 11) \
                  OR (p_container = 'MED BOX' AND l_quantity BETWEEN 10 AND 20) \
                  OR (p_container = 'LG BOX' AND l_quantity BETWEEN 20 AND 30)) \
                AND l_shipmode IN ('AIR', 'REG AIR')",
    },
];

/// Look a query up by name.
pub fn by_name(name: &str) -> Option<&'static Query> {
    QUERIES.iter().find(|q| q.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        for q in QUERIES {
            phoenix_sql::parse_statement(q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.name));
        }
    }

    #[test]
    fn lookup() {
        assert!(by_name("q11").is_some());
        assert!(by_name("Q1").is_some());
        assert!(by_name("q99").is_none());
    }

    #[test]
    fn suite_covers_operator_mix() {
        let all: String = QUERIES.iter().map(|q| q.sql).collect();
        for token in [
            "GROUP BY", "ORDER BY", "CASE", "LIKE", "BETWEEN", "IN (", "DISTINCT", "LIMIT",
        ] {
            assert!(all.contains(token), "suite missing {token}");
        }
        // At least one 6-way join (Q5).
        assert!(QUERIES.iter().any(|q| q.sql.matches(',').count() > 10));
    }
}
