#![warn(missing_docs)]

//! # phoenix-tpch
//!
//! A deterministic, scaled-down TPC-H-style workload for the Phoenix
//! evaluation — the stand-in for the TPC-H database and *power test* the
//! paper measures (§4).
//!
//! * [`schema`] — the eight TPC-H tables (REGION, NATION, SUPPLIER, PART,
//!   PARTSUPP, CUSTOMER, ORDERS, LINEITEM) in the engine's dialect.
//! * [`gen`] — seeded data generation at a configurable scale factor, plus
//!   the refresh-function staging data (new orders/lineitems preloaded into
//!   staging tables, deletion key ranges — exactly the setup the paper
//!   describes: "the tuples corresponding to new orders and new lineitems
//!   were already loaded into the database, as were the keys …").
//! * [`queries`] — a query suite in the supported dialect preserving the
//!   TPC-H operator mix (single-table aggregation through six-way joins,
//!   CASE/LIKE/BETWEEN/IN predicates, COUNT(DISTINCT …)).
//! * [`refresh`] — RF1 (insert) and RF2 (delete), each decomposed into two
//!   transactions covering half the key range, each submitting the paper's
//!   four insert/delete requests total.
//! * [`power`] — the power-test runner: every query and refresh function
//!   executed one at a time and timed individually, over any executor (the
//!   native driver or Phoenix), with mean/stddev across repetitions.

pub mod gen;
pub mod power;
pub mod queries;
pub mod refresh;
pub mod schema;

pub use gen::{Tpch, TpchConfig};
pub use power::{PowerReport, PowerRow, SqlExecutor};
