//! Refresh functions RF1 (insert) and RF2 (delete).
//!
//! Per the paper's setup: the new orders/lineitems are *already loaded* into
//! staging tables and the deletion keys are known, so each refresh function
//! is decomposed into **two transactions, each receiving one half of the key
//! range**, and the two transactions together submit **four requests** —
//! `INSERT INTO orders SELECT …` + `INSERT INTO lineitem SELECT …` per half
//! for RF1, and the two corresponding DELETEs per half for RF2.
//!
//! Statements are issued individually (autocommit), so a Phoenix session
//! wraps each one in its status-recording transaction — the exact overhead
//! the paper measures for update functions.

/// The four RF1 statements, in submission order (two per half-range).
pub fn rf1(lo: i64, hi: i64) -> Vec<String> {
    let mid = lo + (hi - lo) / 2;
    let mut out = Vec::with_capacity(4);
    for (a, b) in [(lo, mid), (mid + 1, hi)] {
        out.push(format!(
            "INSERT INTO orders SELECT * FROM rf_orders_new WHERE o_orderkey BETWEEN {a} AND {b}"
        ));
        out.push(format!(
            "INSERT INTO lineitem SELECT * FROM rf_lineitem_new WHERE l_orderkey BETWEEN {a} AND {b}"
        ));
    }
    out
}

/// The four RF2 statements (deletes of the same key ranges).
pub fn rf2(lo: i64, hi: i64) -> Vec<String> {
    let mid = lo + (hi - lo) / 2;
    let mut out = Vec::with_capacity(4);
    for (a, b) in [(lo, mid), (mid + 1, hi)] {
        out.push(format!(
            "DELETE FROM lineitem WHERE l_orderkey BETWEEN {a} AND {b}"
        ));
        out.push(format!(
            "DELETE FROM orders WHERE o_orderkey BETWEEN {a} AND {b}"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_statements_each() {
        assert_eq!(rf1(101, 200).len(), 4);
        assert_eq!(rf2(101, 200).len(), 4);
    }

    #[test]
    fn halves_cover_range_exactly() {
        let stmts = rf1(101, 200);
        assert!(stmts[0].contains("BETWEEN 101 AND 150"));
        assert!(stmts[2].contains("BETWEEN 151 AND 200"));
    }

    #[test]
    fn all_parse() {
        for sql in rf1(1, 10).into_iter().chain(rf2(1, 10)) {
            phoenix_sql::parse_statement(&sql).unwrap();
        }
    }

    #[test]
    fn rf2_reverses_rf1_tables() {
        // RF2 deletes lineitems before their orders (referential hygiene).
        let stmts = rf2(1, 10);
        assert!(stmts[0].contains("lineitem"));
        assert!(stmts[1].contains("orders"));
    }
}
