//! The TPC-H-style schema in the engine's dialect.
//!
//! Column names follow TPC-H; types map to the engine's type system
//! (DECIMAL → FLOAT, VARCHAR/CHAR → TEXT, DATE stays DATE).

/// DDL for all base tables, in creation order.
pub fn ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE region (r_regionkey INT NOT NULL, r_name TEXT, r_comment TEXT, PRIMARY KEY (r_regionkey))",
        "CREATE TABLE nation (n_nationkey INT NOT NULL, n_name TEXT, n_regionkey INT, n_comment TEXT, PRIMARY KEY (n_nationkey))",
        "CREATE TABLE supplier (s_suppkey INT NOT NULL, s_name TEXT, s_nationkey INT, s_acctbal FLOAT, PRIMARY KEY (s_suppkey))",
        "CREATE TABLE part (p_partkey INT NOT NULL, p_name TEXT, p_mfgr TEXT, p_brand TEXT, p_type TEXT, p_size INT, p_container TEXT, p_retailprice FLOAT, PRIMARY KEY (p_partkey))",
        "CREATE TABLE partsupp (ps_partkey INT NOT NULL, ps_suppkey INT NOT NULL, ps_availqty INT, ps_supplycost FLOAT, PRIMARY KEY (ps_partkey, ps_suppkey))",
        "CREATE TABLE customer (c_custkey INT NOT NULL, c_name TEXT, c_nationkey INT, c_acctbal FLOAT, c_mktsegment TEXT, PRIMARY KEY (c_custkey))",
        "CREATE TABLE orders (o_orderkey INT NOT NULL, o_custkey INT, o_orderstatus TEXT, o_totalprice FLOAT, o_orderdate DATE, o_orderpriority TEXT, o_shippriority INT, PRIMARY KEY (o_orderkey))",
        "CREATE TABLE lineitem (l_orderkey INT NOT NULL, l_linenumber INT NOT NULL, l_partkey INT, l_suppkey INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag TEXT, l_linestatus TEXT, l_shipdate DATE, l_shipmode TEXT, PRIMARY KEY (l_orderkey, l_linenumber))",
    ]
}

/// DDL for the refresh-function staging tables (pre-loaded new rows and
/// deletion key lists, per the paper's experimental setup).
pub fn staging_ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE rf_orders_new (o_orderkey INT NOT NULL, o_custkey INT, o_orderstatus TEXT, o_totalprice FLOAT, o_orderdate DATE, o_orderpriority TEXT, o_shippriority INT, PRIMARY KEY (o_orderkey))",
        "CREATE TABLE rf_lineitem_new (l_orderkey INT NOT NULL, l_linenumber INT NOT NULL, l_partkey INT, l_suppkey INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag TEXT, l_linestatus TEXT, l_shipdate DATE, l_shipmode TEXT, PRIMARY KEY (l_orderkey, l_linenumber))",
    ]
}

/// Names of every table this workload creates.
pub fn all_tables() -> Vec<&'static str> {
    vec![
        "region",
        "nation",
        "supplier",
        "part",
        "partsupp",
        "customer",
        "orders",
        "lineitem",
        "rf_orders_new",
        "rf_lineitem_new",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ddl_parses() {
        for sql in ddl().into_iter().chain(staging_ddl()) {
            phoenix_sql::parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }
}
