//! The TPC-H power test (paper §4).
//!
//! "The TPC-H power test executes all queries and update functions defined
//! in the benchmark one at a time in order and their running time is
//! measured individually." The runner is generic over [`SqlExecutor`], so
//! the same code measures the native driver and Phoenix — the comparison
//! that produces the paper's Table 1.

use std::time::Instant;

use crate::gen::Tpch;
use crate::queries::QUERIES;
use crate::refresh::{rf1, rf2};

/// Anything that can execute SQL and report how many rows came back or were
/// affected. Implemented for the native driver connection and for
/// [`phoenix_core::PhoenixConnection`] by the benchmark harness.
pub trait SqlExecutor {
    /// Execute `sql`, returning rows returned/affected or an error string.
    fn exec_sql(&mut self, sql: &str) -> Result<u64, String>;
}

impl SqlExecutor for phoenix_driver::Connection {
    fn exec_sql(&mut self, sql: &str) -> Result<u64, String> {
        let r = self.execute(sql).map_err(|e| e.to_string())?;
        Ok(match &r.outcome {
            phoenix_wire::message::Outcome::ResultSet { rows, .. } => rows.len() as u64,
            phoenix_wire::message::Outcome::RowsAffected(n) => *n,
            phoenix_wire::message::Outcome::Done => 0,
        })
    }
}

impl SqlExecutor for phoenix_core::PhoenixConnection {
    fn exec_sql(&mut self, sql: &str) -> Result<u64, String> {
        let r = self.execute(sql).map_err(|e| e.to_string())?;
        Ok(match &r.outcome {
            phoenix_wire::message::Outcome::ResultSet { rows, .. } => rows.len() as u64,
            phoenix_wire::message::Outcome::RowsAffected(n) => *n,
            phoenix_wire::message::Outcome::Done => 0,
        })
    }
}

/// One measured row of the power test.
#[derive(Debug, Clone)]
pub struct PowerRow {
    /// Query or refresh-function name.
    pub name: String,
    /// Rows returned (queries) or modified (refresh functions), from the
    /// last repetition.
    pub rows: u64,
    /// Mean elapsed seconds across repetitions.
    pub seconds_mean: f64,
    /// Sample standard deviation.
    pub seconds_std: f64,
    /// Is this a refresh function (vs. a query)?
    pub is_update: bool,
}

/// A complete power-test report.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// Per-item results, in execution order.
    pub rows: Vec<PowerRow>,
    /// Sum of query means (the paper's "Total Query" row).
    pub total_query_seconds: f64,
    /// Sum of refresh-function means ("Total Updates").
    pub total_update_seconds: f64,
}

impl PowerReport {
    /// Look an item up by name.
    pub fn row(&self, name: &str) -> Option<&PowerRow> {
        self.rows.iter().find(|r| r.name.eq_ignore_ascii_case(name))
    }
}

fn mean_std(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Run the power test `iterations` times and report per-item mean/stddev.
///
/// Each iteration runs every query in order, then RF1, then RF2 — RF2
/// removes exactly the rows RF1 added, so the database is in the same state
/// at the start of every iteration (and for every executor).
pub fn run_power_test(
    exec: &mut dyn SqlExecutor,
    workload: &Tpch,
    iterations: usize,
) -> Result<PowerReport, String> {
    let (lo, hi) = workload.refresh_key_range();
    let items: Vec<(String, Vec<String>, bool)> = QUERIES
        .iter()
        .map(|q| (q.name.to_string(), vec![q.sql.to_string()], false))
        .chain([
            ("RF1".to_string(), rf1(lo, hi), true),
            ("RF2".to_string(), rf2(lo, hi), true),
        ])
        .collect();

    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(iterations); items.len()];
    let mut rows: Vec<u64> = vec![0; items.len()];

    for _ in 0..iterations {
        for (i, (name, stmts, _)) in items.iter().enumerate() {
            let start = Instant::now();
            let mut item_rows = 0;
            for sql in stmts {
                item_rows += exec.exec_sql(sql).map_err(|e| format!("{name}: {e}"))?;
            }
            samples[i].push(start.elapsed().as_secs_f64());
            rows[i] = item_rows;
        }
    }

    let mut report_rows = Vec::with_capacity(items.len());
    let mut total_query = 0.0;
    let mut total_update = 0.0;
    for (i, (name, _, is_update)) in items.iter().enumerate() {
        let (mean, std) = mean_std(&samples[i]);
        if *is_update {
            total_update += mean;
        } else {
            total_query += mean;
        }
        report_rows.push(PowerRow {
            name: name.clone(),
            rows: rows[i],
            seconds_mean: mean,
            seconds_std: std,
            is_update: *is_update,
        });
    }

    Ok(PowerReport {
        rows: report_rows,
        total_query_seconds: total_query,
        total_update_seconds: total_update,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        let (m, s) = mean_std(&[3.0]);
        assert_eq!((m, s), (3.0, 0.0));
    }
}
