//! Session lifecycle over the wire: spill → transparent restore across
//! client requests, `max_sessions` eviction surfacing the retryable driver
//! error, and retention purge through the cleanup job.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_driver::{DriverError, Environment};
use phoenix_engine::EngineConfig;
use phoenix_sessiond::{IoModel, LifecycleConfig, ServerConfig, SessiondHarness};
use phoenix_storage::types::Value;
use phoenix_wire::message::{CursorKind, FetchDir};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "phoenix-sessiond-lifecycle-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn start(lifecycle: LifecycleConfig) -> (SessiondHarness, PathBuf) {
    let dir = temp_dir();
    let config = ServerConfig {
        io: IoModel::Reactor { shards: 1 },
        lifecycle,
    };
    let h = SessiondHarness::start(&dir, EngineConfig::default(), config).unwrap();
    (h, dir)
}

#[test]
fn idle_spill_then_transparent_restore_preserves_session_state() {
    let (h, dir) = start(LifecycleConfig {
        idle_spill_after: Some(Duration::from_millis(40)),
        retention: Some(Duration::from_secs(3600)),
        ..LifecycleConfig::default()
    });
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.execute("CREATE TABLE orders (k INT PRIMARY KEY, v INT)")
        .unwrap();
    conn.execute("INSERT INTO orders VALUES (1,10),(2,20),(3,30),(4,40)")
        .unwrap();
    conn.execute("SET app_name 'storm'").unwrap();
    conn.execute("CREATE TABLE #scratch (v INT PRIMARY KEY)")
        .unwrap();
    conn.execute("INSERT INTO #scratch VALUES (1),(2),(3)")
        .unwrap();
    let (cur, _, _) = conn
        .open_cursor_raw("SELECT k FROM orders ORDER BY k", CursorKind::Keyset)
        .unwrap();
    let (rows, _) = conn.fetch_cursor_raw(cur, FetchDir::Next, 2).unwrap();
    assert_eq!(rows.len(), 2);

    // Go idle past the threshold, then run the cleanup job's tick.
    std::thread::sleep(Duration::from_millis(80));
    let (spilled, _, _) = h.cleanup_now().unwrap();
    assert_eq!(spilled, 1, "the idle session spilled");
    assert_eq!(h.with_engine(|e| e.session_count()), Some(0));
    assert_eq!(h.with_engine(|e| e.spilled_session_count()), Some(1));

    // The *same* driver connection keeps working: the next request
    // transparently restores the session from the durable table —
    // options, temp tables, and the cursor's exact position included.
    let r = conn.execute("SELECT COUNT(*) FROM #scratch").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(3));
    let (rows, at_end) = conn.fetch_cursor_raw(cur, FetchDir::Next, 5).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
    assert!(at_end);
    assert_eq!(h.with_engine(|e| e.spilled_session_count()), Some(0));
    conn.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn eviction_past_max_sessions_surfaces_retryable_driver_error() {
    let (h, dir) = start(LifecycleConfig {
        max_sessions: Some(1),
        ..LifecycleConfig::default()
    });
    let env = Environment::new();
    let mut pinned = env.connect(&h.addr(), "app", "db").unwrap();
    pinned.execute("CREATE TABLE t (v INT)").unwrap();
    // An open transaction pins the session: it cannot be spilled to make
    // room, so the next login must be refused.
    pinned.execute("BEGIN").unwrap();

    let err = match env.connect(&h.addr(), "other", "db") {
        Err(e) => e,
        Ok(_) => panic!("login past the cap must be refused"),
    };
    match &err {
        DriverError::Sql { code, .. } => {
            assert_eq!(*code, phoenix_driver::error::codes::BUSY)
        }
        other => panic!("expected Busy at login, got {other:?}"),
    }
    assert!(err.is_retryable(), "cap refusal must be retryable");

    // Release the pin: the next login spills the idle session instead.
    pinned.execute("COMMIT").unwrap();
    let mut second = env.connect(&h.addr(), "other", "db").unwrap();
    assert_eq!(h.with_engine(|e| e.session_count()), Some(1));
    assert_eq!(h.with_engine(|e| e.spilled_session_count()), Some(1));
    // And the evicted session still works — restore swaps it back in (the
    // newcomer is younger, so the cap spills LRU on demand).
    let r = pinned.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(0));
    second.execute("SELECT 1").unwrap();
    pinned.close();
    second.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn cleanup_job_honors_retention_window() {
    let (h, dir) = start(LifecycleConfig {
        idle_spill_after: Some(Duration::from_millis(10)),
        // Zero retention: every spill row is already expired.
        retention: Some(Duration::ZERO),
        ..LifecycleConfig::default()
    });
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.execute("SET x 1").unwrap();
    std::thread::sleep(Duration::from_millis(40));

    // One tick spills the idle session AND purges the expired row (the
    // purge runs after the spill within a tick, and the window is zero).
    let (spilled, purged, _) = h.cleanup_now().unwrap();
    assert_eq!(spilled, 1);
    assert_eq!(purged, 1);
    assert_eq!(h.with_engine(|e| e.spilled_session_count()), Some(0));

    // The session is gone for good: the driver sees NoSession.
    let err = conn.execute("SELECT 1").unwrap_err();
    match err {
        DriverError::Sql { code, .. } => {
            assert_eq!(code, phoenix_driver::error::codes::NO_SESSION)
        }
        other => panic!("expected NoSession, got {other:?}"),
    }
    drop(conn);
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn background_cleanup_job_ticks_on_its_own() {
    let (h, dir) = start(LifecycleConfig {
        idle_spill_after: Some(Duration::from_millis(30)),
        cleanup_interval: Some(Duration::from_millis(50)),
        ..LifecycleConfig::default()
    });
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.execute("SET x 1").unwrap();
    // Idle long enough for the background job to spill us.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    loop {
        if h.with_engine(|e| e.spilled_session_count()) == Some(1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background job never spilled the idle session"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Still transparently restorable.
    let r = conn.execute("SELECT 1").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));
    conn.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn spilled_sessions_die_with_a_crash_but_rows_are_reaped() {
    let (mut h, dir) = start(LifecycleConfig {
        idle_spill_after: Some(Duration::from_millis(10)),
        retention: Some(Duration::ZERO),
        ..LifecycleConfig::default()
    });
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.execute("SET x 1").unwrap();
    std::thread::sleep(Duration::from_millis(40));
    h.with_engine(|e| e.spill_idle_sessions(Duration::from_millis(10)));
    assert_eq!(h.with_engine(|e| e.spilled_session_count()), Some(1));

    h.crash().unwrap();
    h.restart().unwrap();

    // The committed spill row replayed, but the new incarnation fences it:
    // it can never be restored, only reaped.
    assert_eq!(h.with_engine(|e| e.spilled_session_count()), Some(0));
    let (_, purged, _) = h.cleanup_now().unwrap();
    assert_eq!(purged, 1, "stranded spill row reaped by retention");
    drop(conn);
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}
