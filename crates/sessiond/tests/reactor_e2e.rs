//! End-to-end tests of the sharded reactor front-end: both protocol
//! versions, concurrency, admission control, malformed input, and the
//! crash/restart fault model. On non-Linux hosts `IoModel::Reactor`
//! degrades to the threaded backend and these tests exercise that instead —
//! the wire contract is identical by construction.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_driver::{DriverError, Environment};
use phoenix_engine::EngineConfig;
use phoenix_sessiond::{IoModel, LifecycleConfig, ServerConfig, SessiondHarness};
use phoenix_storage::types::Value;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{CursorKind, FetchDir, Request, Response, PROTOCOL_V1};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-sessiond-test-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn reactor_config(shards: usize) -> ServerConfig {
    ServerConfig {
        io: IoModel::Reactor { shards },
        lifecycle: LifecycleConfig::default(),
    }
}

fn start(shards: usize) -> (SessiondHarness, PathBuf) {
    let dir = temp_dir();
    let h = SessiondHarness::start(&dir, EngineConfig::default(), reactor_config(shards)).unwrap();
    (h, dir)
}

#[test]
fn v1_round_trip_over_reactor() {
    let (h, dir) = start(2);
    #[cfg(target_os = "linux")]
    assert_eq!(h.io_model(), Some("reactor"));
    let env = Environment::new().with_protocol(PROTOCOL_V1);
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.execute("CREATE TABLE t (v INT)").unwrap();
    let r = conn.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    assert_eq!(r.affected(), 3);
    let r = conn.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(3));
    conn.ping().unwrap();
    conn.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn v2_pipeline_batch_and_cursor_over_reactor() {
    let (h, dir) = start(2);
    let env = Environment::new(); // defaults to v2 negotiation
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    assert_eq!(conn.protocol(), phoenix_wire::message::PROTOCOL_V2);

    conn.execute("CREATE TABLE seq (k INT PRIMARY KEY, v INT)")
        .unwrap();
    let items = conn
        .execute_batch(&[
            "INSERT INTO seq VALUES (1, 10)".into(),
            "INSERT INTO seq VALUES (2, 20)".into(),
            "INSERT INTO seq VALUES (3, 30)".into(),
        ])
        .unwrap();
    assert_eq!(items.len(), 3);

    // No ORDER BY: keyset grants require a plain keyed scan (PK order).
    let (cur, _, granted) = conn
        .open_cursor_raw("SELECT k FROM seq", CursorKind::Keyset)
        .unwrap();
    assert_eq!(granted, CursorKind::Keyset);
    let (rows, _) = conn.fetch_cursor_raw(cur, FetchDir::Next, 2).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    let (rows, at_end) = conn.fetch_cursor_raw(cur, FetchDir::Next, 5).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(3)]]);
    assert!(at_end);
    conn.close_cursor_raw(cur).unwrap();
    conn.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn many_concurrent_connections_across_shards() {
    let (h, dir) = start(4);
    let env = Environment::new();
    let mut setup = env.connect(&h.addr(), "app", "db").unwrap();
    setup
        .execute("CREATE TABLE hits (w INT PRIMARY KEY, n INT)")
        .unwrap();
    setup.close();

    const WORKERS: usize = 24;
    let addr = h.addr();
    let threads: Vec<_> = (0..WORKERS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let env = Environment::new();
                let mut conn = env.connect(&addr, "app", "db").unwrap();
                conn.execute(&format!("INSERT INTO hits VALUES ({w}, 0)"))
                    .unwrap();
                for _ in 0..20 {
                    conn.execute(&format!("UPDATE hits SET n = n + 1 WHERE w = {w}"))
                        .unwrap();
                }
                // Session isolation: each worker's temp table is its own.
                conn.execute("CREATE TABLE #mine (v INT)").unwrap();
                conn.execute("INSERT INTO #mine VALUES (1)").unwrap();
                let r = conn.execute("SELECT COUNT(*) FROM #mine").unwrap();
                assert_eq!(r.rows()[0][0], Value::Int(1));
                conn.close();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut check = env.connect(&h.addr(), "app", "db").unwrap();
    let r = check.execute("SELECT COUNT(*), SUM(n) FROM hits").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(WORKERS as i64));
    assert_eq!(r.rows()[0][1], Value::Int((WORKERS * 20) as i64));
    check.close();
    // Every worker logged out; only the checker's connection came and went.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(h.connection_count(), Some(0));
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn malformed_request_gets_error_reply_and_connection_survives() {
    let (h, dir) = start(1);
    let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    // A well-formed frame whose payload is garbage.
    write_frame(&mut s, &[0xFF, 0xEE, 0xDD]).unwrap();
    match Response::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::Err { code, .. } => {
            assert_eq!(code, phoenix_engine::ErrorCode::Parse as u16)
        }
        other => panic!("{other:?}"),
    }
    // The stream is still in sync: a valid Ping works.
    write_frame(&mut s, &Request::Ping.encode()).unwrap();
    match Response::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::Pong => {}
        other => panic!("{other:?}"),
    }
    drop(s);
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

/// Regression: bytes a client pipelines *behind* its LoginV2 in the same
/// write are already sitting in the shard's read buffer when parsing pauses
/// for the negotiation. Level-triggered epoll never re-announces buffered
/// bytes, so the shard must explicitly re-parse once the login completes —
/// otherwise the tagged request below hangs forever.
#[test]
fn bytes_pipelined_behind_login_v2_are_parsed_after_upgrade() {
    use phoenix_wire::message::{DEFAULT_WINDOW, PROTOCOL_V2};
    use std::io::Write as _;
    let (h, dir) = start(1);
    let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // One write: the untagged LoginV2 frame with a tagged Ping pipelined
    // directly behind it.
    let login = Request::LoginV2 {
        user: "app".into(),
        database: "db".into(),
        options: Vec::new(),
        protocol: PROTOCOL_V2,
        window: DEFAULT_WINDOW,
    };
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &login.encode()).unwrap();
    let mut tagged = 7u64.to_le_bytes().to_vec();
    tagged.extend_from_slice(&Request::Ping.encode());
    write_frame(&mut bytes, &tagged).unwrap();
    s.write_all(&bytes).unwrap();

    // First reply: the still-untagged v2 ack.
    match Response::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::LoginAckV2 { protocol, .. } => assert_eq!(protocol, PROTOCOL_V2),
        other => panic!("{other:?}"),
    }
    // Second reply: the tagged Pong. Without the post-upgrade re-parse the
    // pipelined frame is never dequeued and this read times out.
    let reply = read_frame(&mut s).unwrap();
    assert_eq!(u64::from_le_bytes(reply[..8].try_into().unwrap()), 7);
    match Response::decode(&reply[8..]).unwrap() {
        Response::Pong => {}
        other => panic!("{other:?}"),
    }
    drop(s);
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

/// Regression: shard-synthesized replies (parse errors, admission Busy) must
/// not overtake replies for earlier requests still in the executor — a v1
/// client matches responses to requests purely by order.
#[test]
fn synthesized_reply_does_not_overtake_earlier_request_v1() {
    use std::io::Write as _;
    let (h, dir) = start(1);
    let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let login = Request::Login {
        user: "app".into(),
        database: "db".into(),
        options: Vec::new(),
    };
    write_frame(&mut s, &login.encode()).unwrap();
    match Response::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::LoginAck { .. } => {}
        other => panic!("{other:?}"),
    }

    // One write: a valid fsync-backed DDL followed by a malformed frame.
    // The parse error is synthesized on the event loop while the DDL is
    // still in the executor; it must queue behind it, not jump ahead.
    let mut bytes = Vec::new();
    write_frame(
        &mut bytes,
        &Request::Exec {
            sql: "CREATE TABLE ord (v INT)".into(),
        }
        .encode(),
    )
    .unwrap();
    write_frame(&mut bytes, &[0xFF, 0xEE, 0xDD]).unwrap();
    s.write_all(&bytes).unwrap();

    if let Response::Err { code, message } = Response::decode(&read_frame(&mut s).unwrap()).unwrap()
    {
        panic!("first reply must be the DDL's, got Err {code}: {message}")
    }
    match Response::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::Err { code, .. } => {
            assert_eq!(code, phoenix_engine::ErrorCode::Parse as u16)
        }
        other => panic!("second reply must be the parse error, got {other:?}"),
    }
    drop(s);
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn admission_control_answers_retryable_busy_when_queue_full() {
    let dir = temp_dir();
    let config = ServerConfig {
        io: IoModel::Reactor { shards: 1 },
        lifecycle: LifecycleConfig {
            queue_depth: 1,
            ..LifecycleConfig::default()
        },
    };
    let h = SessiondHarness::start(&dir, EngineConfig::default(), config).unwrap();
    let env = Environment::new().with_read_timeout(Some(Duration::from_secs(5)));
    let mut a = env.connect(&h.addr(), "app", "db").unwrap();
    let mut b = env.connect(&h.addr(), "app", "db").unwrap();

    // Park the executor: the engine stalls, so connection A's request
    // occupies the single queue slot for the whole stall window.
    h.stall(Duration::from_millis(700));

    let a_thread = std::thread::spawn(move || {
        let r = a.execute("SELECT 1").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(1));
        a.close();
    });
    // Give A's request time to reach the executor queue.
    std::thread::sleep(Duration::from_millis(150));
    let err = b.execute("SELECT 1").unwrap_err();
    match &err {
        DriverError::Sql { code, .. } => {
            assert_eq!(*code, phoenix_driver::error::codes::BUSY)
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(err.is_retryable(), "admission Busy must be retryable");
    a_thread.join().unwrap();

    // After the stall drains, the same connection B works again — push-back
    // is per-request, not a poisoned connection.
    let r = b.execute("SELECT 1").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));
    b.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn crash_severs_and_restart_recovers_durable_state() {
    let (mut h, dir) = start(2);
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.execute("CREATE TABLE t (v INT)").unwrap();
    match conn.execute("INSERT INTO t VALUES (7)").unwrap().affected() {
        1 => {}
        n => panic!("affected {n}"),
    }
    conn.execute("CREATE TABLE #tmp (v INT)").unwrap();

    h.crash().unwrap();
    // The old connection is dead: the next call fails with a Comm error.
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_comm(), "severed socket must surface as Comm: {err}");

    h.restart().unwrap();
    let mut conn2 = env.connect(&h.addr(), "app", "db").unwrap();
    let r = conn2.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1), "durable row survived");
    let err = conn2.execute("SELECT * FROM #tmp").unwrap_err();
    assert!(
        matches!(err, DriverError::Sql { .. }),
        "temp table died with the crash: {err}"
    );
    conn2.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn logout_closes_session_and_disconnect_without_logout_also_does() {
    let (h, dir) = start(1);
    let env = Environment::new();
    // Clean logout.
    let conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.close();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(h.with_engine(|e| e.session_count()), Some(0));
    // Vanishing client: the reactor sees EOF and closes the session.
    {
        let mut c = env.connect(&h.addr(), "app", "db").unwrap();
        c.execute("CREATE TABLE #gone (v INT)").unwrap();
        // drop without logout
    }
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(h.with_engine(|e| e.session_count()), Some(0));
    assert_eq!(h.connection_count(), Some(0));
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn fetch_dir_and_outcome_shapes_match_threaded_server() {
    // The reactor shares dispatch with the threaded server; spot-check a
    // response shape that exercises the Outcome enum over the wire.
    let (h, dir) = start(1);
    let env = Environment::new().with_protocol(PROTOCOL_V1);
    let mut conn = env.connect(&h.addr(), "app", "db").unwrap();
    conn.execute("CREATE TABLE o (v INT)").unwrap();
    let r = conn.execute("INSERT INTO o VALUES (1)").unwrap();
    assert_eq!(r.affected(), 1);
    let q = conn.execute("SELECT * FROM o WHERE 0 = 1").unwrap();
    assert!(q.rows().is_empty());
    assert!(q.schema().is_some());
    match conn.execute("SELECT nonsense FROM nothing") {
        Err(DriverError::Sql { .. }) => {}
        other => panic!("{other:?}"),
    }
    conn.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}
