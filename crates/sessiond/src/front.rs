//! The sessiond front-end: one type over both I/O backends.
//!
//! [`SessiondServer`] wraps either the portable thread-per-connection
//! server (`phoenix_server::RunningServer`) or the Linux sharded epoll
//! [`crate::reactor::Reactor`], selected by [`IoModel`]. On non-Linux
//! platforms `IoModel::Reactor` silently degrades to the threaded backend —
//! same wire behaviour, different scalability envelope.

use std::io;
use std::sync::Arc;

use phoenix_engine::{Engine, EngineConfig};
use phoenix_server::server::{RunningServer, SharedEngine};

use crate::config::{IoModel, LifecycleConfig, ServerConfig};
use crate::lifecycle::CleanupJob;

enum Backend {
    Threaded(RunningServer),
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::Reactor),
}

/// A running sessiond server: I/O backend + optional background cleanup.
pub struct SessiondServer {
    backend: Backend,
    cleanup: Option<CleanupJob>,
    /// The TCP port being listened on.
    pub port: u16,
    /// Resolved I/O model actually running (after platform fallback).
    pub io_model: &'static str,
    /// Shards actually running (0 for the threaded backend).
    pub shards: usize,
}

impl SessiondServer {
    /// Open the engine at `data_dir` and start serving on `port` (0 =
    /// ephemeral). `lifecycle.max_sessions` overrides the engine config's
    /// cap so there is a single knob.
    pub fn start(
        data_dir: impl AsRef<std::path::Path>,
        mut engine_config: EngineConfig,
        config: &ServerConfig,
        port: u16,
    ) -> io::Result<SessiondServer> {
        if config.lifecycle.max_sessions.is_some() {
            engine_config.max_sessions = config.lifecycle.max_sessions;
        }
        let engine = Engine::open(data_dir.as_ref(), engine_config)
            .map_err(|e| io::Error::other(e.to_string()))?;
        Self::start_with_engine(engine, config, port)
    }

    /// Start serving an already-open engine.
    pub fn start_with_engine(
        engine: Engine,
        config: &ServerConfig,
        port: u16,
    ) -> io::Result<SessiondServer> {
        let (backend, io_model, shards) = match config.io {
            IoModel::Threaded => (
                Backend::Threaded(RunningServer::start(engine, port)?),
                "threaded",
                0,
            ),
            IoModel::Reactor { .. } => {
                let n = config.io.resolved_shards();
                #[cfg(target_os = "linux")]
                {
                    (
                        Backend::Reactor(crate::reactor::Reactor::start(
                            engine,
                            port,
                            n,
                            config.lifecycle.queue_depth,
                        )?),
                        "reactor",
                        n,
                    )
                }
                #[cfg(not(target_os = "linux"))]
                {
                    let _ = n;
                    (
                        Backend::Threaded(RunningServer::start(engine, port)?),
                        "threaded",
                        0,
                    )
                }
            }
        };
        let port = match &backend {
            Backend::Threaded(s) => s.port,
            #[cfg(target_os = "linux")]
            Backend::Reactor(r) => r.port,
        };

        let mut server = SessiondServer {
            backend,
            cleanup: None,
            port,
            io_model,
            shards,
        };
        if let Some(interval) = config.lifecycle.cleanup_interval {
            server.cleanup = Some(CleanupJob::start(
                server.engine_handle(),
                config.lifecycle.clone(),
                interval,
                server.prune_fn(),
            ));
        }
        Ok(server)
    }

    /// The shared crash-switch engine handle.
    pub fn engine_handle(&self) -> SharedEngine {
        match &self.backend {
            Backend::Threaded(s) => Arc::clone(&s.engine),
            #[cfg(target_os = "linux")]
            Backend::Reactor(r) => Arc::clone(&r.engine),
        }
    }

    /// Number of live client connections currently registered.
    pub fn connection_count(&self) -> usize {
        match &self.backend {
            Backend::Threaded(s) => s.connection_count(),
            #[cfg(target_os = "linux")]
            Backend::Reactor(r) => r.connection_count(),
        }
    }

    /// Sever every client connection immediately (crash fault model).
    pub fn sever_connections(&self) {
        match &self.backend {
            Backend::Threaded(s) => s.sever_connections(),
            #[cfg(target_os = "linux")]
            Backend::Reactor(r) => r.sever_connections(),
        }
    }

    /// Reap registry entries whose peer has vanished.
    pub fn prune_dead_conns(&self) -> usize {
        match &self.backend {
            Backend::Threaded(s) => s.prune_dead_conns(),
            #[cfg(target_os = "linux")]
            Backend::Reactor(r) => r.prune_dead_conns(),
        }
    }

    /// Run one cleanup pass synchronously (tests and harnesses drive this
    /// when no background interval is configured).
    pub fn cleanup_now(&self, lifecycle: &LifecycleConfig) -> (usize, usize, usize) {
        let engine = self.engine_handle();
        crate::lifecycle::cleanup_tick(&engine, lifecycle, &|| self.prune_dead_conns())
    }

    /// Stop everything and return the engine (if not crashed away).
    pub fn stop(mut self) -> Option<Arc<Engine>> {
        if let Some(job) = self.cleanup.take() {
            job.stop();
        }
        match self.backend {
            Backend::Threaded(s) => s.stop(),
            #[cfg(target_os = "linux")]
            Backend::Reactor(r) => r.stop(),
        }
    }

    fn prune_fn(&self) -> Arc<dyn Fn() -> usize + Send + Sync> {
        // The closure must not borrow `self` (the job outlives the borrow),
        // so capture the backend's own registry-probing handle.
        match &self.backend {
            Backend::Threaded(s) => {
                let conns = s.conns_handle();
                Arc::new(move || phoenix_server::server::prune_dead(&conns))
            }
            #[cfg(target_os = "linux")]
            Backend::Reactor(r) => {
                let conns = r.conns_handle();
                Arc::new(move || crate::reactor::prune_dead(&conns))
            }
        }
    }
}
