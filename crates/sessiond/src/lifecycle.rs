//! The periodic session-lifecycle cleanup job.
//!
//! One background thread; each tick it
//!
//! 1. spills sessions idle past `idle_spill_after` (releasing their engine
//!    memory to the durable `phoenix.sessiond_spill` table),
//! 2. purges spill rows older than `retention` (including rows stranded by
//!    dead incarnations, which can never be restored),
//! 3. reaps dead client connections from the registry (the satellite fix:
//!    a *quiet* listener still notices vanished peers).
//!
//! Every pass increments `phoenix_sessiond_cleanup_runs_total` and records
//! a `server_lifecycle` journal event when it did any work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use phoenix_engine::spill::sessiond_metrics;
use phoenix_server::server::SharedEngine;

use crate::config::LifecycleConfig;

/// Handle to the running cleanup thread; stops (and joins) on drop.
pub struct CleanupJob {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// One cleanup pass over `engine` + the connection registry prober.
/// Separated from the thread so harnesses (and tests) can drive ticks
/// deterministically. Returns `(spilled, purged, pruned)`.
pub fn cleanup_tick(
    engine: &SharedEngine,
    config: &LifecycleConfig,
    prune: &(dyn Fn() -> usize + Sync),
) -> (usize, usize, usize) {
    let mut spilled = 0;
    let mut purged = 0;
    let eng = engine.read().clone();
    if let Some(eng) = eng {
        if let Some(idle) = config.idle_spill_after {
            spilled = eng.spill_idle_sessions(idle);
        }
        if let Some(retention) = config.retention {
            purged = eng.purge_spilled(retention);
        }
    }
    let pruned = prune();
    sessiond_metrics().cleanup_runs.inc();
    if spilled + purged + pruned > 0 {
        phoenix_obs::journal().record(
            "sessiond",
            phoenix_obs::EventKind::ServerLifecycle,
            format!("cleanup spilled={spilled} purged={purged} pruned={pruned}"),
        );
    }
    (spilled, purged, pruned)
}

impl CleanupJob {
    /// Start the periodic job. `prune` is the dead-connection prober for
    /// whichever backend is running.
    pub fn start(
        engine: SharedEngine,
        config: LifecycleConfig,
        interval: Duration,
        prune: Arc<dyn Fn() -> usize + Send + Sync>,
    ) -> CleanupJob {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("phx-cleanup".into())
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    // Sleep first so a short-lived server doesn't spill on
                    // startup; poll the stop flag often enough to shut down
                    // promptly even with long intervals.
                    let mut left = interval;
                    while !left.is_zero() && !stop2.load(Ordering::SeqCst) {
                        let step = left.min(Duration::from_millis(20));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    cleanup_tick(&engine, &config, &|| prune());
                }
            })
            .expect("spawn cleanup thread");
        CleanupJob {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop and join the job thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CleanupJob {
    fn drop(&mut self) {
        self.halt();
    }
}
