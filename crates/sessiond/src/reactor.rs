//! The sharded event-loop front-end.
//!
//! Topology: one nonblocking accept thread round-robins incoming sockets
//! across N shards. Each shard is a pair of threads:
//!
//! * the **event loop** owns an epoll instance and every socket assigned to
//!   the shard. It reads nonblocking, slices the byte stream into frames
//!   with the same length-prefix codec the wire crate uses, decodes
//!   requests, and hands them to its executor. It also flushes executor
//!   replies back out, honouring `EPOLLOUT` when a socket's send buffer
//!   fills.
//! * the **executor** pulls decoded requests off a FIFO channel and runs
//!   them through `phoenix_server::dispatch` — the *same* function the
//!   thread-per-connection server uses, so request semantics are identical
//!   by construction. FIFO order per shard preserves the per-connection
//!   in-order execution contract (a connection lives on exactly one shard).
//!
//! Admission control: the event loop tracks how many requests it has queued
//! toward its executor and have not yet been answered. Past
//! `queue_depth`, new requests are refused *at the socket* with the
//! retryable `Busy` error — the queue stays bounded and an overloaded
//! server degrades into fast, honest push-back instead of unbounded memory
//! growth.
//!
//! Framing subtlety: a `LoginV2` switches the connection to tagged frames,
//! but only once the server acks it. The shard therefore *pauses* parsing
//! the moment it sees a `LoginV2` and resumes — in the new framing mode on
//! success, the old on refusal — when the executor's completion comes back.
//! Bytes that arrived behind the login stay buffered; nothing is lost.

#![cfg(target_os = "linux")]

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use phoenix_engine::{Engine, ErrorCode, SessionId};
use phoenix_server::metrics::server_metrics;
use phoenix_server::server::{dispatch, login_v2, SharedEngine};
use phoenix_wire::frame::MAX_FRAME;
use phoenix_wire::message::{Request, Response};

use crate::metrics::reactor_metrics;
use crate::sys::{
    Epoll, EpollEvent, WakePipe, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Token reserved for the shard's wake pipe.
const WAKE_TOKEN: u64 = 0;

/// Hand-off queue the accept thread fills and a shard drains.
type IncomingQueue = Arc<Mutex<Vec<(u64, TcpStream)>>>;

/// Registry of live connection fds, keyed by connection id — the reactor's
/// analogue of `phoenix_server::server::ConnRegistry`, holding *raw* fds
/// instead of `try_clone`d streams: at 10k+ sessions a dup per connection
/// doubles the server's `RLIMIT_NOFILE` bill and turns the hard cap into a
/// mid-ramp EMFILE wedge. The entries are non-owning; safety comes from
/// ordering: an fd is inserted before its stream reaches a shard and
/// removed under this lock before the owning shard closes it, so a
/// registered fd always refers to the live socket (never a recycled fd).
pub type FdRegistry = Arc<Mutex<HashMap<u64, RawFd>>>;

/// Reap registry entries whose peer has vanished (the reactor's analogue
/// of `phoenix_server::server::prune_dead`). The reaped socket is also
/// shut down so the owning shard observes EOF and tears the connection
/// down through its normal close path.
pub fn prune_dead(conns: &FdRegistry) -> usize {
    let mut conns = conns.lock();
    let dead: Vec<u64> = conns
        .iter()
        .filter(|(_, fd)| crate::sys::socket_is_dead(**fd))
        .map(|(id, _)| *id)
        .collect();
    for id in &dead {
        if let Some(fd) = conns.remove(id) {
            crate::sys::shutdown_both(fd);
        }
    }
    if !dead.is_empty() {
        server_metrics().connections_reaped.add(dead.len() as u64);
    }
    dead.len()
}

/// A unit of work for a shard's executor.
enum Job {
    /// Execute one decoded request for a connection. `tag` is present iff
    /// the connection is in v2 (tagged) mode.
    Request {
        conn: u64,
        tag: Option<u64>,
        req: Request,
    },
    /// Echo a shard-synthesized reply (admission Busy, parse error) back
    /// through the completion queue. Routing these through the executor's
    /// FIFO instead of writing them straight to the socket keeps replies in
    /// request order: a v1 client matches responses to requests by position,
    /// so a Busy that jumped ahead of earlier in-flight replies would be
    /// misattributed — exactly under the load that makes Busy fire.
    Synth {
        conn: u64,
        tag: Option<u64>,
        rsp: Response,
    },
    /// The connection is gone: close its engine session.
    Close { conn: u64 },
    /// Stop the executor thread.
    Shutdown,
}

/// What the executor hands back to the event loop.
struct Completion {
    conn: u64,
    /// Fully framed reply bytes (length prefix included), ready to write.
    /// `None` means "no reply escapes" (chaos halt) — combined with
    /// `close_after` it models a crashed process going silent.
    bytes: Option<Vec<u8>>,
    /// `Some(true)`: v2 negotiation succeeded — switch framing and resume.
    /// `Some(false)`: negotiation failed — resume in v1 mode.
    upgrade: Option<bool>,
    /// Close the connection once the reply has been flushed.
    close_after: bool,
    /// Whether this completion was admission-counted in the shard's `depth`
    /// (true for executed requests, false for synthesized echoes).
    counted: bool,
}

/// Per-connection state owned by a shard's event loop.
struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes (`rpos..` is live).
    rbuf: Vec<u8>,
    rpos: usize,
    /// Pending outbound bytes (`wpos..` is live).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Tagged-frame mode (post-LoginV2).
    v2: bool,
    /// Parsing paused while a LoginV2 is in flight.
    paused: bool,
    /// Close once `wbuf` drains.
    close_after_flush: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Peer hit EOF/error while replies were still buffered: close as soon
    /// as the flush finishes or fails.
    read_dead: bool,
}

struct Shard {
    epoll: Epoll,
    wake: WakePipe,
    conns: HashMap<u64, Conn>,
    /// Sockets handed over by the accept thread.
    incoming: IncomingQueue,
    /// Replies handed back by the executor.
    completions: Arc<Mutex<VecDeque<Completion>>>,
    jobs: Sender<Job>,
    /// Requests queued toward the executor and not yet completed.
    depth: usize,
    /// Admission cap for `depth`.
    queue_depth: usize,
    registry: FdRegistry,
    shutdown: Arc<AtomicBool>,
}

/// Handle the reactor keeps per shard.
struct ShardHandle {
    waker: Waker,
    incoming: IncomingQueue,
    jobs: Sender<Job>,
    loop_thread: Option<JoinHandle<()>>,
    exec_thread: Option<JoinHandle<()>>,
}

/// A running sharded-reactor server. Same external contract as
/// `phoenix_server::RunningServer`: shared crash-switch engine, connection
/// registry severable by the harness, `stop()` returns the engine.
pub struct Reactor {
    /// The engine behind the crash switch (None once crashed).
    pub engine: SharedEngine,
    /// The TCP port being listened on.
    pub port: u16,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shards: Vec<ShardHandle>,
    conns: FdRegistry,
}

impl Reactor {
    /// Start `shards` event loops listening on 127.0.0.1:`port` (0 =
    /// ephemeral).
    pub fn start(
        engine: Engine,
        port: u16,
        shards: usize,
        queue_depth: usize,
    ) -> std::io::Result<Reactor> {
        let shards = shards.max(1);
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();

        let engine: SharedEngine = Arc::new(parking_lot::RwLock::new(Some(Arc::new(engine))));
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry: FdRegistry = Arc::new(Mutex::new(HashMap::new()));

        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let incoming = Arc::new(Mutex::new(Vec::new()));
            let completions = Arc::new(Mutex::new(VecDeque::new()));
            let (tx, rx) = std::sync::mpsc::channel::<Job>();

            let shard = Shard::new(
                Arc::clone(&incoming),
                Arc::clone(&completions),
                tx.clone(),
                queue_depth,
                Arc::clone(&registry),
                Arc::clone(&shutdown),
            )?;
            let waker = shard.wake.waker();

            let exec_engine = Arc::clone(&engine);
            let exec_completions = Arc::clone(&completions);
            let exec_waker = waker.clone();
            let exec_thread = std::thread::Builder::new()
                .name(format!("phx-sexec-{i}"))
                .spawn(move || executor_loop(exec_engine, rx, exec_completions, exec_waker))?;

            let loop_thread = std::thread::Builder::new()
                .name(format!("phx-shard-{i}"))
                .spawn(move || shard.run())?;

            handles.push(ShardHandle {
                waker,
                incoming,
                jobs: tx,
                loop_thread: Some(loop_thread),
                exec_thread: Some(exec_thread),
            });
        }
        reactor_metrics().shards.set(shards as i64);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_registry = Arc::clone(&registry);
        let accept_targets: Vec<(Waker, IncomingQueue)> = handles
            .iter()
            .map(|h| (h.waker.clone(), Arc::clone(&h.incoming)))
            .collect();
        let accept_thread = std::thread::Builder::new()
            .name(format!("phx-saccept-{port}"))
            .spawn(move || {
                accept_loop(listener, accept_targets, accept_shutdown, accept_registry)
            })?;

        phoenix_obs::journal().record(
            "sessiond",
            phoenix_obs::EventKind::ServerLifecycle,
            format!("reactor start port={port} shards={shards} queue_depth={queue_depth}"),
        );

        Ok(Reactor {
            engine,
            port,
            shutdown,
            accept_thread: Some(accept_thread),
            shards: handles,
            conns: registry,
        })
    }

    /// Number of live client connections currently registered.
    pub fn connection_count(&self) -> usize {
        self.conns.lock().len()
    }

    /// A clone of the connection-registry handle, for external probers.
    /// A pruned (shut-down) fd raises `EPOLLHUP` on its owning shard, so no
    /// explicit wake is needed.
    pub fn conns_handle(&self) -> FdRegistry {
        Arc::clone(&self.conns)
    }

    /// Sever every client connection immediately (crash fault model). The
    /// shards observe EOF/error on their next event and clean up.
    pub fn sever_connections(&self) {
        let conns = self.conns.lock();
        for fd in conns.values() {
            crate::sys::shutdown_both(*fd);
        }
        // Entries are removed by their owning shard; a crashed harness just
        // needs the sockets dead, not the map empty.
        drop(conns);
        for s in &self.shards {
            s.waker.wake();
        }
    }

    /// Reap registry entries whose peer has vanished (shared liveness probe
    /// with the threaded server).
    pub fn prune_dead_conns(&self) -> usize {
        let n = prune_dead(&self.conns);
        if n > 0 {
            // Wake the shards so their event loops notice the shutdown fds.
            for s in &self.shards {
                s.waker.wake();
            }
        }
        n
    }

    /// Stop accepting, stop every shard, and return the engine (if not
    /// already crashed away).
    pub fn stop(mut self) -> Option<Arc<Engine>> {
        self.shutdown_threads();
        self.engine.write().take()
    }

    fn shutdown_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for s in &mut self.shards {
            // Executor first: while draining queued jobs it still writes to
            // the shard's wake pipe, whose fds die with the loop thread's
            // `Shard`. Joining the loop thread first would leave the
            // executor waking a closed — possibly recycled — fd.
            let _ = s.jobs.send(Job::Shutdown);
            if let Some(t) = s.exec_thread.take() {
                let _ = t.join();
            }
            s.waker.wake();
            if let Some(t) = s.loop_thread.take() {
                let _ = t.join();
            }
        }
        reactor_metrics().shards.set(0);
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown_threads();
    }
}

/// Accept loop: same bounded-backoff error policy as the threaded server's
/// (satellite: a transient EMFILE must never kill the listener), plus
/// round-robin shard assignment.
fn accept_loop(
    listener: TcpListener,
    targets: Vec<(Waker, IncomingQueue)>,
    shutdown: Arc<AtomicBool>,
    registry: FdRegistry,
) {
    static NEXT_CONN: AtomicU64 = AtomicU64::new(1);
    const BACKOFF_FLOOR: Duration = Duration::from_millis(1);
    const BACKOFF_CEIL: Duration = Duration::from_millis(100);
    let mut backoff = BACKOFF_FLOOR;
    let mut rr = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = BACKOFF_FLOOR;
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let conn_id = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
                // Non-owning entry: the shard owns the stream; the registry
                // holds the raw fd so sever/prune cost no second fd.
                registry.lock().insert(conn_id, stream.as_raw_fd());
                let m = server_metrics();
                m.connections_accepted.inc();
                m.connections_active.inc();
                let (waker, incoming) = &targets[rr % targets.len()];
                rr = rr.wrapping_add(1);
                incoming.lock().push((conn_id, stream));
                waker.wake();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                server_metrics().accept_errors.inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CEIL);
            }
        }
    }
}

impl Shard {
    fn new(
        incoming: IncomingQueue,
        completions: Arc<Mutex<VecDeque<Completion>>>,
        jobs: Sender<Job>,
        queue_depth: usize,
        registry: FdRegistry,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<Shard> {
        let epoll = Epoll::new()?;
        let wake = WakePipe::new()?;
        epoll.add(wake.read_fd(), EPOLLIN, WAKE_TOKEN)?;
        Ok(Shard {
            epoll,
            wake,
            conns: HashMap::new(),
            incoming,
            completions,
            jobs,
            depth: 0,
            queue_depth: queue_depth.max(1),
            registry,
            shutdown,
        })
    }

    fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        while let Ok(r) = self.epoll.wait(&mut events, -1) {
            let ready: Vec<EpollEvent> = r.to_vec();
            reactor_metrics().wakeups.inc();
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in ready {
                let token = ev.data;
                if token == WAKE_TOKEN {
                    self.wake.drain();
                } else {
                    self.handle_io(token, ev.events);
                }
            }
            self.admit_incoming();
            self.apply_completions();
        }
        // Teardown: every owned socket dies with the shard.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    /// Register sockets the accept thread has handed over.
    fn admit_incoming(&mut self) {
        let batch: Vec<(u64, TcpStream)> = std::mem::take(&mut *self.incoming.lock());
        for (id, stream) in batch {
            let interest = EPOLLIN | EPOLLRDHUP;
            if self.epoll.add(stream.as_raw_fd(), interest, id).is_err() {
                self.registry.lock().remove(&id);
                let m = server_metrics();
                m.connections_pruned.inc();
                m.connections_active.dec();
                continue;
            }
            reactor_metrics().conns.inc();
            self.conns.insert(
                id,
                Conn {
                    stream,
                    rbuf: Vec::new(),
                    rpos: 0,
                    wbuf: Vec::new(),
                    wpos: 0,
                    v2: false,
                    paused: false,
                    close_after_flush: false,
                    interest,
                    read_dead: false,
                },
            );
        }
    }

    /// Drain the executor's completion queue into connection write buffers.
    fn apply_completions(&mut self) {
        loop {
            let c = match self.completions.lock().pop_front() {
                Some(c) => c,
                None => break,
            };
            if c.counted {
                self.depth = self.depth.saturating_sub(1);
            }
            let Some(bytes) = c.bytes else {
                // Chaos halt: no reply escapes, the connection dies.
                self.close_conn(c.conn);
                continue;
            };
            let Some(conn) = self.conns.get_mut(&c.conn) else {
                continue; // connection died while the request executed
            };
            conn.wbuf.extend_from_slice(&bytes);
            let mut resumed = false;
            if let Some(upgraded) = c.upgrade {
                conn.v2 = conn.v2 || upgraded;
                conn.paused = false;
                resumed = true;
            }
            if c.close_after {
                conn.close_after_flush = true;
                conn.paused = true; // no further requests after logout
                resumed = false;
            }
            self.flush_and_continue(c.conn);
            if resumed {
                // Bytes a client pipelined behind its LoginV2 were already
                // read into rbuf before parsing paused; level-triggered
                // epoll will never re-announce them, so parse them now, in
                // the newly negotiated framing mode.
                self.parse_frames(c.conn);
            }
        }
    }

    /// Epoll readiness on a connection.
    fn handle_io(&mut self, id: u64, events: u32) {
        if !self.conns.contains_key(&id) {
            return;
        }
        if events & EPOLLOUT != 0 {
            self.flush_and_continue(id);
            if !self.conns.contains_key(&id) {
                return;
            }
        }
        if events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
            // Read everything available right now.
            let mut dead = false;
            {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            self.parse_frames(id);
            if dead {
                // EOF after parsing: complete frames that arrived ahead of
                // the FIN were still dispatched. If replies are still
                // buffered, keep the connection just long enough to flush
                // them; otherwise tear down now.
                let flush_pending = match self.conns.get_mut(&id) {
                    Some(conn) => {
                        if conn.wbuf.len() > conn.wpos {
                            conn.read_dead = true;
                            conn.paused = true;
                            true
                        } else {
                            false
                        }
                    }
                    None => return,
                };
                if flush_pending {
                    // Drop EPOLLIN interest (EOF is permanently "readable")
                    // and arm EPOLLOUT for the remaining backlog.
                    self.update_interest(id);
                } else {
                    self.close_conn(id);
                }
            }
        }
    }

    /// Slice buffered bytes into frames and act on each. Stops while paused
    /// (LoginV2 in flight) and on admission pushback.
    fn parse_frames(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.paused {
                break;
            }
            let avail = conn.rbuf.len() - conn.rpos;
            if avail < 4 {
                break;
            }
            let len = u32::from_le_bytes(
                conn.rbuf[conn.rpos..conn.rpos + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            if len > MAX_FRAME {
                // Protocol violation — the stream cannot be resynced.
                self.close_conn(id);
                return;
            }
            let total = 4 + len as usize;
            if avail < total {
                break;
            }
            let payload: Vec<u8> = conn.rbuf[conn.rpos + 4..conn.rpos + total].to_vec();
            conn.rpos += total;
            reactor_metrics().frames.inc();
            self.handle_frame(id, payload);
        }
        // Compact the read buffer once the parsed prefix dominates it.
        if let Some(conn) = self.conns.get_mut(&id) {
            if conn.rpos > 4096 && conn.rpos * 2 >= conn.rbuf.len() {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
        }
    }

    /// One complete frame: split the v2 tag off, decode, apply admission,
    /// enqueue toward the executor (or answer directly).
    fn handle_frame(&mut self, id: u64, payload: Vec<u8>) {
        let v2 = match self.conns.get(&id) {
            Some(c) => c.v2,
            None => return,
        };
        let (tag, body): (Option<u64>, &[u8]) = if v2 {
            if payload.len() < 8 {
                self.close_conn(id);
                return;
            }
            (
                Some(u64::from_le_bytes(
                    payload[..8].try_into().expect("8 bytes"),
                )),
                &payload[8..],
            )
        } else {
            (None, &payload[..])
        };

        let req = match Request::decode(body) {
            Ok(r) => r,
            Err(e) => {
                // Same contract as the threaded loop: a malformed message
                // inside a well-formed frame gets an error reply, not a
                // hangup.
                server_metrics().malformed_requests.inc();
                let rsp = Response::Err {
                    code: ErrorCode::Parse as u16,
                    message: format!("malformed request: {e}"),
                };
                self.reply_synth(id, tag, rsp);
                return;
            }
        };
        server_metrics().requests(&req).inc();

        // Admission control: a full executor queue answers Busy instead of
        // queueing without bound. Clients treat it as retryable.
        if self.depth >= self.queue_depth {
            reactor_metrics().overload.inc();
            let rsp = Response::Err {
                code: ErrorCode::Busy as u16,
                message: format!(
                    "server overloaded: shard queue depth {} reached; retry",
                    self.queue_depth
                ),
            };
            self.reply_synth(id, tag, rsp);
            return;
        }

        // A v2 login changes this connection's framing mode: stop parsing
        // until the executor tells us whether the upgrade happened.
        if matches!(req, Request::LoginV2 { .. }) && !v2 {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.paused = true;
            }
        }

        self.depth += 1;
        if self.jobs.send(Job::Request { conn: id, tag, req }).is_err() {
            self.close_conn(id);
        }
    }

    /// Queue a shard-synthesized reply (parse error, admission Busy) through
    /// the executor's FIFO. The executor does not run these — it just echoes
    /// them back as completions — but the round trip guarantees the reply
    /// cannot overtake replies for earlier requests from the same connection
    /// still in the queue (v1 clients match responses to requests by order).
    /// Synthesized echoes are not admission-counted: under overload each
    /// refused frame must not consume the very capacity being protected.
    fn reply_synth(&mut self, id: u64, tag: Option<u64>, rsp: Response) {
        if self.jobs.send(Job::Synth { conn: id, tag, rsp }).is_err() {
            self.close_conn(id);
        }
    }

    /// Write as much pending output as the socket accepts; keep `EPOLLOUT`
    /// interest exactly while a backlog remains; close when a deferred
    /// close's flush completes.
    fn flush_and_continue(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.close_conn(id);
                    return;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(id);
                    return;
                }
            }
        }
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.close_after_flush || conn.read_dead {
                self.close_conn(id);
                return;
            }
        }
        self.update_interest(id);
    }

    /// Recompute and (if changed) re-register the epoll interest mask.
    fn update_interest(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut want = EPOLLRDHUP;
        if !conn.paused {
            want |= EPOLLIN;
        }
        if conn.wpos < conn.wbuf.len() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let _ = self.epoll.modify(conn.stream.as_raw_fd(), want, id);
        }
    }

    /// Tear a connection down: epoll dereg (implicit in close), registry
    /// prune, session close via the executor (FIFO order — after any
    /// in-flight requests for this connection).
    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.registry.lock().remove(&id);
            let m = server_metrics();
            m.connections_pruned.inc();
            m.connections_active.dec();
            reactor_metrics().conns.dec();
            let _ = self.jobs.send(Job::Close { conn: id });
        }
    }
}

/// Frame a reply, tagged iff `tag` is present.
fn frame_reply(tag: Option<u64>, rsp: &Response) -> Vec<u8> {
    let body = rsp.encode();
    match tag {
        Some(t) => {
            let mut framed = Vec::with_capacity(12 + body.len());
            framed.extend_from_slice(&((body.len() + 8) as u32).to_le_bytes());
            framed.extend_from_slice(&t.to_le_bytes());
            framed.extend_from_slice(&body);
            framed
        }
        None => {
            let mut framed = Vec::with_capacity(4 + body.len());
            framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
            framed.extend_from_slice(&body);
            framed
        }
    }
}

/// The shard executor: strict FIFO over decoded requests, executing through
/// the same `dispatch`/`login_v2` as the threaded server, with the same
/// chaos fault points (`server.pipeline_dequeue` before execution,
/// `server.reply_send` before the reply escapes).
fn executor_loop(
    engine: SharedEngine,
    jobs: Receiver<Job>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    waker: Waker,
) {
    let mut sessions: HashMap<u64, Option<SessionId>> = HashMap::new();
    let m = server_metrics();
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Shutdown => break,
            Job::Close { conn } => {
                if let Some(Some(sid)) = sessions.remove(&conn) {
                    let eng = engine.read().clone();
                    if let Some(eng) = eng {
                        let _ = eng.close_session(sid);
                    }
                }
            }
            Job::Synth { conn, tag, rsp } => {
                // Shard-synthesized reply, looped through here purely for
                // ordering. A halted (chaos-crashed) server stays silent.
                let completion = if phoenix_chaos::halted() {
                    Completion {
                        conn,
                        bytes: None,
                        upgrade: None,
                        close_after: true,
                        counted: false,
                    }
                } else {
                    Completion {
                        conn,
                        bytes: Some(frame_reply(tag, &rsp)),
                        upgrade: None,
                        close_after: false,
                        counted: false,
                    }
                };
                push(&completions, &waker, completion);
            }
            Job::Request { conn, tag, req } => {
                let session = sessions.entry(conn).or_insert(None);
                match phoenix_chaos::fault("server.pipeline_dequeue") {
                    phoenix_chaos::FaultAction::Continue | phoenix_chaos::FaultAction::Crash => {}
                    phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
                    phoenix_chaos::FaultAction::IoError | phoenix_chaos::FaultAction::Torn(_) => {
                        push(
                            &completions,
                            &waker,
                            Completion {
                                conn,
                                bytes: None,
                                upgrade: None,
                                close_after: true,
                                counted: true,
                            },
                        );
                        continue;
                    }
                }
                let completion = if let Request::LoginV2 {
                    user,
                    database: _,
                    options,
                    protocol,
                    window,
                } = req
                {
                    match login_v2(&engine, session, &user, options, protocol, window) {
                        Ok((ack, _granted)) => Completion {
                            conn,
                            // The v2 ack itself is still v1-framed.
                            bytes: Some(frame_reply(None, &ack)),
                            upgrade: Some(true),
                            close_after: false,
                            counted: true,
                        },
                        Err(rsp) => Completion {
                            conn,
                            bytes: Some(frame_reply(None, &rsp)),
                            upgrade: Some(false),
                            close_after: false,
                            counted: true,
                        },
                    }
                } else {
                    let logout = matches!(req, Request::Logout);
                    m.requests_inflight.inc();
                    let rsp = dispatch(&engine, session, req);
                    m.requests_inflight.dec();
                    Completion {
                        conn,
                        bytes: Some(frame_reply(tag, &rsp)),
                        upgrade: None,
                        close_after: logout,
                        counted: true,
                    }
                };
                // No reply escapes a halted (crashed-by-chaos) server.
                let completion = if phoenix_chaos::halted() {
                    Completion {
                        conn,
                        bytes: None,
                        upgrade: None,
                        close_after: true,
                        counted: true,
                    }
                } else {
                    match phoenix_chaos::fault("server.reply_send") {
                        phoenix_chaos::FaultAction::Continue => completion,
                        phoenix_chaos::FaultAction::Delay(d) => {
                            std::thread::sleep(d);
                            completion
                        }
                        phoenix_chaos::FaultAction::Crash | phoenix_chaos::FaultAction::IoError => {
                            Completion {
                                conn,
                                bytes: None,
                                upgrade: None,
                                close_after: true,
                                counted: true,
                            }
                        }
                        phoenix_chaos::FaultAction::Torn(n) => {
                            // Die mid-send: the client sees a truncated frame.
                            let mut bytes = completion.bytes.unwrap_or_default();
                            bytes.truncate(n.min(bytes.len().saturating_sub(1)));
                            Completion {
                                conn,
                                bytes: Some(bytes),
                                upgrade: None,
                                close_after: true,
                                counted: true,
                            }
                        }
                    }
                };
                push(&completions, &waker, completion);
            }
        }
    }
}

fn push(completions: &Mutex<VecDeque<Completion>>, waker: &Waker, c: Completion) {
    completions.lock().push_back(c);
    waker.wake();
}
