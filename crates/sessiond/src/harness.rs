//! Crash-injection harness for the sessiond front-end — the reactor-path
//! twin of `phoenix_server::ServerHarness`, with the same fault model:
//! `crash()` severs every client socket *before* dropping the engine (the
//! lost-reply window), `restart()` recovers from the data directory on the
//! same port.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use phoenix_engine::{Engine, EngineConfig};

use crate::config::ServerConfig;
use crate::front::SessiondServer;

/// Test/bench harness around a [`SessiondServer`].
pub struct SessiondHarness {
    data_dir: PathBuf,
    engine_config: EngineConfig,
    config: ServerConfig,
    port: u16,
    server: Option<SessiondServer>,
}

impl SessiondHarness {
    /// Start a sessiond server over `data_dir` on an ephemeral port.
    pub fn start(
        data_dir: impl AsRef<Path>,
        engine_config: EngineConfig,
        config: ServerConfig,
    ) -> io::Result<SessiondHarness> {
        let data_dir = data_dir.as_ref().to_path_buf();
        let server = SessiondServer::start(&data_dir, engine_config.clone(), &config, 0)?;
        let port = server.port;
        Ok(SessiondHarness {
            data_dir,
            engine_config,
            config,
            port,
            server: Some(server),
        })
    }

    /// `host:port` the server listens on (stable across crash/restart).
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// The listen port (stable across crash/restart).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The durable data directory.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Is the server currently up (not crashed)?
    pub fn is_running(&self) -> bool {
        self.server.is_some()
    }

    /// Which I/O model is actually serving (`"reactor"` or `"threaded"`).
    pub fn io_model(&self) -> Option<&'static str> {
        self.server.as_ref().map(|s| s.io_model)
    }

    /// Shards actually running (0 for the threaded backend).
    pub fn shards(&self) -> Option<usize> {
        self.server.as_ref().map(|s| s.shards)
    }

    /// Number of live client connections; `None` while crashed.
    pub fn connection_count(&self) -> Option<usize> {
        self.server.as_ref().map(|s| s.connection_count())
    }

    /// Reap dead connections; `None` while crashed.
    pub fn prune_dead_conns(&self) -> Option<usize> {
        self.server.as_ref().map(|s| s.prune_dead_conns())
    }

    /// Drive one synchronous cleanup pass (idle spill, retention purge,
    /// dead-connection reap) with this harness's lifecycle config.
    pub fn cleanup_now(&self) -> Option<(usize, usize, usize)> {
        self.server
            .as_ref()
            .map(|s| s.cleanup_now(&self.config.lifecycle))
    }

    /// Crash the server abruptly: sever sockets, then drop the engine with
    /// no checkpoint. Volatile state dies; the data directory (including
    /// committed spill rows) survives.
    pub fn crash(&mut self) -> io::Result<()> {
        let server = self.server.take().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotConnected,
                "crash() on a server that is not running",
            )
        })?;
        // Throw the crash switch *before* severing: the instant the process
        // "dies", every teardown path (EOF-driven session closes, final
        // replies) must find the engine already gone — otherwise a "crash"
        // would gracefully close sessions and delete their durable spill
        // rows on the way out. Requests already inside dispatch keep their
        // cloned handle and may still commit; their replies are lost when
        // the sockets are severed next — the paper's lost-reply window.
        let engine = server.engine_handle().write().take();
        server.sever_connections();
        let _ = server.stop();
        // Drain: executor threads may still hold cloned engine handles for
        // an instant; the next incarnation must be the only WAL owner.
        if let Some(engine) = engine {
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            while std::sync::Arc::strong_count(&engine) > 1 && std::time::Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(engine);
        }
        Ok(())
    }

    /// Restart after a crash: recover from the data directory and listen on
    /// the same port.
    pub fn restart(&mut self) -> io::Result<()> {
        assert!(self.server.is_none(), "restart() while still running");
        let server = SessiondServer::start(
            &self.data_dir,
            self.engine_config.clone(),
            &self.config,
            self.port,
        )?;
        debug_assert_eq!(server.port, self.port);
        self.server = Some(server);
        Ok(())
    }

    /// Graceful shutdown: checkpoint, then stop.
    pub fn shutdown(&mut self) {
        if let Some(server) = self.server.take() {
            if let Some(engine) = server.stop() {
                let _ = engine.checkpoint();
            }
        }
    }

    /// Stall the server for `d`: a background thread holds the engine's
    /// stall gate exclusively, so every in-flight and new request blocks
    /// without any socket closing. On the reactor path this parks the
    /// executor threads, which is how tests fill the admission queue
    /// deterministically.
    pub fn stall(&self, d: Duration) {
        if let Some(server) = &self.server {
            let engine = server.engine_handle().read().clone();
            if let Some(engine) = engine {
                let started = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                let flag = std::sync::Arc::clone(&started);
                std::thread::spawn(move || {
                    engine.stall_with(d, move || {
                        flag.store(true, std::sync::atomic::Ordering::SeqCst)
                    });
                });
                while !started.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    /// Direct engine access while running (test setup shortcuts).
    pub fn with_engine<R>(&self, f: impl FnOnce(&Engine) -> R) -> Option<R> {
        let server = self.server.as_ref()?;
        let engine = server.engine_handle().read().clone();
        engine.map(|e| f(&e))
    }
}

impl Drop for SessiondHarness {
    fn drop(&mut self) {
        self.shutdown();
    }
}
