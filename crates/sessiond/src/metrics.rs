//! Reactor-layer metric handles. The lifecycle metrics
//! (`phoenix_sessiond_spilled_total` and friends) live in
//! `phoenix_engine::spill` next to the mechanism they count; these cover the
//! connection front-end.

use std::sync::{Arc, OnceLock};

use phoenix_obs::{registry, Counter, Gauge};

/// Cached handles for the reactor metric set.
pub struct ReactorMetrics {
    /// Connections currently owned by reactor shards
    /// (`phoenix_sessiond_conns`).
    pub conns: Arc<Gauge>,
    /// Event-loop shards running (`phoenix_sessiond_shards`).
    pub shards: Arc<Gauge>,
    /// Request frames parsed off sockets by shards
    /// (`phoenix_sessiond_frames_total`).
    pub frames: Arc<Counter>,
    /// Requests refused at admission with the retryable `Busy` code because
    /// a shard's executor queue was full
    /// (`phoenix_sessiond_overload_total`).
    pub overload: Arc<Counter>,
    /// Times a shard's `epoll_wait` returned (`phoenix_sessiond_wakeups_total`).
    pub wakeups: Arc<Counter>,
}

/// The reactor metric set, registered on first use.
pub fn reactor_metrics() -> &'static ReactorMetrics {
    static M: OnceLock<ReactorMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        ReactorMetrics {
            conns: r.gauge(
                "phoenix_sessiond_conns",
                "connections owned by reactor shards",
            ),
            shards: r.gauge("phoenix_sessiond_shards", "event-loop shards running"),
            frames: r.counter(
                "phoenix_sessiond_frames_total",
                "request frames parsed by reactor shards",
            ),
            overload: r.counter(
                "phoenix_sessiond_overload_total",
                "requests refused at admission (executor queue full)",
            ),
            wakeups: r.counter(
                "phoenix_sessiond_wakeups_total",
                "reactor shard epoll_wait returns",
            ),
        }
    })
}
