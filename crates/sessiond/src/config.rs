//! Front-end and lifecycle configuration.

use std::time::Duration;

/// Which connection I/O model the front-end runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One OS thread per connection (the portable baseline —
    /// `phoenix_server`'s loop, unchanged).
    Threaded,
    /// Sharded epoll reactor: `shards` event loops, each owning its own
    /// epoll instance and its own in-order executor thread. `shards = 0`
    /// means auto (one per available core, capped at 8). On non-Linux
    /// platforms this silently falls back to [`IoModel::Threaded`].
    Reactor {
        /// Number of event-loop shards (0 = auto).
        shards: usize,
    },
}

impl IoModel {
    /// Resolve `shards = 0` to the auto value.
    pub fn resolved_shards(self) -> usize {
        match self {
            IoModel::Threaded => 0,
            IoModel::Reactor { shards: 0 } => std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            IoModel::Reactor { shards } => shards,
        }
    }
}

/// Durable session-lifecycle policy.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Resident-session cap. A login past the cap spills the least-recently
    /// active idle session to the `phoenix.sessiond_spill` table; if nothing
    /// is spillable the login is refused with the retryable `Busy` code.
    pub max_sessions: Option<usize>,
    /// Spill sessions idle for at least this long on each cleanup tick,
    /// releasing their engine memory.
    pub idle_spill_after: Option<Duration>,
    /// Discard spill rows older than this on each cleanup tick. Also reaps
    /// rows stranded by prior incarnations (which can never be restored).
    pub retention: Option<Duration>,
    /// Period of the background cleanup job (`None` = no background job;
    /// the harness can still drive ticks manually).
    pub cleanup_interval: Option<Duration>,
    /// Per-shard admission cap: requests queued toward a shard's executor
    /// beyond this answer immediately with the retryable `Busy` code
    /// instead of growing the queue without bound.
    pub queue_depth: usize,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            max_sessions: None,
            idle_spill_after: None,
            retention: Some(Duration::from_secs(7 * 24 * 3600)),
            cleanup_interval: None,
            queue_depth: 4096,
        }
    }
}

impl LifecycleConfig {
    /// Convenience: express the retention window in days (the paper-era
    /// knob name).
    pub fn retention_days(mut self, days: u64) -> Self {
        self.retention = Some(Duration::from_secs(days * 24 * 3600));
        self
    }
}

/// Top-level sessiond configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection I/O model.
    pub io: IoModel,
    /// Session lifecycle policy.
    pub lifecycle: LifecycleConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            io: IoModel::Reactor { shards: 0 },
            lifecycle: LifecycleConfig::default(),
        }
    }
}
