//! Raw Linux syscall bindings for the reactor: epoll, a self-wake pipe, and
//! rlimit adjustment. No external crates — the handful of syscalls the
//! reactor needs are declared `extern "C"` against the platform libc that is
//! already linked into every Rust binary. The whole module is gated on
//! `target_os = "linux"`; other platforms use the thread-per-connection
//! fallback and never reference it.

#![allow(clippy::missing_safety_doc)]

use std::io;

// ---------------------------------------------------------------------------
// epoll
// ---------------------------------------------------------------------------

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it (the
/// 64-bit data member is 4-byte aligned); on other architectures it has
/// natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLL*` bits).
    pub events: u32,
    /// Caller-chosen token (we store the connection id).
    pub data: u64,
}

/// The kernel's `struct epoll_event` (naturally aligned variant).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLL*` bits).
    pub events: u32,
    /// Caller-chosen token (we store the connection id).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn shutdown(fd: i32, how: i32) -> i32;
    fn recv(fd: i32, buf: *mut u8, len: usize, flags: i32) -> isize;
}

/// An owned epoll instance; closes its fd on drop.
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Register `fd` with interest `events` and token `token`.
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest mask of an already-registered `fd`.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister `fd`. (Closing the fd also deregisters it implicitly; this
    /// exists for the paths that keep the fd open a little longer.)
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block until events are ready (or `timeout_ms`; −1 = forever). Returns
    /// the ready prefix of `events`.
    pub fn wait<'a>(
        &self,
        events: &'a mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<&'a [EpollEvent]> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            return Ok(&events[..n as usize]);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// wake pipe
// ---------------------------------------------------------------------------

const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// A nonblocking self-pipe: the shard registers the read end in its epoll
/// set; any thread holding a [`Waker`] can interrupt `epoll_wait`.
pub struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

/// The write end of a [`WakePipe`], cloneable across threads.
#[derive(Clone)]
pub struct Waker {
    write_fd: i32,
}

impl WakePipe {
    /// `pipe2(O_NONBLOCK | O_CLOEXEC)`.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register in epoll.
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// A handle other threads use to wake this pipe's owner.
    pub fn waker(&self) -> Waker {
        Waker {
            write_fd: self.write_fd,
        }
    }

    /// Drain pending wake bytes (the wake is level-triggered otherwise).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break; // EAGAIN (drained) or error — either way, done
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

impl Waker {
    /// Interrupt the owning shard's `epoll_wait`. A full pipe means a wake
    /// is already pending, which is exactly as good as another byte.
    pub fn wake(&self) {
        let b = 1u8;
        unsafe { write(self.write_fd, &b, 1) };
    }
}

// ---------------------------------------------------------------------------
// socket probes (for the non-owning fd registry)
// ---------------------------------------------------------------------------

const SHUT_RDWR: i32 = 2;
const MSG_PEEK: i32 = 2;
const MSG_DONTWAIT: i32 = 0x40;

/// `shutdown(fd, SHUT_RDWR)`: sever both directions of a socket without
/// closing the fd (the owner still holds it and will observe the EOF).
pub fn shutdown_both(fd: i32) {
    unsafe { shutdown(fd, SHUT_RDWR) };
}

/// Liveness-probe a socket fd without consuming data: a one-byte
/// `recv(MSG_PEEK | MSG_DONTWAIT)` returning 0 means the peer performed an
/// orderly shutdown; an error other than `EAGAIN`/`EINTR` means the socket
/// is broken. `MSG_PEEK` leaves any pending request bytes in place for the
/// owning shard.
pub fn socket_is_dead(fd: i32) -> bool {
    let mut byte = 0u8;
    let n = unsafe { recv(fd, &mut byte, 1, MSG_PEEK | MSG_DONTWAIT) };
    match n {
        0 => true, // EOF: peer closed while we weren't reading
        n if n > 0 => false,
        _ => !matches!(
            io::Error::last_os_error().kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
        ),
    }
}

// ---------------------------------------------------------------------------
// rlimit
// ---------------------------------------------------------------------------

const RLIMIT_NOFILE: i32 = 7;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

/// Raise the soft `RLIMIT_NOFILE` to at least `want` (clamped to the hard
/// limit). Returns the resulting soft limit. The session-storm bench needs
/// two fds per virtual session — far beyond the usual 1024 default.
pub fn raise_nofile(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    // A privileged process (CAP_SYS_RESOURCE) may raise the hard limit
    // too — try the full ask first, then fall back to the current ceiling.
    if lim.rlim_max < want {
        let raised = Rlimit {
            rlim_cur: want,
            rlim_max: want,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(want);
        }
    }
    lim.rlim_cur = want.min(lim.rlim_max);
    if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_round_trip() {
        let pipe = WakePipe::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero-timeout wait returns empty.
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());
        pipe.waker().wake();
        let ready = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        let token = ready[0].data;
        assert_eq!(token, 7);
        pipe.drain();
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());
    }

    #[test]
    fn raise_nofile_is_monotone() {
        let cur = raise_nofile(64).unwrap();
        assert!(cur >= 64);
    }
}
