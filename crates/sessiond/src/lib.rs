#![warn(missing_docs)]

//! # phoenix-sessiond
//!
//! The scale-out front-end for the Phoenix server: an event-driven
//! connection reactor plus a durable session lifecycle manager, built for
//! tens of thousands of concurrent *virtual* sessions on a handful of
//! threads.
//!
//! * [`config`] — [`config::ServerConfig`]: pick the I/O model
//!   ([`config::IoModel::Reactor`] on Linux, thread-per-connection
//!   fallback everywhere) and the lifecycle policy (session cap, idle
//!   spill, retention window, cleanup period, admission queue depth).
//! * [`sys`] — raw `extern "C"` epoll/pipe/rlimit bindings (Linux only; no
//!   new dependencies).
//! * [`reactor`] — N event-loop shards, each an epoll instance owning its
//!   connections, paired with an in-order executor thread that runs
//!   requests through the *same* `phoenix_server::dispatch` as the
//!   threaded server. Bounded executor queues answer overload with the
//!   retryable `Busy` error.
//! * [`lifecycle`] — the periodic cleanup job: spill idle sessions to the
//!   durable `phoenix.sessiond_spill` table (the mechanism itself lives in
//!   `phoenix_engine::spill`), purge expired spill rows, reap dead
//!   connections.
//! * [`front`] — [`front::SessiondServer`], one type over both backends.
//! * [`harness`] — [`harness::SessiondHarness`]: `start()` / `crash()` /
//!   `restart()` with the same brutal fault model as the server harness.
//!
//! The headline workload is the `session_storm` bench (`crates/bench`):
//! thousands of virtual sessions ramp up, churn, survive a mid-storm crash,
//! and herd-recover exactly-once through `phoenix-core`.

pub mod config;
pub mod front;
pub mod harness;
pub mod lifecycle;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod reactor;
#[cfg(target_os = "linux")]
pub mod sys;

pub use config::{IoModel, LifecycleConfig, ServerConfig};
pub use front::SessiondServer;
pub use harness::SessiondHarness;
pub use lifecycle::CleanupJob;
